"""Lightweight statistics primitives used across the simulator.

The simulator records everything through three primitives:

* :class:`Counter` — a named monotonically increasing integer.
* :class:`Histogram` — a value -> count map with percentile queries
  (used for shadow-occupancy sizing, Figures 6-9 of the paper).
* :class:`StatRegistry` — a named collection of the above, owned by each
  simulated component, that can be merged and rendered.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Tuple


class Counter:
    """A named monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Histogram:
    """A discrete histogram with percentile queries.

    Values are arbitrary non-negative integers (e.g. per-cycle occupancy of
    a shadow structure).  Storage is sparse so very large value domains are
    cheap as long as the number of *distinct* values stays modest.
    """

    __slots__ = ("name", "_buckets", "_total")

    def __init__(self, name: str) -> None:
        self.name = name
        self._buckets: Dict[int, int] = {}
        self._total = 0

    def record(self, value: int, count: int = 1) -> None:
        """Record ``count`` observations of ``value``."""
        if value < 0:
            raise ValueError(f"histogram {self.name}: negative value {value}")
        self._buckets[value] = self._buckets.get(value, 0) + count
        self._total += count

    @property
    def total(self) -> int:
        """Total number of recorded observations."""
        return self._total

    @property
    def max(self) -> int:
        """Largest observed value (0 when empty)."""
        return max(self._buckets) if self._buckets else 0

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0.0 when empty)."""
        if not self._total:
            return 0.0
        return sum(v * c for v, c in self._buckets.items()) / self._total

    def percentile(self, fraction: float) -> int:
        """Smallest value v such that P(X <= v) >= ``fraction``.

        ``fraction`` is in [0, 1].  This is the paper's sizing rule: the
        shadow-structure size "that can fit 99.99% of the accesses" is
        ``percentile(0.9999)``.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if not self._buckets:
            return 0
        threshold = fraction * self._total
        running = 0
        for value in sorted(self._buckets):
            running += self._buckets[value]
            if running >= threshold:
                return value
        return self.max

    def items(self) -> Iterator[Tuple[int, int]]:
        """Iterate (value, count) pairs in increasing value order."""
        return iter(sorted(self._buckets.items()))

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one."""
        for value, count in other._buckets.items():
            self.record(value, count)

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name}, n={self._total}, max={self.max}, "
            f"mean={self.mean:.2f})"
        )


class StatRegistry:
    """A named collection of counters and histograms.

    Components create their stats through the registry so that a simulation
    run can be summarised uniformly::

        stats = StatRegistry("l1d")
        hits = stats.counter("hits")
        ...
        print(stats.as_dict())
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Return the counter called ``name``, creating it if needed."""
        if name not in self._counters:
            self._counters[name] = Counter(f"{self.name}.{name}")
        return self._counters[name]

    def histogram(self, name: str) -> Histogram:
        """Return the histogram called ``name``, creating it if needed."""
        if name not in self._histograms:
            self._histograms[name] = Histogram(f"{self.name}.{name}")
        return self._histograms[name]

    def counters(self) -> Iterable[Counter]:
        return self._counters.values()

    def histograms(self) -> Iterable[Histogram]:
        return self._histograms.values()

    def reset(self) -> None:
        """Zero every counter and drop every histogram observation."""
        for counter in self._counters.values():
            counter.reset()
        for name in list(self._histograms):
            self._histograms[name] = Histogram(f"{self.name}.{name}")

    def as_dict(self) -> Dict[str, int]:
        """Flatten counters into a plain dict (histograms excluded)."""
        return {name: c.value for name, c in self._counters.items()}

    def __repr__(self) -> str:
        return f"StatRegistry({self.name}, {len(self._counters)} counters)"


def ratio(numerator: int, denominator: int) -> float:
    """``numerator / denominator`` with a defined value (0.0) for 0/0."""
    if denominator == 0:
        return 0.0
    return numerator / denominator


def geometric_mean(values: List[float]) -> float:
    """Geometric mean of positive values; 0.0 for an empty list."""
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
