"""Simulation-as-a-service: HTTP job server + shared result store.

The subsystem that turns the local toolkit into a service many clients
share:

* :mod:`repro.serve.protocol` — the JSON submission payloads and their
  lowering to content-hashed :class:`~repro.exec.job.SimJob` batches;
* :mod:`repro.serve.store` — :class:`SQLiteResultStore`, the shared,
  concurrency-safe result store (WAL mode, atomic upserts) implementing
  the :class:`~repro.exec.cache.ResultCache` interface;
* :mod:`repro.serve.worker` — the restartable background worker pool
  (crash containment via the process boundary);
* :mod:`repro.serve.server` — :class:`JobService` (transport-free core)
  and :class:`JobServer` (stdlib asyncio HTTP front-end);
* :mod:`repro.serve.client` — :class:`ServeClient`, the stdlib HTTP
  client the CLI (``repro submit`` / ``repro status``), the tests and
  the bench service row use.

``repro serve`` boots a server; see the README "Serving" section for
the endpoint reference and an example curl session.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.protocol import (DONE, FAILED, PROTOCOL_VERSION, QUEUED,
                                  RUNNING, SUBMIT_KINDS, TERMINAL_STATES,
                                  ProtocolError, build_jobs, job_summary)
from repro.serve.server import (DEFAULT_HOST, DEFAULT_PORT,
                                BackgroundServer, JobServer, JobService,
                                run_server)
from repro.serve.store import SQLiteResultStore, default_db_path
from repro.serve.worker import WorkerCrash, WorkerPool

__all__ = [
    "BackgroundServer",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "DONE",
    "FAILED",
    "JobServer",
    "JobService",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QUEUED",
    "RUNNING",
    "SQLiteResultStore",
    "SUBMIT_KINDS",
    "ServeClient",
    "ServeError",
    "TERMINAL_STATES",
    "WorkerCrash",
    "WorkerPool",
    "build_jobs",
    "default_db_path",
    "job_summary",
    "run_server",
]
