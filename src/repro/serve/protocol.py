"""The JSON-over-HTTP submission protocol: payloads in, job batches out.

One submission payload describes one batch of simulations in the same
vocabulary the CLI and :class:`~repro.api.session.Session` use::

    {"kind": "matrix",   "attacks": ["spectre_v1"], "policies": ["wfc"]}
    {"kind": "attack",   "target": "meltdown", "secret": 42}
    {"kind": "workload", "target": "mcf", "policy": "wfc"}
    {"kind": "verify",   "count": 5, "seed": 0, "profile": "mixed"}
    {"kind": "sweep",    "benchmarks": ["mcf"], "policies": ["wfc"],
     "variants": {"rob96": {"core.rob_entries": 96}}}
    {"kind": "sample",   "target": "mcf", "instructions": 1000000,
     "interval": 50000, "windows": 8}

Common optional fields on every kind: ``backend`` (execution backend
name), ``preset`` (a registered :class:`~repro.spec.MachineSpec`) plus
``set`` (a list of ``key=value`` dotted-path overrides), and
``instructions``.  :func:`build_jobs` validates the payload against the
component registries and lowers it to content-hashed
:class:`~repro.exec.job.SimJob` values — the job key doubles as the
service's result identifier, so resubmitting an identical payload
always lands on the same jobs (and therefore the same store rows).

A malformed payload raises :class:`ProtocolError`, which the server
maps to a 4xx response; nothing in this module touches the network.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from repro.api.registry import attack_names
from repro.api.scenario import Scenario, Sweep
from repro.core.policy import CommitPolicy
from repro.errors import ConfigError, ReproError
from repro.exec.job import DEFAULT_INSTRUCTION_BUDGET, SimJob
from repro.spec import MachineSpec, derive_from_strings, get_spec
from repro.verify.harness import verify_job
from repro.workloads import suite_names

# The protocol version, carried in every response envelope.  Bump on
# incompatible payload-shape changes (independent of the result
# SCHEMA_VERSION, which namespaces the store).
PROTOCOL_VERSION = 1

SUBMIT_KINDS = ("attack", "matrix", "workload", "verify", "sweep",
                "sample")

# Terminal and non-terminal job states the service reports.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
TERMINAL_STATES = (DONE, FAILED)


class ProtocolError(ReproError):
    """A malformed or invalid request; maps to an HTTP 4xx."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


def _require_mapping(payload: Any) -> Mapping[str, Any]:
    if not isinstance(payload, Mapping):
        raise ProtocolError(
            f"submission body must be a JSON object, got "
            f"{type(payload).__name__}")
    return payload


def _policies(payload: Mapping[str, Any],
              default: Optional[List[CommitPolicy]] = None
              ) -> List[CommitPolicy]:
    """The commit policies a payload names (``policy`` or ``policies``)."""
    raw = payload.get("policies")
    if raw is None and "policy" in payload:
        raw = [payload["policy"]]
    if raw is None:
        if default is not None:
            return default
        from repro.api.session import MATRIX_POLICIES

        return list(MATRIX_POLICIES)
    if isinstance(raw, str):
        raw = [raw]
    if not isinstance(raw, (list, tuple)) or not raw:
        raise ProtocolError("'policies' must be a non-empty list of "
                            "policy names")
    known = {p.value: p for p in CommitPolicy}
    chosen = []
    for name in raw:
        if name not in known:
            raise ProtocolError(
                f"unknown policy {name!r}; choose from {sorted(known)}")
        chosen.append(known[name])
    return chosen


def _spec(payload: Mapping[str, Any]) -> Optional[MachineSpec]:
    """The hardware shape of a payload (``preset`` + ``set``), or None."""
    preset = payload.get("preset")
    overrides = payload.get("set") or []
    if preset is None and not overrides:
        return None
    if not isinstance(overrides, (list, tuple)) or any(
            not isinstance(item, str) for item in overrides):
        raise ProtocolError("'set' must be a list of 'key=value' strings")
    spec = get_spec(preset) if preset else MachineSpec()
    if overrides:
        spec = derive_from_strings(spec, list(overrides))
    return spec


def _int_field(payload: Mapping[str, Any], name: str, default: int,
               minimum: int = 1) -> int:
    value = payload.get(name, default)
    if not isinstance(value, int) or isinstance(value, bool) \
            or value < minimum:
        raise ProtocolError(f"'{name}' must be an integer >= {minimum}")
    return value


def _str_field(payload: Mapping[str, Any], name: str,
               default: Optional[str] = None) -> str:
    value = payload.get(name, default)
    if value is None:
        raise ProtocolError(f"missing required field '{name}'")
    if not isinstance(value, str):
        raise ProtocolError(f"'{name}' must be a string")
    return value


def build_jobs(payload: Any) -> List[SimJob]:
    """Lower one submission payload to its job batch.

    Raises :class:`ProtocolError` on malformed payloads; registry
    :class:`~repro.errors.ConfigError` (unknown attack, benchmark,
    backend, preset, override path) is re-raised as a
    :class:`ProtocolError` too, so the server's 4xx surface is one
    exception type.
    """
    payload = _require_mapping(payload)
    kind = payload.get("kind")
    if kind not in SUBMIT_KINDS:
        raise ProtocolError(
            f"unknown submission kind {kind!r}; choose from "
            f"{', '.join(SUBMIT_KINDS)}")
    try:
        return _BUILDERS[kind](payload)
    except ProtocolError:
        raise
    except ConfigError as error:
        raise ProtocolError(str(error)) from error


def _build_attack(payload: Mapping[str, Any]) -> List[SimJob]:
    target = _str_field(payload, "target")
    secret = _int_field(payload, "secret", 42, minimum=0)
    spec = _spec(payload)
    backend = _str_field(payload, "backend", "cycle")
    return [Scenario.attack(target, policy, secret=secret, spec=spec,
                            backend=backend).job()
            for policy in _policies(payload)]


def _build_matrix(payload: Mapping[str, Any]) -> List[SimJob]:
    attacks = payload.get("attacks") or attack_names()
    if not isinstance(attacks, (list, tuple)):
        raise ProtocolError("'attacks' must be a list of attack names")
    secret = _int_field(payload, "secret", 42, minimum=0)
    spec = _spec(payload)
    backend = _str_field(payload, "backend", "cycle")
    return [Scenario.attack(name, policy, secret=secret, spec=spec,
                            backend=backend).job()
            for name in attacks for policy in _policies(payload)]


def _build_workload(payload: Mapping[str, Any]) -> List[SimJob]:
    target = _str_field(payload, "target", "suite")
    names = suite_names() if target == "suite" else [target]
    instructions = _int_field(payload, "instructions",
                              DEFAULT_INSTRUCTION_BUDGET)
    spec = _spec(payload)
    backend = _str_field(payload, "backend", "cycle")
    policies = _policies(payload, default=[CommitPolicy.BASELINE])
    return [Scenario.workload(name, policy, instructions=instructions,
                              spec=spec, backend=backend).job()
            for name in names for policy in policies]


def _build_verify(payload: Mapping[str, Any]) -> List[SimJob]:
    count = _int_field(payload, "count", 10)
    seed = _int_field(payload, "seed", 0, minimum=0)
    profile = _str_field(payload, "profile", "mixed")
    instructions = _int_field(payload, "instructions",
                              DEFAULT_INSTRUCTION_BUDGET)
    spec = _spec(payload)
    backend = _str_field(payload, "backend", "cycle")
    return [verify_job(s, policy, profile=profile,
                       instructions=instructions, spec=spec,
                       backend=backend)
            for s in range(seed, seed + count)
            for policy in _policies(payload)]


def _build_sweep(payload: Mapping[str, Any]) -> List[SimJob]:
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, (list, tuple)) or not benchmarks:
        raise ProtocolError("'benchmarks' must be a non-empty list")
    backends = payload.get("backends", [_str_field(payload, "backend",
                                                   "cycle")])
    variants = payload.get("variants")
    specs = payload.get("specs")
    sweep = Sweep(benchmarks=list(benchmarks),
                  policies=_policies(payload,
                                     default=[CommitPolicy.BASELINE]),
                  instructions=_int_field(payload, "instructions",
                                          DEFAULT_INSTRUCTION_BUDGET),
                  variants=variants, specs=specs,
                  backends=list(backends))
    return sweep.jobs()


def _build_sample(payload: Mapping[str, Any]) -> List[SimJob]:
    from repro.sample.driver import sample_jobs
    from repro.sample.plan import SamplePlan

    target = _str_field(payload, "target")
    if target not in suite_names():
        raise ProtocolError(
            f"unknown benchmark {target!r}; choose from {suite_names()}")
    defaults = SamplePlan()
    plan = SamplePlan(
        interval=_int_field(payload, "interval", defaults.interval),
        warmup=_int_field(payload, "warmup", defaults.warmup, minimum=0),
        windows=_int_field(payload, "windows", defaults.windows),
        window=_int_field(payload, "window", defaults.window),
        seed=_int_field(payload, "seed", 0, minimum=0),
    )
    total = _int_field(payload, "instructions", 1_000_000)
    spec = _spec(payload)
    backend = _str_field(payload, "backend", "cycle")
    ff_backend = _str_field(payload, "ff_backend", "fast")
    warm = payload.get("warm", True)
    if not isinstance(warm, bool):
        raise ProtocolError("'warm' must be a boolean")
    return [job
            for policy in _policies(payload,
                                    default=[CommitPolicy.BASELINE])
            for job in sample_jobs(target, policy, plan, total, spec=spec,
                                   backend=backend, ff_backend=ff_backend,
                                   warm=warm)]


_BUILDERS = {
    "attack": _build_attack,
    "matrix": _build_matrix,
    "workload": _build_workload,
    "verify": _build_verify,
    "sweep": _build_sweep,
    "sample": _build_sample,
}


def job_summary(job: SimJob) -> Dict[str, Any]:
    """The protocol's compact description of one job."""
    return {
        "key": job.key(),
        "kind": job.kind,
        "target": job.target,
        "policy": job.policy.value,
        "backend": job.params.get("backend", "cycle"),
        "instructions": job.instructions,
    }
