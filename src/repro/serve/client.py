"""The stdlib HTTP client for a running ``repro serve`` instance.

:class:`ServeClient` wraps the server's JSON endpoints with plain
``urllib`` — no third-party dependency, usable from the CLI (``repro
submit`` / ``repro status``), the tests, CI smoke scripts and the bench
service row alike::

    client = ServeClient("http://127.0.0.1:8322")
    envelope = client.submit({"kind": "matrix", "attacks": ["meltdown"]})
    final = client.wait_batch(envelope["batch"])
    for job in final["jobs"]:
        print(job["key"], job["status"])

Server-reported errors (4xx/5xx with an ``{"error": ...}`` body) raise
:class:`ServeError` carrying the HTTP status; transport failures
(connection refused, timeouts) surface as the usual ``OSError``
family.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Any, Dict, Iterator, Optional

from repro.errors import ReproError

DEFAULT_TIMEOUT_S = 60.0

# One long-poll slice while waiting on a batch; short enough that a
# wait_batch deadline is honoured promptly.
_POLL_SLICE_S = 5.0


class ServeError(ReproError):
    """An error response from the server (HTTP status + message)."""

    def __init__(self, message: str, status: int = 0) -> None:
        super().__init__(message)
        self.status = status


class ServeClient:
    """A thin JSON client for one server base URL."""

    def __init__(self, url: str,
                 timeout: float = DEFAULT_TIMEOUT_S) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- endpoint wrappers -------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._get("/v1/healthz")

    def stats(self) -> Dict[str, Any]:
        return self._get("/v1/stats")

    def submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """POST one submission payload; returns the batch envelope."""
        return self._request("POST", "/v1/submit", body=payload)

    def job(self, key: str,
            wait: Optional[float] = None) -> Dict[str, Any]:
        """One job's state; ``wait`` long-polls for a terminal state."""
        return self._get(f"/v1/jobs/{key}", params=_wait_params(wait))

    def jobs(self, status: Optional[str] = None) -> Dict[str, Any]:
        params = {"status": status} if status else None
        return self._get("/v1/jobs", params=params)

    def batch(self, batch_id: str,
              wait: Optional[float] = None) -> Dict[str, Any]:
        return self._get(f"/v1/batches/{batch_id}",
                         params=_wait_params(wait))

    def wait_batch(self, batch_id: str,
                   timeout: float = 600.0) -> Dict[str, Any]:
        """Poll until every job in the batch is terminal.

        Raises :class:`ServeError` if the batch is still running at
        ``timeout``; a batch with failed jobs still returns normally
        (inspect ``["failed"]``).
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServeError(
                    f"batch {batch_id} still running after {timeout}s")
            state = self.batch(batch_id,
                               wait=min(remaining, _POLL_SLICE_S))
            if state["completed"] >= state["total"]:
                return state

    def stream(self, batch_id: str) -> Iterator[Dict[str, Any]]:
        """Yield one dict per NDJSON line from the batch stream."""
        request = urllib.request.Request(
            f"{self.url}/v1/batches/{batch_id}/stream")
        with urllib.request.urlopen(request,
                                    timeout=self.timeout) as response:
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line)

    # -- plumbing ----------------------------------------------------------

    def _get(self, path: str,
             params: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        if params:
            path = f"{path}?{urllib.parse.urlencode(params)}"
        return self._request("GET", path)

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.url}{path}", data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return json.load(response)
        except urllib.error.HTTPError as error:
            raise ServeError(_error_message(error),
                             status=error.code) from error


def _wait_params(wait: Optional[float]) -> Optional[Dict[str, Any]]:
    return {"wait": wait} if wait else None


def _error_message(error: urllib.error.HTTPError) -> str:
    """The server's ``{"error": ...}`` body, or the bare HTTP reason."""
    try:
        payload = json.load(error)
        return str(payload["error"])
    except (ValueError, KeyError, TypeError, OSError):
        return f"HTTP {error.code}: {error.reason}"
