"""The server's background worker pool.

A :class:`WorkerPool` owns a long-lived ``ProcessPoolExecutor`` whose
workers run the exec layer's worker entry point
(:func:`~repro.exec.executor.execute_job` — the same function the PR 1
:class:`~repro.exec.executor.ParallelExecutor` ships to its pool), so a
served simulation is bit-identical to a CLI run of the same job.

Crash containment is the point of the process boundary: a worker that
dies mid-job (OOM kill, segfault in an extension, ``os._exit``) breaks
the pool, which surfaces here as :class:`WorkerCrash` on every affected
job — the server marks those jobs *failed* instead of hanging their
pollers — and the pool is rebuilt for subsequent work.

``runner`` is injectable for tests (e.g. a crashing or slow runner);
it must be a picklable module-level callable taking one
:class:`~repro.exec.job.SimJob`.
"""

from __future__ import annotations

import asyncio
import threading
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Optional

from repro.exec.executor import execute_job
from repro.exec.job import SimJob, SimResult


class WorkerCrash(Exception):
    """A worker process died before returning the job's result."""


class WorkerPool:
    """A restartable pool of simulation worker processes."""

    def __init__(self, workers: int = 2,
                 runner: Optional[Callable[[SimJob], SimResult]] = None
                 ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.runner = runner if runner is not None else execute_job
        self._pool: Optional[ProcessPoolExecutor] = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            return self._pool

    def _retire_pool(self, broken: ProcessPoolExecutor) -> None:
        """Drop a broken pool so the next job gets a fresh one."""
        with self._lock:
            if self._pool is broken:
                self._pool = None
        broken.shutdown(wait=False, cancel_futures=True)

    async def run_job(self, job: SimJob) -> SimResult:
        """Run one job on a worker process and await its result.

        Raises :class:`WorkerCrash` if the worker process dies, and
        re-raises any exception the job itself raised (a failed job,
        not a failed worker).
        """
        pool = self._ensure_pool()
        try:
            with warnings.catch_warnings():
                # Python 3.12+ deprecation-warns on fork() from a
                # multi-threaded process; the pool forks once and the
                # children never touch the server's threads.
                warnings.simplefilter("ignore", DeprecationWarning)
                future = pool.submit(self.runner, job)
            return await asyncio.wrap_future(future)
        except BrokenProcessPool as error:
            self._retire_pool(pool)
            raise WorkerCrash(
                f"worker process died while running {job.describe()} "
                f"({error})") from error

    def shutdown(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            # wait=True joins the executor's management thread, so its
            # wakeup pipe is closed *before* interpreter exit — with
            # wait=False the concurrent.futures atexit hook races the
            # still-alive thread and logs a spurious EBADF traceback.
            pool.shutdown(wait=True, cancel_futures=True)
