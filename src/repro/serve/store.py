"""Shared, concurrency-safe SQLite result store.

:class:`SQLiteResultStore` implements the same interface as the
directory :class:`~repro.exec.cache.ResultCache` — ``get`` / ``put`` /
``clear`` / ``__len__`` / ``describe`` plus the ``hits`` / ``misses`` /
``stores`` counters — backed by one SQLite database that many clients,
worker processes and server instances share safely:

* the database runs in WAL mode with a busy timeout, so concurrent
  readers never block a writer and racing writers serialize instead of
  erroring;
* rows are content-addressed by ``(schema_version, job_key)`` — the same
  :meth:`~repro.exec.job.SimJob.key` content hash the directory cache
  uses, namespaced by :data:`~repro.exec.job.SCHEMA_VERSION` so results
  produced by incompatible simulator versions coexist without ever being
  served across versions;
* ``put`` is a single atomic upsert (``INSERT .. ON CONFLICT DO
  UPDATE``), so two workers finishing the same job leave exactly one
  valid row and a reader can never observe a torn entry;
* ``gc`` prunes by age, entry count, byte budget, or stale schema
  version, and ``stats`` reports the corpus shape — both are what the
  ``repro cache`` CLI drives.

Storage failures degrade exactly like the directory cache: an
unwritable database warns once and the simulation result is still
returned, never discarded.
"""

from __future__ import annotations

import json
import os
import sqlite3
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.exec.cache import default_cache_dir
from repro.exec.job import SCHEMA_VERSION, SimJob, SimResult

# The default database file name, placed inside the cache directory
# (next to the per-version directory-cache subdirectories).
DB_FILENAME = "results.sqlite"

# How long a writer waits on a locked database before erroring.  WAL
# mode makes real contention rare; this absorbs bursts of concurrent
# upserts from many worker processes.
BUSY_TIMEOUT_MS = 10_000

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS results (
    schema_version INTEGER NOT NULL,
    job_key        TEXT    NOT NULL,
    kind           TEXT    NOT NULL,
    target         TEXT    NOT NULL,
    policy         TEXT    NOT NULL,
    payload        TEXT    NOT NULL,
    payload_bytes  INTEGER NOT NULL,
    created_at     REAL    NOT NULL,
    last_used_at   REAL    NOT NULL,
    PRIMARY KEY (schema_version, job_key)
)
"""


def default_db_path(directory: Union[str, Path, None] = None) -> Path:
    """The database location: ``<cache-dir>/results.sqlite``.

    ``directory`` may also name the database file itself (any
    *non-directory* path with a file suffix, e.g. ``results.sqlite`` /
    ``corpus.db``). An existing directory is always treated as one —
    dots in directory names (``mktemp -d`` makes ``/tmp/tmp.XXXX``)
    must not turn the directory into a database path.
    """
    if directory is None:
        return default_cache_dir() / DB_FILENAME
    path = Path(directory)
    if path.suffix and not path.is_dir():   # names the database file
        return path
    return path / DB_FILENAME


class SQLiteResultStore:
    """A shared result store with the :class:`ResultCache` interface."""

    def __init__(self, directory: Union[str, Path, None] = None) -> None:
        self.path = default_db_path(directory)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self._store_warned = False
        self._lock = threading.Lock()
        self._conn: Optional[sqlite3.Connection] = None

    # -- connection management --------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        """The lazily opened, schema-initialized connection."""
        if self._conn is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(str(self.path), timeout=BUSY_TIMEOUT_MS
                                   / 1000.0, check_same_thread=False)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(_SCHEMA_SQL)
            conn.commit()
            self._conn = conn
        return self._conn

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    # -- the ResultCache interface ----------------------------------------

    def get(self, job: SimJob) -> Optional[SimResult]:
        """The stored result for ``job``, or None (counted as a miss)."""
        try:
            with self._lock:
                conn = self._connect()
                row = conn.execute(
                    "SELECT payload FROM results "
                    "WHERE schema_version = ? AND job_key = ?",
                    (SCHEMA_VERSION, job.key())).fetchone()
                if row is not None:
                    # Touch for age-based gc; best-effort, never fatal.
                    conn.execute(
                        "UPDATE results SET last_used_at = ? "
                        "WHERE schema_version = ? AND job_key = ?",
                        (time.time(), SCHEMA_VERSION, job.key()))
                    conn.commit()
            if row is None:
                self.misses += 1
                return None
            result = SimResult.from_dict(json.loads(row[0]))
        except (sqlite3.Error, OSError, ValueError, KeyError, TypeError,
                AttributeError):
            # Unreadable database or corrupt row: recompute.
            self.misses += 1
            return None
        result.from_cache = True
        self.hits += 1
        return result

    def put(self, job: SimJob, result: SimResult) -> None:
        """Atomically upsert ``result`` under ``job``'s content hash.

        Racing writers for the same key serialize on the row; the last
        write wins and readers only ever see a complete payload.  An
        unwritable database degrades to a one-time warning, never
        discarding a simulation that already ran.
        """
        payload = json.dumps(result.to_dict(), separators=(",", ":"))
        now = time.time()
        try:
            with self._lock:
                conn = self._connect()
                conn.execute(
                    "INSERT INTO results (schema_version, job_key, kind, "
                    "  target, policy, payload, payload_bytes, created_at, "
                    "  last_used_at) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?) "
                    "ON CONFLICT(schema_version, job_key) DO UPDATE SET "
                    "  payload = excluded.payload, "
                    "  payload_bytes = excluded.payload_bytes, "
                    "  last_used_at = excluded.last_used_at",
                    (SCHEMA_VERSION, job.key(), job.kind, job.target,
                     job.policy.value, payload, len(payload), now, now))
                conn.commit()
        except (sqlite3.Error, OSError) as error:
            if not self._store_warned:
                print(f"warning: result store disabled for this run: "
                      f"cannot write {self.path} ({error})",
                      file=sys.stderr)
                self._store_warned = True
            return
        self.stores += 1

    def clear(self) -> int:
        """Delete every entry for the *current* schema version.

        Mirrors the directory cache, whose ``clear`` empties only its
        ``v<SCHEMA_VERSION>`` subdirectory; use ``gc(all_schemas=True)``
        to drop stale-version rows too.
        """
        try:
            with self._lock:
                conn = self._connect()
                cursor = conn.execute(
                    "DELETE FROM results WHERE schema_version = ?",
                    (SCHEMA_VERSION,))
                conn.commit()
            return cursor.rowcount
        except (sqlite3.Error, OSError):
            return 0

    def __len__(self) -> int:
        try:
            with self._lock:
                row = self._connect().execute(
                    "SELECT COUNT(*) FROM results "
                    "WHERE schema_version = ?", (SCHEMA_VERSION,)).fetchone()
            return int(row[0])
        except (sqlite3.Error, OSError):
            return 0

    def describe(self) -> str:
        return (f"store {self.path}: {self.hits} hits, "
                f"{self.misses} misses, {self.stores} stored")

    # -- maintenance -------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """The corpus shape: entries, bytes, kinds, schema versions."""
        base: Dict[str, Any] = {
            "backend": "sqlite",
            "location": str(self.path),
            "schema": SCHEMA_VERSION,
            "entries": 0,
            "payload_bytes": 0,
            "by_kind": {},
            "schema_versions": {},
            "db_bytes": 0,
        }
        try:
            with self._lock:
                conn = self._connect()
                row = conn.execute(
                    "SELECT COUNT(*), COALESCE(SUM(payload_bytes), 0) "
                    "FROM results WHERE schema_version = ?",
                    (SCHEMA_VERSION,)).fetchone()
                base["entries"], base["payload_bytes"] = int(row[0]), \
                    int(row[1])
                base["by_kind"] = {
                    kind: count for kind, count in conn.execute(
                        "SELECT kind, COUNT(*) FROM results "
                        "WHERE schema_version = ? GROUP BY kind "
                        "ORDER BY kind", (SCHEMA_VERSION,))}
                base["schema_versions"] = {
                    str(version): count for version, count in conn.execute(
                        "SELECT schema_version, COUNT(*) FROM results "
                        "GROUP BY schema_version ORDER BY schema_version")}
            base["db_bytes"] = os.path.getsize(self.path)
        except (sqlite3.Error, OSError):
            pass
        return base

    def gc(self, max_age_days: Optional[float] = None,
           max_entries: Optional[int] = None,
           max_bytes: Optional[int] = None,
           all_schemas: bool = False) -> int:
        """Prune the corpus; returns the number of rows removed.

        * ``max_age_days`` drops rows not used within the window;
        * ``max_entries`` / ``max_bytes`` keep the most recently used
          rows within the budget (least-recently-used rows go first);
        * ``all_schemas=True`` first drops every row written under a
          schema version other than the current one (stale corpora).
        """
        removed = 0
        try:
            with self._lock:
                conn = self._connect()
                if all_schemas:
                    removed += conn.execute(
                        "DELETE FROM results WHERE schema_version != ?",
                        (SCHEMA_VERSION,)).rowcount
                if max_age_days is not None:
                    cutoff = time.time() - max_age_days * 86_400.0
                    removed += conn.execute(
                        "DELETE FROM results WHERE last_used_at < ?",
                        (cutoff,)).rowcount
                if max_entries is not None:
                    removed += conn.execute(
                        "DELETE FROM results WHERE (schema_version, job_key)"
                        " NOT IN (SELECT schema_version, job_key FROM "
                        "results ORDER BY last_used_at DESC LIMIT ?)",
                        (max(0, max_entries),)).rowcount
                if max_bytes is not None:
                    # Walk rows newest-first, keep until the budget is
                    # spent, drop the rest.
                    keep = []
                    spent = 0
                    for version, key, size in conn.execute(
                            "SELECT schema_version, job_key, payload_bytes "
                            "FROM results ORDER BY last_used_at DESC"):
                        if spent + size > max_bytes:
                            break
                        spent += size
                        keep.append((version, key))
                    total = conn.execute(
                        "SELECT COUNT(*) FROM results").fetchone()[0]
                    if len(keep) < total:
                        conn.execute(
                            "CREATE TEMP TABLE IF NOT EXISTS _keep "
                            "(schema_version INTEGER, job_key TEXT)")
                        conn.execute("DELETE FROM _keep")
                        conn.executemany(
                            "INSERT INTO _keep VALUES (?, ?)", keep)
                        removed += conn.execute(
                            "DELETE FROM results WHERE (schema_version, "
                            "job_key) NOT IN (SELECT schema_version, "
                            "job_key FROM _keep)").rowcount
                conn.commit()
        except (sqlite3.Error, OSError):
            pass
        return removed
