"""Simulation-as-a-service: the asyncio job server.

Two layers, separable on purpose:

* :class:`JobService` — the transport-free core: accepts submission
  payloads (:func:`~repro.serve.protocol.build_jobs`), dedups them by
  job content hash against in-flight work, the in-memory record table
  and the shared result store, dispatches fresh jobs to a
  :class:`~repro.serve.worker.WorkerPool`, and persists every computed
  result back to the store — so many clients asking for the same
  simulation cost exactly one execution.
* :class:`JobServer` — a minimal JSON-over-HTTP/1.1 front-end on
  ``asyncio.start_server`` (stdlib only, no third-party dependency)
  exposing the service.

Endpoints (all JSON; errors are ``{"error": ...}`` with a 4xx/5xx
status):

=======  ==============================  =====================================
method   path                            meaning
=======  ==============================  =====================================
POST     ``/v1/submit``                  submit a batch; returns job keys
GET      ``/v1/jobs``                    list known jobs (``?status=`` filter)
GET      ``/v1/jobs/<key>``              one job's state (``?wait=SECONDS``
                                         long-polls for a terminal state)
GET      ``/v1/batches/<id>``            a submission's states (``?wait=``)
GET      ``/v1/batches/<id>/stream``     NDJSON: one line per job completion
GET      ``/v1/stats``                   store + execution counters
GET      ``/v1/healthz``                 liveness probe
=======  ==============================  =====================================

A submitted job's identifier *is* its :meth:`~repro.exec.job.SimJob.key`
content hash: submit the same payload twice and you poll the same jobs,
whichever client (or server instance) computed them first.
"""

from __future__ import annotations

import asyncio
import json
import secrets
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.errors import ConfigError
from repro.exec.cache import make_cache
from repro.exec.job import SCHEMA_VERSION, SimJob, SimResult
from repro.serve.protocol import (DONE, FAILED, PROTOCOL_VERSION, QUEUED,
                                  RUNNING, TERMINAL_STATES, ProtocolError,
                                  build_jobs, job_summary)
from repro.serve.worker import WorkerPool

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8322

# Submission sources, reported per job in the submit response:
# ``executed`` — new work dispatched to a worker; ``store`` — served
# from the shared result store without simulating; ``inflight`` —
# deduped onto a job another submission is already running; ``memo`` —
# deduped onto a completed in-memory record from this server's lifetime.
SOURCE_EXECUTED = "executed"
SOURCE_STORE = "store"
SOURCE_INFLIGHT = "inflight"
SOURCE_MEMO = "memo"

_MAX_BODY_BYTES = 4 * 1024 * 1024
_MAX_WAIT_S = 120.0


@dataclass
class JobRecord:
    """One known job: its spec, lifecycle state and (eventually) result."""

    job: SimJob
    key: str
    status: str = QUEUED
    result: Optional[SimResult] = None
    error: str = ""
    origin: str = ""                  # SOURCE_EXECUTED or SOURCE_STORE
    submitted_at: float = 0.0
    finished_at: float = 0.0
    done_event: asyncio.Event = field(default_factory=asyncio.Event)

    def summary(self) -> Dict[str, Any]:
        payload = job_summary(self.job)
        payload.update({
            "status": self.status,
            "origin": self.origin or None,
            "error": self.error or None,
        })
        return payload

    def full(self) -> Dict[str, Any]:
        payload = self.summary()
        payload["result"] = (self.result.to_dict()
                             if self.result is not None else None)
        if self.finished_at:
            payload["elapsed_s"] = round(
                self.finished_at - self.submitted_at, 6)
        return payload


class JobService:
    """The transport-free job service a server (or test) drives."""

    def __init__(self, store: Any = None, workers: int = 2,
                 runner: Any = None) -> None:
        self.store = store if store is not None else make_cache("sqlite")
        self.pool = WorkerPool(workers=workers, runner=runner)
        self.records: Dict[str, JobRecord] = {}
        self.batches: Dict[str, List[str]] = {}
        self.counters = {"executed": 0, "store_hits": 0, "memo_hits": 0,
                         "inflight_hits": 0, "failed": 0}
        self.started_at = time.time()
        # Jobs sharing a serial_group run one-at-a-time, in submission
        # order (asyncio.Lock wakes waiters FIFO); ungrouped jobs fan
        # out freely.
        self._group_locks: Dict[str, asyncio.Lock] = {}

    # -- submission --------------------------------------------------------

    async def submit(self, payload: Any) -> Dict[str, Any]:
        """Accept one submission payload; returns the batch envelope.

        Raises :class:`ProtocolError` on malformed payloads (the HTTP
        layer maps it to a 4xx).
        """
        jobs = build_jobs(payload)
        batch_id = secrets.token_hex(8)
        entries: List[Dict[str, Any]] = []
        keys: List[str] = []
        seen_in_batch: Dict[str, str] = {}
        for job in jobs:
            key = job.key()
            if key in seen_in_batch:
                source = seen_in_batch[key]
            else:
                source = self._admit(job, key)
                seen_in_batch[key] = source
            entry = self.records[key].summary()
            entry["source"] = source
            entries.append(entry)
            keys.append(key)
        self.batches[batch_id] = keys
        return {
            "protocol": PROTOCOL_VERSION,
            "schema": SCHEMA_VERSION,
            "batch": batch_id,
            "jobs": entries,
        }

    def _admit(self, job: SimJob, key: str) -> str:
        """Route one job: dedup, store lookup, or dispatch; returns the
        submission source."""
        record = self.records.get(key)
        if record is not None and record.status != FAILED:
            if record.status in TERMINAL_STATES:
                self.counters["memo_hits"] += 1
                return SOURCE_MEMO
            self.counters["inflight_hits"] += 1
            return SOURCE_INFLIGHT
        record = JobRecord(job=job, key=key, submitted_at=time.time())
        self.records[key] = record
        cached = self.store.get(job)
        if cached is not None:
            record.result = cached
            record.status = DONE
            record.origin = SOURCE_STORE
            record.finished_at = time.time()
            record.done_event.set()
            self.counters["store_hits"] += 1
            return SOURCE_STORE
        asyncio.get_running_loop().create_task(self._run(record))
        return SOURCE_EXECUTED

    async def _run(self, record: JobRecord) -> None:
        group = record.job.serial_group
        if group is not None:
            lock = self._group_locks.setdefault(group, asyncio.Lock())
            async with lock:
                await self._execute(record)
        else:
            await self._execute(record)

    async def _execute(self, record: JobRecord) -> None:
        record.status = RUNNING
        try:
            result = await self.pool.run_job(record.job)
        except Exception as error:  # noqa: BLE001 — every failure mode
            # (crashed worker, job-raised ConfigError, pickling trouble)
            # must resolve the record, never hang a poller.
            record.status = FAILED
            record.error = f"{type(error).__name__}: {error}"
            self.counters["failed"] += 1
        else:
            record.result = result
            record.status = DONE
            record.origin = SOURCE_EXECUTED
            self.counters["executed"] += 1
            self.store.put(record.job, result)
        record.finished_at = time.time()
        record.done_event.set()

    # -- queries -----------------------------------------------------------

    async def job_state(self, key: str,
                        wait: Optional[float] = None) -> Dict[str, Any]:
        record = self.records.get(key)
        if record is None:
            raise ProtocolError(f"unknown job {key!r}", status=404)
        if wait and record.status not in TERMINAL_STATES:
            try:
                await asyncio.wait_for(record.done_event.wait(),
                                       timeout=min(wait, _MAX_WAIT_S))
            except asyncio.TimeoutError:
                pass
        return record.full()

    def batch_keys(self, batch_id: str) -> List[str]:
        keys = self.batches.get(batch_id)
        if keys is None:
            raise ProtocolError(f"unknown batch {batch_id!r}", status=404)
        return keys

    async def batch_state(self, batch_id: str,
                          wait: Optional[float] = None) -> Dict[str, Any]:
        keys = self.batch_keys(batch_id)
        records = [self.records[key] for key in keys]
        if wait:
            deadline = time.monotonic() + min(wait, _MAX_WAIT_S)
            for record in records:
                remaining = deadline - time.monotonic()
                if record.status in TERMINAL_STATES or remaining <= 0:
                    continue
                try:
                    await asyncio.wait_for(record.done_event.wait(),
                                           timeout=remaining)
                except asyncio.TimeoutError:
                    break
        states = [record.full() for record in records]
        done = sum(1 for s in states if s["status"] in TERMINAL_STATES)
        return {
            "protocol": PROTOCOL_VERSION,
            "batch": batch_id,
            "total": len(states),
            "completed": done,
            "failed": sum(1 for s in states if s["status"] == FAILED),
            "jobs": states,
        }

    def list_jobs(self, status: Optional[str] = None) -> Dict[str, Any]:
        rows = [record.summary() for record in self.records.values()
                if status is None or record.status == status]
        return {"protocol": PROTOCOL_VERSION, "total": len(rows),
                "jobs": rows}

    def stats(self) -> Dict[str, Any]:
        by_status: Dict[str, int] = {}
        for record in self.records.values():
            by_status[record.status] = by_status.get(record.status, 0) + 1
        store_stats = (self.store.stats()
                       if hasattr(self.store, "stats")
                       else {"backend": type(self.store).__name__})
        return {
            "protocol": PROTOCOL_VERSION,
            "schema": SCHEMA_VERSION,
            "uptime_s": round(time.time() - self.started_at, 3),
            "workers": self.pool.workers,
            "jobs": {"known": len(self.records), **self.counters,
                     "by_status": by_status},
            "store": store_stats,
        }

    def shutdown(self) -> None:
        self.pool.shutdown()


# ---------------------------------------------------------------------------
# the HTTP layer
# ---------------------------------------------------------------------------

class JobServer:
    """JSON-over-HTTP/1.1 front-end for one :class:`JobService`."""

    def __init__(self, service: JobService, host: str = DEFAULT_HOST,
                 port: int = DEFAULT_PORT) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        # Port 0 asks the OS for an ephemeral port; report the real one.
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.service.shutdown()

    async def serve_forever(self, on_start: Any = None) -> None:
        await self.start()
        if on_start is not None:
            on_start(self)
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # -- request plumbing --------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, query, body = await _read_request(reader)
            except _BadRequest as error:
                await _write_json(writer, 400, {"error": str(error)})
                return
            try:
                await self._route(writer, method, path, query, body)
            except ProtocolError as error:
                await _write_json(writer, error.status,
                                  {"error": str(error)})
            except ConfigError as error:
                await _write_json(writer, 400, {"error": str(error)})
            except Exception as error:  # noqa: BLE001 — a handler bug
                # must answer the client, not silently drop the socket.
                await _write_json(
                    writer, 500,
                    {"error": f"{type(error).__name__}: {error}"})
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # CancelledError here means the loop is tearing the
                # handler down mid-close (server shutdown); the socket
                # is gone either way.
                pass

    async def _route(self, writer: asyncio.StreamWriter, method: str,
                     path: str, query: Dict[str, str],
                     body: bytes) -> None:
        service = self.service
        if path == "/v1/healthz":
            _expect(method, "GET")
            await _write_json(writer, 200, {
                "ok": True, "protocol": PROTOCOL_VERSION,
                "schema": SCHEMA_VERSION})
        elif path == "/v1/stats":
            _expect(method, "GET")
            await _write_json(writer, 200, service.stats())
        elif path == "/v1/submit":
            _expect(method, "POST")
            await _write_json(writer, 202,
                              await service.submit(_parse_body(body)))
        elif path == "/v1/jobs":
            _expect(method, "GET")
            await _write_json(writer, 200,
                              service.list_jobs(query.get("status")))
        elif path.startswith("/v1/jobs/"):
            _expect(method, "GET")
            key = path[len("/v1/jobs/"):]
            await _write_json(writer, 200, await service.job_state(
                key, wait=_wait_seconds(query)))
        elif path.startswith("/v1/batches/") and path.endswith("/stream"):
            _expect(method, "GET")
            batch_id = path[len("/v1/batches/"):-len("/stream")]
            await self._stream_batch(writer, batch_id)
        elif path.startswith("/v1/batches/"):
            _expect(method, "GET")
            batch_id = path[len("/v1/batches/"):]
            await _write_json(writer, 200, await service.batch_state(
                batch_id, wait=_wait_seconds(query)))
        else:
            raise ProtocolError(f"no such endpoint {path!r}", status=404)

    async def _stream_batch(self, writer: asyncio.StreamWriter,
                            batch_id: str) -> None:
        """NDJSON stream: one line per job as it completes, then a
        summary line; the closed connection delimits the body."""
        keys = self.service.batch_keys(batch_id)   # 404 before headers
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Connection: close\r\n\r\n")
        await writer.drain()
        failed = 0
        for key in keys:
            record = self.service.records[key]
            if record.status not in TERMINAL_STATES:
                await record.done_event.wait()
            failed += record.status == FAILED
            writer.write(_json_line(record.full()))
            await writer.drain()
        writer.write(_json_line({"batch": batch_id, "total": len(keys),
                                 "failed": failed, "end": True}))
        await writer.drain()


class _BadRequest(Exception):
    pass


def _expect(method: str, wanted: str) -> None:
    if method != wanted:
        raise ProtocolError(f"method {method} not allowed (use {wanted})",
                            status=405)


def _parse_body(body: bytes) -> Any:
    if not body:
        raise ProtocolError("empty request body; expected a JSON object")
    try:
        return json.loads(body)
    except ValueError as error:
        raise ProtocolError(f"request body is not valid JSON: {error}") \
            from error


def _wait_seconds(query: Dict[str, str]) -> Optional[float]:
    raw = query.get("wait")
    if raw is None:
        return None
    try:
        value = float(raw)
    except ValueError as error:
        raise ProtocolError(f"'wait' must be a number, got {raw!r}") \
            from error
    return max(0.0, value)


async def _read_request(reader: asyncio.StreamReader
                        ) -> Tuple[str, str, Dict[str, str], bytes]:
    """Parse one HTTP/1.1 request: (method, path, query, body)."""
    try:
        request_line = await reader.readline()
    except (ValueError, ConnectionError) as error:
        raise _BadRequest(f"unreadable request line ({error})") from error
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3:
        raise _BadRequest("malformed HTTP request line")
    method, target = parts[0].upper(), parts[1]
    split = urlsplit(target)
    query = {key: values[-1]
             for key, values in parse_qs(split.query).items()}
    content_length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError as error:
                raise _BadRequest("bad Content-Length header") from error
    if content_length > _MAX_BODY_BYTES:
        raise _BadRequest(f"request body too large "
                          f"(> {_MAX_BODY_BYTES} bytes)")
    body = (await reader.readexactly(content_length)
            if content_length else b"")
    return method, split.path, query, body


_STATUS_TEXT = {200: "OK", 202: "Accepted", 400: "Bad Request",
                404: "Not Found", 405: "Method Not Allowed",
                500: "Internal Server Error"}


def _json_line(payload: Dict[str, Any]) -> bytes:
    return json.dumps(payload, separators=(",", ":")).encode() + b"\n"


async def _write_json(writer: asyncio.StreamWriter, status: int,
                      payload: Dict[str, Any]) -> None:
    body = json.dumps(payload, separators=(",", ":")).encode()
    head = (f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n").encode("latin-1")
    writer.write(head + body)
    await writer.drain()


# ---------------------------------------------------------------------------
# running a server
# ---------------------------------------------------------------------------

def run_server(service: JobService, host: str = DEFAULT_HOST,
               port: int = DEFAULT_PORT, on_start: Any = None) -> None:
    """Run a server in this thread until interrupted (the CLI path).

    ``on_start(server)`` fires once the socket is bound — with
    ``port=0`` that is the first moment the real port is known.

    SIGINT and SIGTERM both shut down gracefully. Graceful matters:
    the worker pool forks after the socket is bound, so the children
    hold a copy of the listening socket — dying without shutting the
    pool down leaves orphans keeping the port bound (and accepting
    connections nothing will ever answer).
    """
    server = JobServer(service, host=host, port=port)

    async def _main() -> None:
        loop = asyncio.get_running_loop()
        task = asyncio.current_task()
        assert task is not None
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, task.cancel)
            except NotImplementedError:     # non-Unix event loops
                pass
        try:
            await server.serve_forever(on_start=on_start)
        finally:
            await server.stop()

    try:
        asyncio.run(_main())
    except (KeyboardInterrupt, asyncio.CancelledError):
        pass


class BackgroundServer:
    """A server running on its own event loop in a daemon thread.

    The context manager the tests, the bench service row, and the
    example use::

        with BackgroundServer(JobService(store=store)) as server:
            client = ServeClient(server.url)
            ...

    Entering starts the loop and binds the port (``port=0`` picks an
    ephemeral one); exiting stops the server and joins the thread.
    """

    def __init__(self, service: JobService, host: str = DEFAULT_HOST,
                 port: int = 0) -> None:
        self.service = service
        self.server = JobServer(service, host=host, port=port)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return self.server.url

    def __enter__(self) -> "BackgroundServer":
        started = threading.Event()
        failure: List[BaseException] = []

        def _run() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)

            async def _start() -> None:
                try:
                    await self.server.start()
                except BaseException as error:  # noqa: BLE001
                    failure.append(error)
                finally:
                    started.set()

            loop.run_until_complete(_start())
            if not failure:
                loop.run_forever()
            # Give cancelled handler tasks a chance to unwind cleanly.
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
            loop.run_until_complete(self.server.stop())
            loop.close()

        self._thread = threading.Thread(target=_run, daemon=True,
                                        name="repro-serve")
        self._thread.start()
        started.wait(timeout=30)
        if failure:
            self._thread.join(timeout=5)
            raise failure[0]
        return self

    def __exit__(self, *_exc: Any) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)
