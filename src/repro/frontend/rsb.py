"""Return stack buffer: the call/return target predictor.

The RSB is a bounded stack of predicted return addresses: ``call``
pushes its fall-through PC at fetch, ``ret`` pops the top entry as its
predicted target.  Entries are plain virtual addresses with no tagging
or privilege separation — exactly the property P3 mistraining surface
SpectreRSB exploits (one program's pushes steer another program's
return speculation), and overflow discards the *oldest* entry, which is
the underflow-after-deep-recursion behaviour ret2spec relies on.

Like the direction predictors, the RSB snapshot/restores for
checkpointed sampling: a return stack restored cold would mispredict
every outstanding return in the measured window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigError


@dataclass(frozen=True)
class RSBConfig:
    """Geometry of the return stack buffer."""

    depth: int = 16

    def __post_init__(self) -> None:
        if self.depth <= 0:
            raise ConfigError(
                f"RSB depth must be positive, got {self.depth}")


class ReturnStackBuffer:
    """A bounded return-address stack shared by all code.

    ``pop`` on an empty stack returns 0 ("no prediction": the front end
    falls through), and ``push`` on a full stack silently discards the
    oldest entry — both are the conventional, attackable behaviours.
    """

    def __init__(self, config: Optional[RSBConfig] = None) -> None:
        self.config = config or RSBConfig()
        self._depth = self.config.depth
        self._stack: List[int] = []

    @property
    def depth(self) -> int:
        return self._depth

    def push(self, return_pc: int) -> None:
        if len(self._stack) >= self._depth:
            del self._stack[0]  # overflow discards the oldest entry
        self._stack.append(return_pc)

    def pop(self) -> int:
        """Predicted return target; 0 when empty (no prediction)."""
        if not self._stack:
            return 0
        return self._stack.pop()

    def peek(self) -> int:
        """Top-of-stack without popping; 0 when empty."""
        return self._stack[-1] if self._stack else 0

    def flush(self) -> None:
        self._stack.clear()

    def __len__(self) -> int:
        return len(self._stack)

    # -- checkpointing ----------------------------------------------------

    def snapshot(self) -> dict:
        """Trained state for checkpointing."""
        return {"stack": list(self._stack)}

    def restore(self, state: dict) -> None:
        stack = list(state.get("stack", ()))
        if len(stack) > self._depth:
            raise ConfigError(
                f"RSB snapshot has {len(stack)} entries, depth is "
                f"{self._depth}")
        self._stack = [int(pc) for pc in stack]
