"""Direction predictors (the return stack buffer lives in ``rsb.py``).

Four direction predictors are provided:

* :class:`BimodalPredictor` — per-PC 2-bit saturating counters.
* :class:`GsharePredictor` — global-history XOR PC indexed counters.
* :class:`TAGEPredictor` — bimodal base plus partially-tagged tables
  indexed by geometrically increasing history lengths.
* :class:`PerceptronPredictor` — per-PC weight vectors dotted with the
  global history (Jiménez & Lin).

All are *trainable from any context* (no tagging, no privilege
separation), deliberately preserving the mistraining surface Spectre
variant 1 relies on.  SafeSpec "makes no assumptions on the branch
predictor behavior" (paper Section I) — the attacks are free to mistrain.

Each predictor class registers itself with
:data:`repro.api.registry.PREDICTORS`;
:class:`~repro.machine.Machine` dispatches on the registered name, so a
new predictor is one decorated class here and nothing else.
"""

from __future__ import annotations

from typing import List

from repro.api.registry import register_predictor
from repro.errors import ConfigError
# Back-compat re-export: the RSB lived here before it became a real,
# configurable predictor structure in ``repro.frontend.rsb``.
from repro.frontend.rsb import ReturnStackBuffer  # noqa: F401
from repro.statistics import StatRegistry

_TAKEN_THRESHOLD = 2  # 2-bit counter: 0,1 predict not-taken; 2,3 taken
_COUNTER_MAX = 3


@register_predictor("bimodal")
class BimodalPredictor:
    """A table of 2-bit saturating counters indexed by PC bits."""

    def __init__(self, entries: int = 4096, shift: int = 4) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ConfigError(f"entries must be a power of two, got {entries}")
        self._entries = entries
        self._shift = shift
        self._counters: List[int] = [1] * entries  # weakly not-taken
        self.stats = StatRegistry("bimodal")
        self._predictions = self.stats.counter("predictions")
        self._mispredictions = self.stats.counter("mispredictions")

    def _index(self, pc: int) -> int:
        return (pc >> self._shift) & (self._entries - 1)

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""
        self._predictions.increment()
        return self._counters[self._index(pc)] >= _TAKEN_THRESHOLD

    def update(self, pc: int, taken: bool, predicted: bool) -> None:
        """Train with the resolved outcome (callable from any context)."""
        if taken != predicted:
            self._mispredictions.increment()
        index = self._index(pc)
        counter = self._counters[index]
        if taken:
            self._counters[index] = min(counter + 1, _COUNTER_MAX)
        else:
            self._counters[index] = max(counter - 1, 0)

    def misprediction_rate(self) -> float:
        total = self._predictions.value
        return self._mispredictions.value / total if total else 0.0

    def flush(self) -> None:
        self._counters = [1] * self._entries

    def snapshot(self) -> dict:
        """Trained state for checkpointing (statistics excluded)."""
        return {"counters": list(self._counters)}

    def restore(self, state: dict) -> None:
        counters = state["counters"]
        if len(counters) != self._entries:
            raise ConfigError(
                f"bimodal snapshot has {len(counters)} counters, "
                f"table has {self._entries}")
        self._counters = list(counters)


@register_predictor("gshare")
class GsharePredictor:
    """Global-history predictor: counters indexed by (history XOR pc)."""

    def __init__(self, entries: int = 4096, history_bits: int = 12,
                 shift: int = 4) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ConfigError(f"entries must be a power of two, got {entries}")
        if not 1 <= history_bits <= 32:
            raise ConfigError(f"history_bits out of range: {history_bits}")
        self._entries = entries
        self._history_bits = history_bits
        self._shift = shift
        self._history = 0
        self._counters: List[int] = [1] * entries
        self.stats = StatRegistry("gshare")
        self._predictions = self.stats.counter("predictions")
        self._mispredictions = self.stats.counter("mispredictions")

    def _index(self, pc: int) -> int:
        history = self._history & ((1 << self._history_bits) - 1)
        return ((pc >> self._shift) ^ history) & (self._entries - 1)

    def predict(self, pc: int) -> bool:
        self._predictions.increment()
        return self._counters[self._index(pc)] >= _TAKEN_THRESHOLD

    def update(self, pc: int, taken: bool, predicted: bool) -> None:
        if taken != predicted:
            self._mispredictions.increment()
        index = self._index(pc)
        counter = self._counters[index]
        if taken:
            self._counters[index] = min(counter + 1, _COUNTER_MAX)
        else:
            self._counters[index] = max(counter - 1, 0)
        self._history = ((self._history << 1) | int(taken)) & (
            (1 << self._history_bits) - 1)

    def misprediction_rate(self) -> float:
        total = self._predictions.value
        return self._mispredictions.value / total if total else 0.0

    def flush(self) -> None:
        self._counters = [1] * self._entries
        self._history = 0

    def snapshot(self) -> dict:
        """Trained state for checkpointing (statistics excluded)."""
        return {"counters": list(self._counters), "history": self._history}

    def restore(self, state: dict) -> None:
        counters = state["counters"]
        if len(counters) != self._entries:
            raise ConfigError(
                f"gshare snapshot has {len(counters)} counters, "
                f"table has {self._entries}")
        self._counters = list(counters)
        self._history = int(state.get("history", 0))


@register_predictor("tage")
class TAGEPredictor:
    """A small TAGE: bimodal base table plus partially-tagged tables.

    Each tagged table is indexed by the PC hashed with a geometrically
    longer slice of global history; the longest-history tag match
    provides the prediction, falling back to the base bimodal table.
    Allocation on mispredict steals an entry with a clear useful bit.
    """

    _HISTORIES = (8, 16, 32)

    def __init__(self, base_entries: int = 4096, table_entries: int = 1024,
                 tag_bits: int = 10, shift: int = 4) -> None:
        for entries in (base_entries, table_entries):
            if entries <= 0 or entries & (entries - 1):
                raise ConfigError(
                    f"entries must be a power of two, got {entries}")
        self._base_entries = base_entries
        self._table_entries = table_entries
        self._tag_bits = tag_bits
        self._shift = shift
        self._history = 0
        self._base: List[int] = [1] * base_entries
        # Per tagged table: parallel lists of (counter, tag, useful).
        self._counters = [[1] * table_entries for _ in self._HISTORIES]
        self._tags = [[-1] * table_entries for _ in self._HISTORIES]
        self._useful = [[0] * table_entries for _ in self._HISTORIES]
        self.stats = StatRegistry("tage")
        self._predictions = self.stats.counter("predictions")
        self._mispredictions = self.stats.counter("mispredictions")

    def _fold(self, bits: int, width: int) -> int:
        history = self._history & ((1 << bits) - 1)
        folded = 0
        while history:
            folded ^= history & ((1 << width) - 1)
            history >>= width
        return folded

    def _index(self, pc: int, table: int) -> int:
        bits = self._HISTORIES[table]
        width = self._table_entries.bit_length() - 1
        return ((pc >> self._shift) ^ self._fold(bits, width)) & (
            self._table_entries - 1)

    def _tag(self, pc: int, table: int) -> int:
        bits = self._HISTORIES[table]
        return ((pc >> self._shift) ^ self._fold(bits, self._tag_bits)
                ^ (table + 1)) & ((1 << self._tag_bits) - 1)

    def _provider(self, pc: int):
        """Longest-history tag hit: ``(table, index)`` or None."""
        for table in range(len(self._HISTORIES) - 1, -1, -1):
            index = self._index(pc, table)
            if self._tags[table][index] == self._tag(pc, table):
                return table, index
        return None

    def predict(self, pc: int) -> bool:
        self._predictions.increment()
        provider = self._provider(pc)
        if provider is not None:
            table, index = provider
            return self._counters[table][index] >= _TAKEN_THRESHOLD
        base = (pc >> self._shift) & (self._base_entries - 1)
        return self._base[base] >= _TAKEN_THRESHOLD

    def update(self, pc: int, taken: bool, predicted: bool) -> None:
        if taken != predicted:
            self._mispredictions.increment()
        provider = self._provider(pc)
        if provider is not None:
            table, index = provider
            counter = self._counters[table][index]
            self._counters[table][index] = (
                min(counter + 1, _COUNTER_MAX) if taken
                else max(counter - 1, 0))
            if (counter >= _TAKEN_THRESHOLD) == taken:
                self._useful[table][index] = min(
                    self._useful[table][index] + 1, _COUNTER_MAX)
        else:
            base = (pc >> self._shift) & (self._base_entries - 1)
            counter = self._base[base]
            self._base[base] = (min(counter + 1, _COUNTER_MAX) if taken
                                else max(counter - 1, 0))
        if taken != predicted:
            self._allocate(pc, taken,
                           provider[0] if provider is not None else -1)
        self._history = ((self._history << 1) | int(taken)) & (
            (1 << self._HISTORIES[-1]) - 1)

    def _allocate(self, pc: int, taken: bool, above: int) -> None:
        """Claim an entry in a longer-history table after a mispredict."""
        for table in range(above + 1, len(self._HISTORIES)):
            index = self._index(pc, table)
            if self._useful[table][index] == 0:
                self._tags[table][index] = self._tag(pc, table)
                self._counters[table][index] = 2 if taken else 1
                return
            self._useful[table][index] -= 1  # age the survivor

    def misprediction_rate(self) -> float:
        total = self._predictions.value
        return self._mispredictions.value / total if total else 0.0

    def flush(self) -> None:
        self._history = 0
        self._base = [1] * self._base_entries
        self._counters = [[1] * self._table_entries for _ in self._HISTORIES]
        self._tags = [[-1] * self._table_entries for _ in self._HISTORIES]
        self._useful = [[0] * self._table_entries for _ in self._HISTORIES]

    def snapshot(self) -> dict:
        """Trained state for checkpointing (statistics excluded)."""
        return {
            "history": self._history,
            "base": list(self._base),
            "counters": [list(table) for table in self._counters],
            "tags": [list(table) for table in self._tags],
            "useful": [list(table) for table in self._useful],
        }

    def restore(self, state: dict) -> None:
        base = state["base"]
        if len(base) != self._base_entries:
            raise ConfigError(
                f"tage snapshot has {len(base)} base counters, "
                f"table has {self._base_entries}")
        self._history = int(state.get("history", 0))
        self._base = list(base)
        self._counters = [list(table) for table in state["counters"]]
        self._tags = [list(table) for table in state["tags"]]
        self._useful = [list(table) for table in state["useful"]]


@register_predictor("perceptron")
class PerceptronPredictor:
    """Per-PC perceptrons dotted with the global branch history."""

    def __init__(self, entries: int = 1024, history_bits: int = 16,
                 shift: int = 4) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ConfigError(f"entries must be a power of two, got {entries}")
        if not 1 <= history_bits <= 64:
            raise ConfigError(f"history_bits out of range: {history_bits}")
        self._entries = entries
        self._history_bits = history_bits
        self._shift = shift
        # Training threshold from Jiménez & Lin: theta = 1.93h + 14.
        self._theta = int(1.93 * history_bits + 14)
        self._limit = (1 << 7) - 1  # 8-bit signed weights
        self._history = 0  # bit i set = i-th most recent branch taken
        # weights[i] = [bias, w_1 .. w_h]
        self._weights: List[List[int]] = [
            [0] * (history_bits + 1) for _ in range(entries)]
        self.stats = StatRegistry("perceptron")
        self._predictions = self.stats.counter("predictions")
        self._mispredictions = self.stats.counter("mispredictions")

    def _index(self, pc: int) -> int:
        return (pc >> self._shift) & (self._entries - 1)

    def _output(self, pc: int) -> int:
        weights = self._weights[self._index(pc)]
        history = self._history
        total = weights[0]
        for i in range(1, self._history_bits + 1):
            total += weights[i] if history & 1 else -weights[i]
            history >>= 1
        return total

    def predict(self, pc: int) -> bool:
        self._predictions.increment()
        return self._output(pc) >= 0

    def update(self, pc: int, taken: bool, predicted: bool) -> None:
        if taken != predicted:
            self._mispredictions.increment()
        output = self._output(pc)
        if (output >= 0) != taken or abs(output) <= self._theta:
            weights = self._weights[self._index(pc)]
            limit = self._limit
            sign = 1 if taken else -1
            weights[0] = max(-limit, min(limit, weights[0] + sign))
            history = self._history
            for i in range(1, self._history_bits + 1):
                step = sign if history & 1 else -sign
                weights[i] = max(-limit, min(limit, weights[i] + step))
                history >>= 1
        self._history = ((self._history << 1) | int(taken)) & (
            (1 << self._history_bits) - 1)

    def misprediction_rate(self) -> float:
        total = self._predictions.value
        return self._mispredictions.value / total if total else 0.0

    def flush(self) -> None:
        self._history = 0
        self._weights = [[0] * (self._history_bits + 1)
                         for _ in range(self._entries)]

    def snapshot(self) -> dict:
        """Trained state for checkpointing (statistics excluded)."""
        return {"history": self._history,
                "weights": [list(row) for row in self._weights]}

    def restore(self, state: dict) -> None:
        weights = state["weights"]
        if len(weights) != self._entries:
            raise ConfigError(
                f"perceptron snapshot has {len(weights)} rows, "
                f"table has {self._entries}")
        self._history = int(state.get("history", 0))
        self._weights = [list(row) for row in weights]
