"""Direction predictors and the return stack buffer.

Two classic direction predictors are provided:

* :class:`BimodalPredictor` — per-PC 2-bit saturating counters.
* :class:`GsharePredictor` — global-history XOR PC indexed counters.

Both are *trainable from any context* (no tagging, no privilege
separation), deliberately preserving the mistraining surface Spectre
variant 1 relies on.  SafeSpec "makes no assumptions on the branch
predictor behavior" (paper Section I) — the attacks are free to mistrain.

Each predictor class registers itself with
:data:`repro.api.registry.PREDICTORS`;
:class:`~repro.machine.Machine` dispatches on the registered name, so a
new predictor is one decorated class here and nothing else.
"""

from __future__ import annotations

from typing import List

from repro.api.registry import register_predictor
from repro.errors import ConfigError
from repro.statistics import StatRegistry

_TAKEN_THRESHOLD = 2  # 2-bit counter: 0,1 predict not-taken; 2,3 taken
_COUNTER_MAX = 3


@register_predictor("bimodal")
class BimodalPredictor:
    """A table of 2-bit saturating counters indexed by PC bits."""

    def __init__(self, entries: int = 4096, shift: int = 4) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ConfigError(f"entries must be a power of two, got {entries}")
        self._entries = entries
        self._shift = shift
        self._counters: List[int] = [1] * entries  # weakly not-taken
        self.stats = StatRegistry("bimodal")
        self._predictions = self.stats.counter("predictions")
        self._mispredictions = self.stats.counter("mispredictions")

    def _index(self, pc: int) -> int:
        return (pc >> self._shift) & (self._entries - 1)

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""
        self._predictions.increment()
        return self._counters[self._index(pc)] >= _TAKEN_THRESHOLD

    def update(self, pc: int, taken: bool, predicted: bool) -> None:
        """Train with the resolved outcome (callable from any context)."""
        if taken != predicted:
            self._mispredictions.increment()
        index = self._index(pc)
        counter = self._counters[index]
        if taken:
            self._counters[index] = min(counter + 1, _COUNTER_MAX)
        else:
            self._counters[index] = max(counter - 1, 0)

    def misprediction_rate(self) -> float:
        total = self._predictions.value
        return self._mispredictions.value / total if total else 0.0

    def flush(self) -> None:
        self._counters = [1] * self._entries

    def snapshot(self) -> dict:
        """Trained state for checkpointing (statistics excluded)."""
        return {"counters": list(self._counters)}

    def restore(self, state: dict) -> None:
        counters = state["counters"]
        if len(counters) != self._entries:
            raise ConfigError(
                f"bimodal snapshot has {len(counters)} counters, "
                f"table has {self._entries}")
        self._counters = list(counters)


@register_predictor("gshare")
class GsharePredictor:
    """Global-history predictor: counters indexed by (history XOR pc)."""

    def __init__(self, entries: int = 4096, history_bits: int = 12,
                 shift: int = 4) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ConfigError(f"entries must be a power of two, got {entries}")
        if not 1 <= history_bits <= 32:
            raise ConfigError(f"history_bits out of range: {history_bits}")
        self._entries = entries
        self._history_bits = history_bits
        self._shift = shift
        self._history = 0
        self._counters: List[int] = [1] * entries
        self.stats = StatRegistry("gshare")
        self._predictions = self.stats.counter("predictions")
        self._mispredictions = self.stats.counter("mispredictions")

    def _index(self, pc: int) -> int:
        history = self._history & ((1 << self._history_bits) - 1)
        return ((pc >> self._shift) ^ history) & (self._entries - 1)

    def predict(self, pc: int) -> bool:
        self._predictions.increment()
        return self._counters[self._index(pc)] >= _TAKEN_THRESHOLD

    def update(self, pc: int, taken: bool, predicted: bool) -> None:
        if taken != predicted:
            self._mispredictions.increment()
        index = self._index(pc)
        counter = self._counters[index]
        if taken:
            self._counters[index] = min(counter + 1, _COUNTER_MAX)
        else:
            self._counters[index] = max(counter - 1, 0)
        self._history = ((self._history << 1) | int(taken)) & (
            (1 << self._history_bits) - 1)

    def misprediction_rate(self) -> float:
        total = self._predictions.value
        return self._mispredictions.value / total if total else 0.0

    def flush(self) -> None:
        self._counters = [1] * self._entries
        self._history = 0

    def snapshot(self) -> dict:
        """Trained state for checkpointing (statistics excluded)."""
        return {"counters": list(self._counters), "history": self._history}

    def restore(self, state: dict) -> None:
        counters = state["counters"]
        if len(counters) != self._entries:
            raise ConfigError(
                f"gshare snapshot has {len(counters)} counters, "
                f"table has {self._entries}")
        self._counters = list(counters)
        self._history = int(state.get("history", 0))


class ReturnStackBuffer:
    """A bounded return-address stack (provided for completeness; the
    reproduction ISA has no call/return, but the retpoline discussion in
    the paper's related work references RSB behaviour)."""

    def __init__(self, depth: int = 16) -> None:
        if depth <= 0:
            raise ConfigError(f"RSB depth must be positive, got {depth}")
        self._depth = depth
        self._stack: List[int] = []

    def push(self, return_pc: int) -> None:
        if len(self._stack) >= self._depth:
            del self._stack[0]  # overflow discards the oldest entry
        self._stack.append(return_pc)

    def pop(self) -> int:
        """Predicted return target; 0 when empty (mispredict-on-empty)."""
        if not self._stack:
            return 0
        return self._stack.pop()

    def __len__(self) -> int:
        return len(self._stack)
