"""Branch-prediction front end: BTB, direction predictors, RSB."""

from repro.frontend.btb import BranchTargetBuffer, BTBConfig
from repro.frontend.predictors import (BimodalPredictor, GsharePredictor,
                                       ReturnStackBuffer)

__all__ = [
    "BTBConfig",
    "BimodalPredictor",
    "BranchTargetBuffer",
    "GsharePredictor",
    "ReturnStackBuffer",
]
