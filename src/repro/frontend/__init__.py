"""Branch-prediction front end: BTB, direction predictors, RSB."""

from repro.frontend.btb import BranchTargetBuffer, BTBConfig
from repro.frontend.predictors import (BimodalPredictor, GsharePredictor,
                                       PerceptronPredictor, TAGEPredictor)
from repro.frontend.rsb import ReturnStackBuffer, RSBConfig

__all__ = [
    "BTBConfig",
    "BimodalPredictor",
    "BranchTargetBuffer",
    "GsharePredictor",
    "PerceptronPredictor",
    "RSBConfig",
    "ReturnStackBuffer",
    "TAGEPredictor",
]
