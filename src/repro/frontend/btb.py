"""Branch target buffer.

The BTB is indexed by a *partial* PC (low-order bits) and is untagged
beyond that index, matching the paper's threat model property P3: code at
one virtual address can install a target that a branch at a *different*
virtual address (colliding in the index) will consume.  This is the
mechanism Spectre variant 2 uses to hijack speculative control flow, and
SafeSpec deliberately does not try to prevent it — the defense is
downstream, at the leakage point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigError
from repro.statistics import StatRegistry


@dataclass(frozen=True)
class BTBConfig:
    """Geometry of the branch target buffer.

    ``history_bits > 0`` enables BHB-style indexing: the index mixes in
    a global register of recent conditional-branch *directions*, so an
    attacker who replicates the victim's branch-history pattern steers
    which entry an indirect branch consumes — the cross-address-space
    Spectre v2 (BHB) mistraining surface.  The default of 0 keeps the
    classic plain PC-indexed BTB.
    """

    entries: int = 512
    index_bits: int = 9
    shift: int = 4          # instruction alignment discarded from the PC
    history_bits: int = 0   # 0 = plain PC indexing (no BHB)

    def __post_init__(self) -> None:
        if self.entries != 1 << self.index_bits:
            raise ConfigError(
                f"BTB entries ({self.entries}) must equal "
                f"2**index_bits ({1 << self.index_bits})")
        if not 0 <= self.history_bits <= 64:
            raise ConfigError(
                f"BTB history_bits out of range: {self.history_bits}")


class BranchTargetBuffer:
    """Direct-mapped, untagged target cache, shared by all code."""

    def __init__(self, config: Optional[BTBConfig] = None) -> None:
        self.config = config or BTBConfig()
        self.stats = StatRegistry("btb")
        self._lookups = self.stats.counter("lookups")
        self._hits = self.stats.counter("hits")
        self._updates = self.stats.counter("updates")
        self._targets: Dict[int, int] = {}
        self._history_bits = self.config.history_bits
        self._history = 0

    @property
    def history(self) -> int:
        """Current branch-history register value (0 when BHB disabled)."""
        return self._history

    def note_branch(self, taken: bool) -> None:
        """Shift one conditional-branch direction into the BHB.

        The front end calls this with the branch's *predicted* direction
        (what a fetch-time BHB sees); a no-op when ``history_bits`` is 0.
        """
        if self._history_bits:
            self._history = ((self._history << 1) | int(taken)) & (
                (1 << self._history_bits) - 1)

    def _folded_history(self) -> int:
        history = self._history
        width = self.config.index_bits
        folded = 0
        while history:
            folded ^= history & ((1 << width) - 1)
            history >>= width
        return folded

    def index_of(self, pc: int) -> int:
        """BTB set selected by ``pc`` (and the BHB when enabled)."""
        index = (pc >> self.config.shift) & (self.config.entries - 1)
        if self._history_bits:
            index ^= self._folded_history()
        return index

    def predict_target(self, pc: int) -> Optional[int]:
        """Predicted target for a control-flow instruction at ``pc``."""
        self._lookups.increment()
        target = self._targets.get(self.index_of(pc))
        if target is not None:
            self._hits.increment()
        return target

    def update(self, pc: int, target: int) -> None:
        """Record the resolved target of the branch at ``pc``.

        Because entries are untagged, this is also the *poisoning*
        primitive: an attacker branch whose PC collides with the victim's
        installs an arbitrary target that the victim will speculate to.
        """
        self._updates.increment()
        self._targets[self.index_of(pc)] = target

    def aliases(self, pc_a: int, pc_b: int) -> bool:
        """Whether two PCs collide in the BTB (share an entry)."""
        return self.index_of(pc_a) == self.index_of(pc_b)

    def flush(self) -> None:
        self._targets.clear()
        self._history = 0

    def occupancy(self) -> int:
        return len(self._targets)

    def snapshot(self) -> Dict[int, int]:
        """Installed ``index -> target`` entries (warm-state dump).

        The BHB register travels separately (:attr:`history` /
        :meth:`restore_history`) to keep this legacy payload shape —
        existing checkpoints restore unchanged.
        """
        return dict(self._targets)

    def restore(self, targets: Dict[int, int]) -> None:
        """Replace contents with a :meth:`snapshot`."""
        self._targets = dict(targets)

    def restore_history(self, history: int) -> None:
        """Restore the BHB register captured via :attr:`history`."""
        if self._history_bits:
            self._history = int(history) & ((1 << self._history_bits) - 1)
        else:
            self._history = 0
