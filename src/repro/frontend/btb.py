"""Branch target buffer.

The BTB is indexed by a *partial* PC (low-order bits) and is untagged
beyond that index, matching the paper's threat model property P3: code at
one virtual address can install a target that a branch at a *different*
virtual address (colliding in the index) will consume.  This is the
mechanism Spectre variant 2 uses to hijack speculative control flow, and
SafeSpec deliberately does not try to prevent it — the defense is
downstream, at the leakage point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigError
from repro.statistics import StatRegistry


@dataclass(frozen=True)
class BTBConfig:
    """Geometry of the branch target buffer."""

    entries: int = 512
    index_bits: int = 9
    shift: int = 4          # instruction alignment discarded from the PC

    def __post_init__(self) -> None:
        if self.entries != 1 << self.index_bits:
            raise ConfigError(
                f"BTB entries ({self.entries}) must equal "
                f"2**index_bits ({1 << self.index_bits})")


class BranchTargetBuffer:
    """Direct-mapped, untagged target cache, shared by all code."""

    def __init__(self, config: Optional[BTBConfig] = None) -> None:
        self.config = config or BTBConfig()
        self.stats = StatRegistry("btb")
        self._lookups = self.stats.counter("lookups")
        self._hits = self.stats.counter("hits")
        self._updates = self.stats.counter("updates")
        self._targets: Dict[int, int] = {}

    def index_of(self, pc: int) -> int:
        """BTB set selected by ``pc`` (low-order bits after alignment)."""
        return (pc >> self.config.shift) & (self.config.entries - 1)

    def predict_target(self, pc: int) -> Optional[int]:
        """Predicted target for a control-flow instruction at ``pc``."""
        self._lookups.increment()
        target = self._targets.get(self.index_of(pc))
        if target is not None:
            self._hits.increment()
        return target

    def update(self, pc: int, target: int) -> None:
        """Record the resolved target of the branch at ``pc``.

        Because entries are untagged, this is also the *poisoning*
        primitive: an attacker branch whose PC collides with the victim's
        installs an arbitrary target that the victim will speculate to.
        """
        self._updates.increment()
        self._targets[self.index_of(pc)] = target

    def aliases(self, pc_a: int, pc_b: int) -> bool:
        """Whether two PCs collide in the BTB (share an entry)."""
        return self.index_of(pc_a) == self.index_of(pc_b)

    def flush(self) -> None:
        self._targets.clear()

    def occupancy(self) -> int:
        return len(self._targets)

    def snapshot(self) -> Dict[int, int]:
        """Installed ``index -> target`` entries (warm-state dump)."""
        return dict(self._targets)

    def restore(self, targets: Dict[int, int]) -> None:
        """Replace contents with a :meth:`snapshot`."""
        self._targets = dict(targets)
