"""Differential/invariant harness: pipeline vs oracle, plus leakage checks.

One verification case is ``(profile, seed, policy, spec, backend)``: the
fuzzed program runs through the full :class:`~repro.machine.Machine` —
the cycle-accurate core or the fast-functional backend, selected by
name — under the given commit policy and hardware shape, and its final
architectural state is compared field-by-field against the in-order
:class:`~repro.verify.oracle.ReferenceOracle`.

Passing a comma-joined backend list (``"cycle,fast"``) turns a case into
a *cross-backend differential*: every named backend runs the same
program, each is held to the oracle, and the backends are then compared
against each other — architectural state must be bit-identical, and the
fast backend's cycle count must stay within
:data:`CYCLE_TOLERANCE` of the cycle-accurate count (the accuracy
contract documented in the README).  On top of the
equivalence check, the harness reads the SafeSpec engine's invariant
surface (:meth:`~repro.core.safespec.SafeSpecEngine.invariant_stats`)
and asserts the paper's leakage contract:

* **residual** — no speculative shadow entry survives the run;
* **conservation** — every accepted shadow fill is eventually either
  committed or annulled, never lost;
* **no wrong-path promotion** — under WFC a squashed micro-op's state
  must never have reached the committed structures (under WFB this
  holds too, except across a fault — the Meltdown hole the paper
  documents — or an artificial budget stop).

Cases are ordinary :class:`~repro.exec.job.SimJob` values (kind
``"verify"``), so they flow through the executor/cache like any other
simulation: ``Session.verify`` fans a seed range out over worker
processes and replays unchanged (profile, seed, policy, spec) verdicts
from the on-disk result cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.backends import BACKENDS, DEFAULT_BACKEND
from repro.core.policy import CommitPolicy
from repro.errors import ConfigError
from repro.exec.job import (DEFAULT_INSTRUCTION_BUDGET, VERIFY, SimJob,
                            SimResult, spec_params)
from repro.machine import Machine
from repro.spec import MachineSpec, machine_spec_from_params
from repro.verify.fuzz import (FUZZ_FORMAT_VERSION, FuzzProfile,
                               FuzzProgram, fuzz_profile,
                               generate_fuzz_program)
from repro.verify.oracle import OracleResult, ReferenceOracle

# Cross-backend accuracy contract: the fast backend's cycle count must
# stay within this relative tolerance of the cycle-accurate core's
# (measured ratios on the suite sit around 0.88-1.0).
CYCLE_TOLERANCE = 0.25

# The timing half of the contract is stated for realistic instruction
# streams (the suite workloads).  Fuzz micro-programs that halt after a
# few hundred instructions are fault- and miss-dominated edge cases
# where the fast backend's scoreboard legitimately overlaps misses the
# out-of-order core serializes, so cycle drift is only asserted on runs
# at least this long.
TIMING_CONTRACT_MIN_INSTRUCTIONS = 1000


def _backend_names(backend: str) -> List[str]:
    """Split (and validate) a single or comma-joined backend selector."""
    names = [name.strip() for name in backend.split(",") if name.strip()]
    if not names:
        raise ConfigError(f"no backend named in {backend!r}")
    for name in names:
        BACKENDS.entry(name)        # unknown backends fail here, loudly
    return names


@dataclass
class VerifyVerdict:
    """Outcome of one differential case."""

    seed: int
    profile: str
    policy: CommitPolicy
    ok: bool
    mismatches: List[str] = field(default_factory=list)
    invariant_failures: List[str] = field(default_factory=list)
    instructions: int = 0
    cycles: int = 0
    halted_reason: str = ""
    faults: int = 0
    backend: str = DEFAULT_BACKEND
    from_cache: bool = False

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        tag = (f" @{self.backend}" if self.backend != DEFAULT_BACKEND
               else "")
        line = (f"seed {self.seed:4d} {self.profile:8s} "
                f"{self.policy.value:8s}: {status} "
                f"({self.instructions} instr, {self.halted_reason}{tag})")
        for issue in self.mismatches + self.invariant_failures:
            line += f"\n    - {issue}"
        return line


@dataclass
class VerifyReport:
    """A completed verification batch, in submission order."""

    verdicts: List[VerifyVerdict]

    @property
    def passed(self) -> int:
        return sum(1 for v in self.verdicts if v.ok)

    @property
    def failures(self) -> int:
        return len(self.verdicts) - self.passed

    @property
    def ok(self) -> bool:
        return self.failures == 0

    def to_payload(self) -> Dict[str, Any]:
        """Deterministic JSON payload (no cache/transport metadata)."""
        return {
            "fuzz_version": FUZZ_FORMAT_VERSION,
            "cases": len(self.verdicts),
            "passed": self.passed,
            "failures": self.failures,
            "verdicts": [{
                "seed": v.seed,
                "profile": v.profile,
                "policy": v.policy.value,
                "ok": v.ok,
                "mismatches": list(v.mismatches),
                "invariant_failures": list(v.invariant_failures),
                "instructions": v.instructions,
                "cycles": v.cycles,
                "halted_reason": v.halted_reason,
                "faults": v.faults,
                "backend": v.backend,
            } for v in self.verdicts],
        }

    def render_text(self) -> str:
        lines = [v.describe() for v in self.verdicts]
        lines.append(f"{self.passed}/{len(self.verdicts)} cases ok"
                     + (f", {self.failures} FAILED" if self.failures
                        else ""))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# job construction
# ---------------------------------------------------------------------------

def verify_job(seed: int, policy: CommitPolicy,
               profile: str = "mixed",
               instructions: int = DEFAULT_INSTRUCTION_BUDGET,
               spec: Optional[MachineSpec] = None,
               backend: str = DEFAULT_BACKEND) -> SimJob:
    """One differential case as a cacheable job.

    ``profile`` must be a registered fuzz profile name (ad-hoc
    :class:`FuzzProfile` values can run directly through
    :func:`verify_case`).  ``backend`` names the execution backend the
    case holds to the oracle; a comma-joined list (``"cycle,fast"``)
    makes it a cross-backend differential.  The fuzz format version
    namespaces the cache: regenerating programs differently invalidates
    every stored verdict.
    """
    fuzz_profile(profile)           # unknown names fail here, loudly
    _backend_names(backend)
    return SimJob(kind=VERIFY, target=f"{profile}-{seed}", policy=policy,
                  instructions=instructions,
                  params={"seed": seed, "profile": profile,
                          "fuzz_version": FUZZ_FORMAT_VERSION,
                          "backend": backend,
                          **spec_params(spec)})


def _profile_from_params(params: Dict[str, Any]) -> FuzzProfile:
    return fuzz_profile(str(params.get("profile", "mixed")))


# ---------------------------------------------------------------------------
# the differential run
# ---------------------------------------------------------------------------

def run_reference(case: FuzzProgram,
                  max_instructions: Optional[int] = None
                  ) -> "tuple[ReferenceOracle, OracleResult]":
    """Execute one fuzz case on a fresh oracle (the golden state).

    Returns the oracle too so callers (golden-state fixtures) can read
    the final memory image.
    """
    oracle = ReferenceOracle()
    case.apply_memory_image(oracle)
    golden = oracle.run(case.program, max_instructions=max_instructions,
                        fault_handler_pc=case.fault_handler_pc)
    return oracle, golden


def verify_case(case: FuzzProgram, policy: CommitPolicy,
                spec: Optional[MachineSpec] = None,
                max_instructions: Optional[int] = None,
                backend: str = DEFAULT_BACKEND) -> VerifyVerdict:
    """Run one fuzz case differentially and check every invariant.

    A comma-joined ``backend`` (``"cycle,fast"``) delegates to
    :func:`diff_backends_case` for a cross-backend differential.
    """
    names = _backend_names(backend)
    if len(names) > 1:
        return diff_backends_case(case, policy, spec=spec,
                                  max_instructions=max_instructions,
                                  backends=names)
    oracle, golden = run_reference(case, max_instructions=max_instructions)

    machine = Machine.from_spec(spec, policy=policy, backend=names[0])
    case.apply_memory_image(machine)
    result = machine.run(case.program, max_instructions=max_instructions,
                         fault_handler_pc=case.fault_handler_pc)

    mismatches = _compare_states(case, golden, result, oracle, machine)
    invariant_failures = _check_invariants(machine, policy, result)
    return VerifyVerdict(
        seed=case.seed,
        profile=case.profile.name,
        policy=policy,
        ok=not mismatches and not invariant_failures,
        mismatches=mismatches,
        invariant_failures=invariant_failures,
        instructions=result.instructions,
        cycles=result.cycles,
        halted_reason=result.halted_reason,
        faults=len(result.fault_events),
        backend=names[0],
    )


def diff_backends_case(case: FuzzProgram, policy: CommitPolicy,
                       spec: Optional[MachineSpec] = None,
                       max_instructions: Optional[int] = None,
                       backends: "Optional[List[str]]" = None,
                       cycle_tolerance: float = CYCLE_TOLERANCE
                       ) -> VerifyVerdict:
    """One fuzz case across several backends, all held to one oracle.

    Every backend must match the oracle's architectural state and pass
    the SafeSpec invariants (the single-backend check, run per
    backend); since the oracle pins the whole untainted surface, the
    backends are transitively bit-identical there.  Tainted registers
    (timing reads) are timing-dependent by design and not compared.
    On runs long enough for the timing contract
    (:data:`TIMING_CONTRACT_MIN_INSTRUCTIONS`), every non-reference
    backend's cycle count must additionally land within
    ``cycle_tolerance`` (relative) of the first backend named.
    """
    names = backends if backends else [DEFAULT_BACKEND, "fast"]
    oracle, golden = run_reference(case, max_instructions=max_instructions)

    mismatches: List[str] = []
    invariant_failures: List[str] = []
    runs = []
    for name in names:
        machine = Machine.from_spec(spec, policy=policy, backend=name)
        case.apply_memory_image(machine)
        result = machine.run(case.program,
                             max_instructions=max_instructions,
                             fault_handler_pc=case.fault_handler_pc)
        mismatches += [f"[{name}] {issue}" for issue in
                       _compare_states(case, golden, result, oracle,
                                       machine)]
        invariant_failures += [f"[{name}] {issue}" for issue in
                               _check_invariants(machine, policy, result)]
        runs.append((name, result))

    ref_name, ref_result = runs[0]
    long_enough = ref_result.instructions >= TIMING_CONTRACT_MIN_INSTRUCTIONS
    for name, result in runs[1:]:
        if result.instructions != ref_result.instructions:
            mismatches.append(
                f"[{name}] retired {result.instructions} != "
                f"{ref_name} {ref_result.instructions}")
        if long_enough and ref_result.cycles:
            drift = abs(result.cycles - ref_result.cycles) / ref_result.cycles
            if drift > cycle_tolerance:
                mismatches.append(
                    f"[{name}] cycles {result.cycles} drift "
                    f"{drift:.1%} from {ref_name} {ref_result.cycles} "
                    f"(> {cycle_tolerance:.0%} tolerance)")

    return VerifyVerdict(
        seed=case.seed,
        profile=case.profile.name,
        policy=policy,
        ok=not mismatches and not invariant_failures,
        mismatches=mismatches,
        invariant_failures=invariant_failures,
        instructions=ref_result.instructions,
        cycles=ref_result.cycles,
        halted_reason=ref_result.halted_reason,
        faults=len(ref_result.fault_events),
        backend=",".join(names),
    )


def _compare_states(case: FuzzProgram, golden, result, oracle,
                    machine) -> List[str]:
    mismatches: List[str] = []
    if result.halted_reason != golden.halted_reason:
        mismatches.append(
            f"halted_reason: machine={result.halted_reason!r} "
            f"oracle={golden.halted_reason!r}")
    if result.instructions != golden.instructions:
        mismatches.append(
            f"retired instructions: machine={result.instructions} "
            f"oracle={golden.instructions}")
    for index, value in golden.untainted_registers().items():
        got = result.registers[index]
        if got != value:
            mismatches.append(
                f"r{index}: machine={got:#x} oracle={value:#x}")
    machine_faults = [(f.pc, f.vaddr, f.kind) for f in result.fault_events]
    oracle_faults = [(f.pc, f.vaddr, f.kind) for f in golden.fault_events]
    if machine_faults != oracle_faults:
        mismatches.append(
            f"fault events: machine={machine_faults} "
            f"oracle={oracle_faults}")
    for vaddr in case.compare_addresses():
        got = machine.read_word(vaddr)
        want = oracle.read_word(vaddr)
        if got != want:
            mismatches.append(
                f"mem[{vaddr:#x}]: machine={got:#x} oracle={want:#x}")
    return mismatches


def _check_invariants(machine: Machine, policy: CommitPolicy,
                      result) -> List[str]:
    """The SafeSpec leakage contract, read from the engine stats."""
    failures: List[str] = []
    engine = machine.engine
    if engine is None:
        return failures
    stats = engine.invariant_stats()
    for name, row in stats.items():
        if name == "engine":
            continue
        if row["residual"] != 0:
            failures.append(
                f"{name}: {row['residual']} speculative entries survived "
                f"the run")
        retired = row["committed"] + row["annulled"]
        if row["fills"] != retired + row["residual"]:
            failures.append(
                f"{name}: fills={row['fills']} != committed+annulled="
                f"{retired} (speculative state lost or duplicated)")
    leaked = stats["engine"]["promoted_then_squashed"]
    if policy is CommitPolicy.WFC and leaked:
        failures.append(
            f"WFC promoted {leaked} squashed micro-op(s) into committed "
            f"state (speculative leakage)")
    elif (policy is CommitPolicy.WFB and leaked
          and not result.fault_events
          and result.halted_reason != "budget"):
        failures.append(
            f"WFB promoted {leaked} squashed micro-op(s) with no fault "
            f"in the run (speculative leakage)")
    return failures


# ---------------------------------------------------------------------------
# executor worker entry
# ---------------------------------------------------------------------------

def run_verify_job(job: SimJob) -> SimResult:
    """Rebuild one differential case from its job spec and run it."""
    if job.kind != VERIFY:
        raise ConfigError(f"not a verify job: {job.kind!r}")
    params = dict(job.params)
    fuzz_version = int(params.get("fuzz_version", FUZZ_FORMAT_VERSION))
    if fuzz_version != FUZZ_FORMAT_VERSION:
        raise ConfigError(
            f"verify job was built for fuzz format v{fuzz_version}; "
            f"this build generates v{FUZZ_FORMAT_VERSION}")
    seed = int(params["seed"])
    profile = _profile_from_params(params)
    spec = machine_spec_from_params(params)
    backend = str(params.get("backend", DEFAULT_BACKEND))
    case = generate_fuzz_program(profile, seed)
    verdict = verify_case(case, job.policy, spec=spec,
                          max_instructions=job.instructions,
                          backend=backend)
    return SimResult(
        job_key=job.key(),
        kind=job.kind,
        target=job.target,
        policy=job.policy,
        cycles=verdict.cycles,
        instructions=verdict.instructions,
        halted_reason=verdict.halted_reason,
        details={
            "seed": seed,
            "profile": profile.name,
            "ok": verdict.ok,
            "mismatches": list(verdict.mismatches),
            "invariant_failures": list(verdict.invariant_failures),
            "faults": verdict.faults,
            "backend": verdict.backend,
        },
    )


def verdict_from_sim(result: SimResult) -> VerifyVerdict:
    """Rehydrate the verdict view of a (possibly cached) job result."""
    details = result.details
    return VerifyVerdict(
        seed=int(details.get("seed", -1)),
        profile=str(details.get("profile", "?")),
        policy=result.policy,
        ok=bool(details.get("ok", False)),
        mismatches=list(details.get("mismatches", [])),
        invariant_failures=list(details.get("invariant_failures", [])),
        instructions=result.instructions,
        cycles=result.cycles,
        halted_reason=result.halted_reason,
        faults=int(details.get("faults", 0)),
        backend=str(details.get("backend", DEFAULT_BACKEND)),
        from_cache=result.from_cache,
    )
