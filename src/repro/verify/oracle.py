"""The in-order reference interpreter — the architectural oracle.

A :class:`ReferenceOracle` executes a :class:`~repro.isa.program.Program`
one instruction at a time with no pipeline, no speculation and no
caches, producing the architectural result the out-of-order core must
also reach (paper Section III: speculation must not affect
correctness).  It deliberately mirrors the :class:`~repro.machine.Machine`
setup surface (``map_user_range`` / ``map_kernel_range`` /
``write_word`` / ``run``) so a differential harness can drive both from
one description.

Semantics are the ISA's architectural contract, shared with
:mod:`repro.pipeline.core`:

* 64-bit wrapping register arithmetic, signed branch compares, shift
  amounts masked to 6 bits;
* loads/stores translate through the page table; an unmapped or
  privilege-violating access raises an architectural fault *at* that
  instruction (the in-order analogue of the core's commit-time fault),
  transfers to the fault handler when one is installed, and never
  retires the faulting instruction;
* ``clflush`` and ``fence`` have no architectural effect; ``halt``
  retires and stops; running past the code image stops with
  ``ran_off_code``; an instruction budget stops with ``budget``.

``rdtsc`` is the one architecturally timing-dependent instruction: its
destination register becomes *tainted* (value unknowable without a
cycle-accurate model) and taint propagates through ALU dataflow.  Using
a tainted value where the architectural outcome would depend on it — an
address, a branch operand, a store value, an indirect target — raises
:class:`~repro.errors.OracleError`; the differential harness simply
excludes tainted registers from state comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import OracleError, SimulationError
from repro.isa.instructions import (AluOp, BranchCond, INSTRUCTION_BYTES,
                                    Instruction, Opcode)
from repro.isa.program import Program
from repro.isa.registers import NUM_REGISTERS, to_signed, to_unsigned
from repro.memory.dram import MainMemory
from repro.memory.paging import (PagePermissions, PageTable, PrivilegeLevel)

# Generous backstop so a buggy generator cannot spin the oracle forever;
# real fuzz programs retire a few hundred instructions.
DEFAULT_STEP_LIMIT = 1_000_000


@dataclass(frozen=True)
class OracleFault:
    """One architectural fault, cycle-free (the oracle has no clock)."""

    pc: int
    vaddr: int
    kind: str


@dataclass
class OracleResult:
    """Final architectural state of one oracle execution."""

    registers: Tuple[int, ...]
    instructions: int
    halted_reason: str
    fault_events: List[OracleFault] = field(default_factory=list)
    tainted: FrozenSet[int] = frozenset()

    def reg(self, index: int) -> int:
        return self.registers[index]

    def untainted_registers(self) -> Dict[int, int]:
        """Register values whose architectural content is determined."""
        return {index: value for index, value in enumerate(self.registers)
                if index not in self.tainted}


class ReferenceOracle:
    """A memory image plus an in-order interpreter over it.

    Like :class:`~repro.machine.Machine`, the oracle is persistent:
    memory written by one :meth:`run` (or by setup helpers) is visible
    to the next, so differential tests can replay multi-program
    sequences.  Unlike the machine there is no micro-architectural
    state at all.
    """

    def __init__(self, page_table: Optional[PageTable] = None) -> None:
        self.page_table = page_table or PageTable()
        self.memory = MainMemory()

    # ------------------------------------------------------------------
    # memory setup (Machine-compatible surface)
    # ------------------------------------------------------------------

    def map_user_range(self, start_vaddr: int, size: int) -> None:
        self.page_table.map_range(start_vaddr, size, PagePermissions())

    def map_kernel_range(self, start_vaddr: int, size: int) -> None:
        self.page_table.map_range(
            start_vaddr, size, PagePermissions(supervisor_only=True))

    def write_word(self, vaddr: int, value: int) -> None:
        translation = self.page_table.lookup(vaddr)
        if translation is None:
            raise KeyError(f"vaddr {vaddr:#x} is not mapped")
        self.memory.write_word(translation.physical(vaddr), value)

    def read_word(self, vaddr: int) -> int:
        translation = self.page_table.lookup(vaddr)
        if translation is None:
            raise KeyError(f"vaddr {vaddr:#x} is not mapped")
        return self.memory.read_word(translation.physical(vaddr))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(self, program: Program,
            max_instructions: Optional[int] = None,
            privilege: PrivilegeLevel = PrivilegeLevel.USER,
            fault_handler_pc: Optional[int] = None,
            initial_registers: Optional[Dict[int, int]] = None,
            map_code: bool = True,
            step_limit: int = DEFAULT_STEP_LIMIT) -> OracleResult:
        """Interpret ``program`` to completion; same signature as
        :meth:`repro.machine.Machine.run`."""
        if map_code and program.code_bytes:
            self.page_table.map_range(program.code_base, program.code_bytes)
        regs = [0] * NUM_REGISTERS
        for reg, value in (initial_registers or {}).items():
            regs[reg] = to_unsigned(value)
        tainted: set = set()
        faults: List[OracleFault] = []
        pc = program.code_base
        retired = 0
        steps = 0

        while True:
            steps += 1
            if steps > step_limit:
                raise SimulationError(
                    f"oracle exceeded step limit {step_limit}")
            inst = program.fetch(pc)
            if inst is None:
                return self._result(regs, retired, "ran_off_code",
                                    faults, tainted)
            next_pc = pc + INSTRUCTION_BYTES
            op = inst.opcode

            if op is Opcode.ALU:
                regs[inst.rd] = self._alu(inst, regs)
                self._propagate_taint(inst, tainted)
            elif op is Opcode.LOADIMM:
                regs[inst.rd] = to_unsigned(inst.imm)
                tainted.discard(inst.rd)
            elif op is Opcode.LOAD:
                fault = self._load(inst, regs, tainted, pc, privilege)
                if fault is not None:
                    faults.append(fault)
                    if fault_handler_pc is None:
                        return self._result(regs, retired, "fault",
                                            faults, tainted)
                    pc = fault_handler_pc
                    continue
            elif op is Opcode.STORE:
                fault = self._store(inst, regs, tainted, pc, privilege)
                if fault is not None:
                    faults.append(fault)
                    if fault_handler_pc is None:
                        return self._result(regs, retired, "fault",
                                            faults, tainted)
                    pc = fault_handler_pc
                    continue
            elif op is Opcode.BRANCH:
                if inst.rs1 in tainted or inst.rs2 in tainted:
                    raise OracleError(
                        f"branch on timing-tainted register at {pc:#x}")
                if self._branch_taken(inst, regs):
                    next_pc = program.pc_of(inst.target)
            elif op is Opcode.JMP:
                next_pc = program.pc_of(inst.target)
            elif op is Opcode.JMPI:
                if inst.rs1 in tainted:
                    raise OracleError(
                        f"jmpi through timing-tainted register at {pc:#x}")
                next_pc = regs[inst.rs1]
            elif op is Opcode.CALL:
                regs[inst.rd] = next_pc  # link: fall-through address
                tainted.discard(inst.rd)
                next_pc = program.pc_of(inst.target)
            elif op is Opcode.RET:
                if inst.rs1 in tainted:
                    raise OracleError(
                        f"ret through timing-tainted register at {pc:#x}")
                next_pc = regs[inst.rs1]
            elif op is Opcode.RDTSC:
                # Timing-dependent: canonical zero, tracked as tainted.
                regs[inst.rd] = 0
                tainted.add(inst.rd)
            elif op is Opcode.CLFLUSH:
                if inst.rs1 in tainted:
                    raise OracleError(
                        f"clflush of timing-tainted address at {pc:#x}")
            # FENCE / NOP / HALT: no architectural effect here.

            retired += 1
            if op is Opcode.HALT:
                return self._result(regs, retired, "halt", faults, tainted)
            if max_instructions is not None and retired >= max_instructions:
                return self._result(regs, retired, "budget", faults, tainted)
            pc = next_pc

    # -- load checking: mirrors the commit-time rule of the core, where
    # the *read* permission is evaluated against the running privilege.

    def _load(self, inst: Instruction, regs: List[int], tainted: set,
              pc: int, privilege: PrivilegeLevel) -> Optional[OracleFault]:
        if inst.rs1 in tainted:
            raise OracleError(
                f"load through timing-tainted base register at {pc:#x}")
        vaddr = to_unsigned(regs[inst.rs1] + inst.imm)
        translation = self.page_table.lookup(vaddr)
        if translation is None:
            return OracleFault(pc=pc, vaddr=vaddr, kind="unmapped")
        if not translation.permissions.allows(
                write=False, execute=False, privilege=privilege):
            return OracleFault(pc=pc, vaddr=vaddr, kind="permission")
        regs[inst.rd] = self.memory.read_word(translation.physical(vaddr))
        tainted.discard(inst.rd)
        return None

    def _store(self, inst: Instruction, regs: List[int], tainted: set,
               pc: int, privilege: PrivilegeLevel) -> Optional[OracleFault]:
        if inst.rs1 in tainted:
            raise OracleError(
                f"store through timing-tainted base register at {pc:#x}")
        if inst.rs2 in tainted:
            raise OracleError(
                f"store of timing-tainted value at {pc:#x}")
        vaddr = to_unsigned(regs[inst.rs1] + inst.imm)
        translation = self.page_table.lookup(vaddr)
        if translation is None:
            return OracleFault(pc=pc, vaddr=vaddr, kind="unmapped")
        if not translation.permissions.allows(
                write=True, execute=False, privilege=privilege):
            return OracleFault(pc=pc, vaddr=vaddr, kind="permission")
        self.memory.write_word(translation.physical(vaddr),
                               regs[inst.rs2])
        return None

    @staticmethod
    def _alu(inst: Instruction, regs: List[int]) -> int:
        lhs = regs[inst.rs1]
        if inst.rs2 is not None:
            rhs = regs[inst.rs2]
        else:
            rhs = to_unsigned(inst.imm)
        op = inst.alu_op
        if op is AluOp.ADD:
            value = lhs + rhs
        elif op is AluOp.SUB:
            value = lhs - rhs
        elif op is AluOp.MUL:
            value = lhs * rhs
        elif op is AluOp.AND:
            value = lhs & rhs
        elif op is AluOp.OR:
            value = lhs | rhs
        elif op is AluOp.XOR:
            value = lhs ^ rhs
        elif op is AluOp.SHL:
            value = lhs << (rhs & 63)
        else:
            value = lhs >> (rhs & 63)
        return to_unsigned(value)

    @staticmethod
    def _propagate_taint(inst: Instruction, tainted: set) -> None:
        if inst.rs1 in tainted or (inst.rs2 is not None
                                   and inst.rs2 in tainted):
            tainted.add(inst.rd)
        else:
            tainted.discard(inst.rd)

    @staticmethod
    def _branch_taken(inst: Instruction, regs: List[int]) -> bool:
        lhs = to_signed(regs[inst.rs1])
        rhs = to_signed(regs[inst.rs2])
        cond = inst.cond
        if cond is BranchCond.EQ:
            return lhs == rhs
        if cond is BranchCond.NE:
            return lhs != rhs
        if cond is BranchCond.LT:
            return lhs < rhs
        return lhs >= rhs

    @staticmethod
    def _result(regs: List[int], retired: int, reason: str,
                faults: List[OracleFault],
                tainted: set) -> OracleResult:
        return OracleResult(
            registers=tuple(regs),
            instructions=retired,
            halted_reason=reason,
            fault_events=list(faults),
            tainted=frozenset(tainted),
        )
