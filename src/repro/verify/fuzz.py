"""Seeded ISA program fuzzer: random-but-well-formed test programs.

``generate_fuzz_program(profile, seed)`` builds a deterministic,
guaranteed-terminating program on top of
:class:`~repro.isa.assembler.ProgramBuilder`, together with the memory
image it expects — the fuzz analogue of the workload generator's
:class:`~repro.workloads.generator.WorkloadProgram`.

Programs mix every architecturally interesting construct:

* ALU chains over a pool of data registers (all eight operations,
  register and immediate forms, 64-bit wraparound values);
* bounded loads/stores/clflushes into a private data region (base
  register + displacement, both li-computed and immediate-offset
  forms), so every address is statically known-mapped;
* forward skip-branches over real data values and counted backward
  loops (a dedicated counter register against the dedicated zero
  register), so control flow always terminates;
* computed ``li``+``jmpi`` no-op hops (the indirect-branch/BTB path);
* ``rdtsc`` into a write-only sink register and ``fence`` barriers;
* optionally, a supervisor-page load that must fault at commit and
  divert to a handler (the Meltdown-shaped architectural path).

Register convention (the well-formedness contract the oracle's taint
tracking enforces): ``r0`` is a materialised zero, ``r1`` the data-region
base, ``r2`` address/jmpi scratch, ``r3``–``r11`` the data pool,
``r12``/``r13`` loop counters, ``r14`` the rdtsc sink (never read),
``r15`` the fault-handler marker register.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.isa.assembler import ProgramBuilder
from repro.isa.instructions import INSTRUCTION_BYTES
from repro.isa.program import Program

# Bump when generated programs (or their memory image) change for a
# given (profile, seed): verify-job cache keys carry this version so
# stale differential verdicts can never be replayed from the cache.
# v2: call/ret construct (call_fraction) joined the op draw.
FUZZ_FORMAT_VERSION = 2

_ALU_OPS = ("add", "sub", "mul", "and", "or", "xor", "shl", "shr")
_BRANCH_CONDS = ("eq", "ne", "lt", "ge")

# -- register convention ----------------------------------------------------
R_ZERO = 0
R_DATA_BASE = 1
R_SCRATCH = 2
DATA_REGS = tuple(range(3, 12))
LOOP_REGS = (12, 13)
R_TSC_SINK = 14
R_FAULT_MARK = 15

FAULT_MARKER = 0xFA17


@dataclass(frozen=True)
class FuzzProfile:
    """Shape parameters for one family of fuzzed programs.

    Fractions weight the per-op draw (the remainder becomes plain ALU
    work); structural fields bound program size and loop depth so every
    generated program terminates by construction.
    """

    name: str = "mixed"
    ops: int = 120                  # straight-line op budget
    loops: int = 2                  # counted loops (max nesting 2)
    loop_body_ops: int = 6
    max_loop_iterations: int = 6
    load_fraction: float = 0.18
    store_fraction: float = 0.14
    branch_fraction: float = 0.12
    clflush_fraction: float = 0.04
    rdtsc_fraction: float = 0.04
    fence_fraction: float = 0.03
    jmpi_fraction: float = 0.04
    call_fraction: float = 0.0
    fault_epilogue_probability: float = 0.5
    data_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.ops < 1:
            raise ConfigError("fuzz profile needs ops >= 1")
        if self.data_bytes < 64:
            raise ConfigError("fuzz profile needs data_bytes >= 64")
        if self.max_loop_iterations < 1:
            raise ConfigError("fuzz profile needs max_loop_iterations >= 1")
        if self.loops < 0 or self.loops > len(LOOP_REGS):
            raise ConfigError(
                f"fuzz profile supports 0..{len(LOOP_REGS)} loops")
        fractions = (self.load_fraction + self.store_fraction
                     + self.branch_fraction + self.clflush_fraction
                     + self.rdtsc_fraction + self.fence_fraction
                     + self.jmpi_fraction + self.call_fraction)
        if fractions > 1.0:
            raise ConfigError("fuzz profile op fractions exceed 1.0")

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FuzzProfile":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigError(
                f"unknown fuzz profile field(s) {sorted(unknown)}")
        return cls(**payload)


FUZZ_PROFILES: Dict[str, FuzzProfile] = {
    "mixed": FuzzProfile(name="mixed"),
    "alu": FuzzProfile(
        name="alu", ops=160, loops=1, load_fraction=0.0,
        store_fraction=0.0, branch_fraction=0.05, clflush_fraction=0.0,
        rdtsc_fraction=0.02, fence_fraction=0.0, jmpi_fraction=0.0,
        fault_epilogue_probability=0.0),
    "memory": FuzzProfile(
        name="memory", ops=140, loops=1, load_fraction=0.35,
        store_fraction=0.30, branch_fraction=0.05,
        clflush_fraction=0.08, rdtsc_fraction=0.0, fence_fraction=0.02,
        jmpi_fraction=0.0, fault_epilogue_probability=0.25),
    "control": FuzzProfile(
        name="control", ops=100, loops=2, loop_body_ops=8,
        load_fraction=0.10, store_fraction=0.05, branch_fraction=0.30,
        clflush_fraction=0.0, rdtsc_fraction=0.02, fence_fraction=0.02,
        jmpi_fraction=0.12, fault_epilogue_probability=0.25),
    "faulty": FuzzProfile(
        name="faulty", ops=80, loops=1, load_fraction=0.20,
        store_fraction=0.15, branch_fraction=0.10,
        fault_epilogue_probability=1.0),
    "call-ret": FuzzProfile(
        name="call-ret", ops=110, loops=1, loop_body_ops=6,
        load_fraction=0.08, store_fraction=0.05, branch_fraction=0.12,
        clflush_fraction=0.0, rdtsc_fraction=0.02, fence_fraction=0.02,
        jmpi_fraction=0.06, call_fraction=0.25,
        fault_epilogue_probability=0.25),
}


def fuzz_profile(name: str) -> FuzzProfile:
    """Look up a registered profile by name."""
    try:
        return FUZZ_PROFILES[name]
    except KeyError:
        raise ConfigError(
            f"unknown fuzz profile {name!r}; "
            f"known: {', '.join(sorted(FUZZ_PROFILES))}")


@dataclass
class FuzzProgram:
    """One generated test case: program + the memory image it expects."""

    profile: FuzzProfile
    seed: int
    program: Program
    data_base: int
    data_bytes: int
    kernel_base: int
    memory_words: List[Tuple[int, int]] = field(default_factory=list)
    fault_handler_label: Optional[str] = None

    @property
    def fault_handler_pc(self) -> Optional[int]:
        if self.fault_handler_label is None:
            return None
        return self.program.label_pc(self.fault_handler_label)

    def apply_memory_image(self, machine) -> None:
        """Map the regions and install the initial data words.

        ``machine`` is anything with the Machine setup surface — a real
        :class:`~repro.machine.Machine` or a
        :class:`~repro.verify.oracle.ReferenceOracle`.
        """
        machine.map_user_range(self.data_base, self.data_bytes)
        machine.map_kernel_range(self.kernel_base, 4096)
        for vaddr, value in self.memory_words:
            machine.write_word(vaddr, value)

    def compare_addresses(self) -> List[int]:
        """Word addresses the differential harness checks after a run."""
        addrs = list(range(self.data_base,
                           self.data_base + self.data_bytes, 8))
        addrs.append(self.kernel_base)
        return addrs


class _FuzzEmitter:
    """Stateful op emitter shared by straight-line and loop bodies."""

    def __init__(self, builder: ProgramBuilder, profile: FuzzProfile,
                 rng: random.Random, data_base: int,
                 code_base: int) -> None:
        self._b = builder
        self._profile = profile
        self._rng = rng
        self._data_base = data_base
        self._code_base = code_base
        self._label_counter = 0

    # -- helpers -----------------------------------------------------------

    def _data_reg(self) -> int:
        return self._rng.choice(DATA_REGS)

    def _offset(self) -> int:
        return self._rng.randrange(0, self._profile.data_bytes - 8)

    def _fresh_label(self, prefix: str) -> str:
        self._label_counter += 1
        return f"{prefix}{self._label_counter}"

    # -- op emitters --------------------------------------------------------

    def emit_op(self) -> None:
        p = self._profile
        draw = self._rng.random()
        edge = p.load_fraction
        if draw < edge:
            return self._emit_load()
        edge += p.store_fraction
        if draw < edge:
            return self._emit_store()
        edge += p.branch_fraction
        if draw < edge:
            return self._emit_branch()
        edge += p.clflush_fraction
        if draw < edge:
            return self._emit_clflush()
        edge += p.rdtsc_fraction
        if draw < edge:
            return self._emit_rdtsc()
        edge += p.fence_fraction
        if draw < edge:
            self._b.fence()
            return None
        edge += p.jmpi_fraction
        if draw < edge:
            return self._emit_jmpi_hop()
        edge += p.call_fraction
        if draw < edge:
            return self._emit_call_ret()
        return self._emit_alu()

    def _emit_alu(self) -> None:
        op = self._rng.choice(_ALU_OPS)
        rd = self._data_reg()
        rs1 = self._data_reg()
        if self._rng.random() < 0.5:
            self._b.alu(op, rd, rs1, self._data_reg())
        else:
            imm = self._rng.randrange(-(1 << 16), 1 << 16)
            self._b.alu(op, rd, rs1, imm=imm)

    def _emit_load(self) -> None:
        rd = self._data_reg()
        offset = self._offset()
        if self._rng.random() < 0.5:
            # li-computed absolute address, zero displacement
            self._b.li(R_SCRATCH, self._data_base + offset)
            self._b.load(rd, R_SCRATCH, 0)
        else:
            # base register + immediate displacement
            self._b.load(rd, R_DATA_BASE, offset)

    def _emit_store(self) -> None:
        data = self._data_reg()
        offset = self._offset()
        if self._rng.random() < 0.5:
            self._b.li(R_SCRATCH, self._data_base + offset)
            self._b.store(R_SCRATCH, data, 0)
        else:
            self._b.store(R_DATA_BASE, data, offset)

    def _emit_branch(self) -> None:
        """A forward skip-branch over 1–3 simple ops."""
        label = self._fresh_label("skip")
        cond = self._rng.choice(_BRANCH_CONDS)
        lhs = self._data_reg()
        rhs = R_ZERO if self._rng.random() < 0.3 else self._data_reg()
        self._b.branch(cond, lhs, rhs, label)
        for _ in range(self._rng.randrange(1, 4)):
            self._emit_alu()
        self._b.label(label)

    def _emit_clflush(self) -> None:
        self._b.clflush(R_DATA_BASE, self._offset())

    def _emit_rdtsc(self) -> None:
        self._b.rdtsc(R_TSC_SINK)
        if self._rng.random() < 0.5:
            # Occasionally overwrite the sink: exercises taint clearing.
            self._b.li(R_TSC_SINK, self._rng.randrange(0, 1 << 16))

    def _emit_call_ret(self) -> None:
        """A balanced inline call: ``call`` a forward function of 1–3
        ALU ops that returns through its link register (the RSB push/pop
        pair), with the mainline jumping over the function body.  The
        body never emits nested constructs, so the link in ``R_SCRATCH``
        survives until the ``ret``."""
        fn = self._fresh_label("fn")
        done = self._fresh_label("fnend")
        self._b.call(R_SCRATCH, fn)
        self._b.jmp(done)
        self._b.label(fn)
        for _ in range(self._rng.randrange(1, 4)):
            self._emit_alu()
        self._b.ret(R_SCRATCH)
        self._b.label(done)

    def _emit_jmpi_hop(self) -> None:
        """``li`` the pc of the next-next instruction, then ``jmpi`` to
        it — a statically known indirect jump (no BTB entry on the first
        encounter, so the fall-through misprediction path is exercised
        too)."""
        target_index = self._b.here() + 2
        target_pc = self._code_base + target_index * INSTRUCTION_BYTES
        self._b.li(R_SCRATCH, target_pc)
        self._b.jmpi(R_SCRATCH)


def generate_fuzz_program(profile: FuzzProfile, seed: int,
                          code_base: int = 0x1000,
                          data_base: int = 0x20000,
                          kernel_base: int = 0x80000) -> FuzzProgram:
    """Generate the deterministic test case for ``(profile, seed)``."""
    # Seeded with a *string*: Random() hashes str seeds with SHA-512,
    # which is stable across processes and interpreter restarts (a
    # tuple seed would go through hash() and break under PYTHONHASHSEED
    # randomization — executor workers must regenerate identically).
    seed_key = (f"v{FUZZ_FORMAT_VERSION}:{sorted(profile.to_dict().items())}"
                f":{seed}:{code_base:#x}:{data_base:#x}")
    rng = random.Random(seed_key)
    b = ProgramBuilder(code_base=code_base)
    emitter = _FuzzEmitter(b, profile, rng, data_base, code_base)

    # ---- architectural setup: zero register, base pointer, data pool.
    b.li(R_ZERO, 0)
    b.li(R_DATA_BASE, data_base)
    for reg in DATA_REGS:
        b.li(reg, rng.randrange(0, 1 << 64))

    # ---- straight-line sections interleaved with counted loops.
    loops = min(profile.loops, len(LOOP_REGS))
    sections = loops + 1
    ops_per_section = max(1, profile.ops // sections)
    for section in range(sections):
        for _ in range(ops_per_section):
            emitter.emit_op()
        if section < loops:
            counter = LOOP_REGS[section]
            iterations = rng.randrange(1, profile.max_loop_iterations + 1)
            head = f"loop{section}"
            b.li(counter, iterations)
            b.label(head)
            for _ in range(profile.loop_body_ops):
                emitter.emit_op()
            b.alu("sub", counter, counter, imm=1)
            b.branch("ne", counter, R_ZERO, head)

    # ---- optional faulting epilogue: a supervisor-page load that must
    # fault at commit, squash everything younger, and divert to the
    # handler.  The wrong-path destination write must never commit.
    fault_handler_label = None
    if rng.random() < profile.fault_epilogue_probability:
        fault_handler_label = "fault_handler"
        victim = emitter._data_reg()
        b.li(R_SCRATCH, kernel_base)
        b.load(victim, R_SCRATCH, 0)
        b.alu("add", victim, victim, imm=1)   # dependent wrong-path work
        b.halt()
        b.label(fault_handler_label)
        b.li(R_FAULT_MARK, FAULT_MARKER)
        b.store(R_DATA_BASE, R_FAULT_MARK, 0)
        b.halt()
    else:
        b.halt()

    program = b.build()

    # ---- initial data image: every word of the region, plus a planted
    # supervisor word the faulting load targets.
    memory_words = [(data_base + i, rng.randrange(0, 1 << 64))
                    for i in range(0, profile.data_bytes, 8)]
    memory_words.append((kernel_base, rng.randrange(0, 1 << 64)))

    return FuzzProgram(
        profile=profile,
        seed=seed,
        program=program,
        data_base=data_base,
        data_bytes=profile.data_bytes,
        kernel_base=kernel_base,
        memory_words=memory_words,
        fault_handler_label=fault_handler_label,
    )
