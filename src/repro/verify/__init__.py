"""``repro.verify`` — reference oracle, program fuzzer, and the
differential/invariant verification harness.

* :class:`~repro.verify.oracle.ReferenceOracle` — an in-order,
  cache-less interpreter producing the golden architectural state any
  pipeline configuration must reproduce.
* :func:`~repro.verify.fuzz.generate_fuzz_program` — seeded,
  guaranteed-terminating random programs shaped by a
  :class:`~repro.verify.fuzz.FuzzProfile`.
* :func:`~repro.verify.harness.verify_case` /
  :func:`~repro.verify.harness.run_verify_job` — the differential
  check (machine vs oracle) plus the SafeSpec leakage invariants, as a
  direct call or as a cacheable executor job.

Entry points: ``Session.verify(count=..., seed=...)`` or the
``repro verify`` CLI command.
"""

from repro.verify.fuzz import (FUZZ_FORMAT_VERSION, FUZZ_PROFILES,
                               FuzzProfile, FuzzProgram, fuzz_profile,
                               generate_fuzz_program)
from repro.verify.harness import (VerifyReport, VerifyVerdict, run_reference,
                                  run_verify_job, verdict_from_sim,
                                  verify_case, verify_job)
from repro.verify.oracle import (OracleFault, OracleResult, ReferenceOracle)

__all__ = [
    "FUZZ_FORMAT_VERSION",
    "FUZZ_PROFILES",
    "FuzzProfile",
    "FuzzProgram",
    "OracleFault",
    "OracleResult",
    "ReferenceOracle",
    "VerifyReport",
    "VerifyVerdict",
    "fuzz_profile",
    "generate_fuzz_program",
    "run_reference",
    "run_verify_job",
    "verdict_from_sim",
    "verify_case",
    "verify_job",
]
