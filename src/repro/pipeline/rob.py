"""Reorder buffer: in-order tracking of every in-flight micro-op."""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, List, Optional

from repro.errors import SimulationError
from repro.pipeline.uop import DynUop, UopState


class ReorderBuffer:
    """A bounded FIFO of in-flight micro-ops in program order.

    The backing deque is never replaced, only mutated, so the core may
    bind it once per run for its per-cycle emptiness checks.
    """

    __slots__ = ("capacity", "_entries")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: Deque[DynUop] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[DynUop]:
        return iter(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._entries

    def push(self, uop: DynUop) -> None:
        """Append a newly dispatched micro-op (program order)."""
        if self.full:
            raise SimulationError("ROB overflow — dispatch must check full")
        self._entries.append(uop)

    def head(self) -> Optional[DynUop]:
        """The oldest in-flight micro-op."""
        return self._entries[0] if self._entries else None

    def pop_head(self) -> DynUop:
        """Remove the oldest micro-op (at commit)."""
        if not self._entries:
            raise SimulationError("pop from an empty ROB")
        return self._entries.popleft()

    def squash_younger_than(self, seq: int) -> List[DynUop]:
        """Remove and return every micro-op with ``uop.seq > seq``.

        Used on branch misprediction and fault: everything younger than
        the redirecting micro-op is annulled.
        """
        # Sequence numbers are monotone in program order, so everything
        # younger than ``seq`` is a suffix: pop from the tail in place
        # (O(squashed), and the deque object identity is preserved).
        entries = self._entries
        squashed: List[DynUop] = []
        while entries and entries[-1].seq > seq:
            uop = entries.pop()
            uop.state = UopState.SQUASHED
            squashed.append(uop)
        squashed.reverse()
        return squashed

    def squash_all(self) -> List[DynUop]:
        """Squash the entire window (fault at the head)."""
        squashed = list(self._entries)
        for uop in squashed:
            uop.state = UopState.SQUASHED
        self._entries.clear()
        return squashed

    def unresolved_branches_older_than(self, seq: int) -> List[int]:
        """Sequence numbers of control-flow micro-ops older than ``seq``
        that have not yet produced their outcome.

        This is the WFB dependence set: a micro-op's shadow state may be
        promoted once this set empties (paper Section III).
        """
        deps = []
        for uop in self._entries:
            if uop.seq >= seq:
                break
            if uop.is_branch and uop.state not in (UopState.DONE,
                                                   UopState.COMMITTED):
                deps.append(uop.seq)
        return deps
