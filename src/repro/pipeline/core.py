"""The out-of-order core: fetch, dispatch, issue, execute, commit, squash.

The model is execution-driven and structure-accurate: the reorder buffer,
issue queue, load/store queues, functional-unit ports and branch-prediction
structures all have the paper's (Table I) sizes and impose the paper's
ordering rules.  Three properties essential to the reproduced attacks are
modelled faithfully:

* **P1 — deferred permission checks.**  A load from a supervisor page
  executes and returns data speculatively; the fault is raised only when
  the load reaches the head of the ROB (commit).  This enables Meltdown.
* **P2 — speculative side effects.**  Wrong-path instructions execute and
  perturb the caches/TLBs (baseline) or the shadow structures (SafeSpec).
  This is the covert channel every speculation attack needs.
* **P3 — trainable shared predictors.**  The direction predictor and the
  untagged BTB are updated at branch resolution with no privilege checks,
  preserving the mistraining/poisoning surface of Spectre v1/v2.

Commit policies (:class:`~repro.core.policy.CommitPolicy`) select where
speculative fills go: directly into the hierarchy (BASELINE) or into the
SafeSpec shadow structures (WFB/WFC), with promotion timing per policy.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple, Union

from repro.core.policy import CommitPolicy
from repro.core.safespec import SafeSpecEngine
from repro.errors import SimulationError
from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.predictors import BimodalPredictor
from repro.frontend.rsb import ReturnStackBuffer
from repro.isa.instructions import (AluOp, BranchCond, INSTRUCTION_BYTES,
                                    Opcode)
from repro.isa.program import Program
from repro.isa.registers import NUM_REGISTERS, to_signed, to_unsigned
from repro.memory.hierarchy import AccessResult, MemoryHierarchy
from repro.memory.paging import PrivilegeLevel
from repro.pipeline.config import CoreConfig
from repro.pipeline.issue import FunctionalUnits, IssueQueue
from repro.pipeline.lsq import LoadStoreQueue
from repro.pipeline.rob import ReorderBuffer
from repro.pipeline.uop import DynUop, UopState
from repro.statistics import StatRegistry

_FETCH_BUFFER_CAP = 24
_PROGRESS_GUARD_CYCLES = 100_000


@dataclass
class FaultEvent:
    """An architectural fault raised at commit."""

    cycle: int
    pc: int
    vaddr: int
    kind: str


@dataclass
class RunResult:
    """Summary of one program execution."""

    cycles: int
    instructions: int
    registers: Tuple[int, ...]
    halted_reason: str
    fault_events: List[FaultEvent] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    # Architectural PC of the instruction that would have retired next.
    # Set only on ``budget`` stops (the resume point checkpointing needs);
    # None when the program halted, faulted, or ran off the code image.
    next_pc: Optional[int] = None

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def reg(self, name_or_index: Union[str, int]) -> int:
        """Architectural register value at halt, by name ('r3') or index."""
        if isinstance(name_or_index, str):
            from repro.isa.registers import register_index

            name_or_index = register_index(name_or_index)
        return self.registers[name_or_index]


class Core:
    """One execution of a program on the simulated out-of-order core.

    A :class:`Core` is single-use: construct, :meth:`run`, read results.
    Persistent micro-architectural state (caches, TLBs, predictors, BTB,
    SafeSpec engine) lives outside and is passed in, so consecutive runs
    on the same structures model consecutive executions on one CPU — the
    setting every mistraining attack needs.
    """

    def __init__(self, program: Program, hierarchy: MemoryHierarchy,
                 config: Optional[CoreConfig] = None,
                 predictor: Optional[BimodalPredictor] = None,
                 btb: Optional[BranchTargetBuffer] = None,
                 rsb: Optional[ReturnStackBuffer] = None,
                 engine: Optional[SafeSpecEngine] = None,
                 privilege: PrivilegeLevel = PrivilegeLevel.USER,
                 fault_handler_pc: Optional[int] = None,
                 initial_registers: Optional[Dict[int, int]] = None,
                 start_pc: Optional[int] = None) -> None:
        self.program = program
        self.hierarchy = hierarchy
        self.config = config or CoreConfig()
        self.predictor = predictor or BimodalPredictor()
        self.btb = btb or BranchTargetBuffer()
        # `is not None`: an empty RSB is falsy (it has __len__).
        self.rsb = rsb if rsb is not None else ReturnStackBuffer()
        self.engine = engine
        self.policy = engine.config.policy if engine else CommitPolicy.BASELINE
        self.privilege = privilege
        self.fault_handler_pc = fault_handler_pc

        self.cycle = 0
        self.regfile: List[int] = [0] * NUM_REGISTERS
        for reg, value in (initial_registers or {}).items():
            self.regfile[reg] = to_unsigned(value)

        self.rob = ReorderBuffer(self.config.rob_entries)
        self.iq = IssueQueue(self.config.iq_entries)
        self.lsq = LoadStoreQueue(
            self.config.ldq_entries, self.config.stq_entries,
            mem_dep_speculation=self.config.mem_dep_speculation)
        self.fus = FunctionalUnits(self.config)

        # Per-cycle configuration scalars, hoisted out of the hot loop.
        cfg = self.config
        self._commit_width = cfg.commit_width
        self._issue_width = cfg.issue_width
        self._fetch_width = cfg.fetch_width
        self._front_end_depth = cfg.front_end_depth
        self._mispredict_penalty = cfg.mispredict_penalty
        self._alu_latency = cfg.alu_latency
        self._mul_latency = cfg.mul_latency
        self._store_forward_latency = cfg.store_forward_latency
        self._mem_dep_spec = cfg.mem_dep_speculation

        self._rename: Dict[int, DynUop] = {}
        self._fetch_buffer: Deque[DynUop] = deque()
        self._executing: List[DynUop] = []
        self._unresolved_branches: List[int] = []   # seqs, program order
        self._inflight_fences = 0
        self._last_refreshed_iline = -1
        self._last_refreshed_ipage = -1
        self._fetch_pc = program.code_base if start_pc is None else start_pc
        self._fetch_stall_until = 0
        self._fetch_halted = False
        self._last_fetch_line: Optional[int] = None
        self._next_seq = 0
        self._halted_reason = ""
        self._next_pc: Optional[int] = None
        self._fault_events: List[FaultEvent] = []
        self._last_commit_cycle = 0
        self._committed = 0
        self._max_instructions: Optional[int] = None

        # Hot-path statistics are plain integer attributes, batched into
        # the registry's counters once at the end of :meth:`run` — one
        # ``+= 1`` on the critical path instead of a bound-method call.
        # _STAT_FIELDS is the single (counter name, attribute) table
        # driving both registration (which fixes the historical key
        # order of the ``counters`` dict) and the end-of-run flush.
        self.stats = StatRegistry("core")
        for name, attr in self._STAT_FIELDS:
            self.stats.counter(name)
            setattr(self, attr, 0)

    # ------------------------------------------------------------------
    # public interface
    # ------------------------------------------------------------------

    def run(self, max_instructions: Optional[int] = None) -> RunResult:
        """Execute until HALT, a fault without handler, or the budget."""
        self._max_instructions = max_instructions
        # Loop-invariant bindings: every structure consulted per cycle is
        # mutated in place (never rebound), so one lookup each suffices.
        step = self._step
        rob_entries = self.rob._entries
        fetch_buffer = self._fetch_buffer
        program_fetch = self.program.fetch
        max_cycles = self.config.max_cycles
        while not self._halted_reason:
            step()
            if (not rob_entries and not fetch_buffer
                    and not self._executing
                    and self.cycle >= self._fetch_stall_until
                    and program_fetch(self._fetch_pc) is None):
                # Control flow left the code image with nothing in flight;
                # a real CPU would take a fetch fault here.
                self._halted_reason = "ran_off_code"
            if self.cycle >= max_cycles:
                raise SimulationError(
                    f"exceeded max_cycles={max_cycles}")
            if (self.cycle - self._last_commit_cycle > _PROGRESS_GUARD_CYCLES
                    and rob_entries):
                raise SimulationError(
                    f"no commit for {_PROGRESS_GUARD_CYCLES} cycles "
                    f"(head={self.rob.head()!r})")
        self._flush_stats()
        counters = self.stats.as_dict()
        counters["cycles"] = self.cycle
        return RunResult(
            cycles=self.cycle,
            instructions=self._committed,
            registers=tuple(self.regfile),
            halted_reason=self._halted_reason,
            fault_events=list(self._fault_events),
            counters=counters,
            next_pc=self._next_pc,
        )

    # (registry counter name, batched int attribute) — registration
    # order is the historical ``counters`` dict key order.
    _STAT_FIELDS = (
        ("committed", "_n_committed"),
        ("squashed", "_n_squashed"),
        ("branches", "_n_branches"),
        ("mispredicts", "_n_mispredicts"),
        ("faults", "_n_faults"),
        ("dcache_read_accesses", "_n_d_access"),
        ("dcache_read_misses", "_n_d_miss"),
        ("dcache_l1_hits", "_n_d_l1_hits"),
        ("dcache_shadow_hits", "_n_d_shadow_hits"),
        ("icache_accesses", "_n_i_access"),
        ("icache_misses", "_n_i_miss"),
        ("icache_l1_hits", "_n_i_l1_hits"),
        ("icache_shadow_hits", "_n_i_shadow_hits"),
        ("store_forwards", "_n_forwards"),
    )

    def _flush_stats(self) -> None:
        """Fold the batched integer statistics into the registry."""
        counter = self.stats.counter
        for name, attr in self._STAT_FIELDS:
            counter(name).value = getattr(self, attr)

    # ------------------------------------------------------------------
    # the cycle
    # ------------------------------------------------------------------

    def _step(self) -> None:
        # Each stage's idle early-out is checked here, before the call:
        # on a stall cycle (waiting on memory) most stages have nothing
        # to do and the call overhead itself was the dominant cost.
        engine = self.engine
        if engine is not None:
            engine.set_cycle(self.cycle)
        self.fus.new_cycle()
        if self.rob._entries:
            self._commit_stage()
            if self._halted_reason:
                return
        if self._executing:
            self._writeback_stage()
        if self.iq._ready:
            self._issue_stage()
        if self._fetch_buffer:
            self._dispatch_stage()
        if not self._fetch_halted and self.cycle >= self._fetch_stall_until:
            self._fetch_stage()
        if engine is not None:
            engine.sample_occupancy()
        self.cycle += 1

    # ------------------------------------------------------------------
    # commit
    # ------------------------------------------------------------------

    def _commit_stage(self) -> None:
        entries = self.rob._entries
        if not entries:
            return
        cycle = self.cycle
        for _ in range(self._commit_width):
            if not entries:
                break
            head = entries[0]
            if head.state is not UopState.DONE or head.done_cycle >= cycle:
                break
            if head.fault is not None:
                self._raise_fault(head)
                return
            self._commit_uop(head)
            if self._halted_reason:
                return

    def _commit_uop(self, uop: DynUop) -> None:
        self.rob.pop_head()
        uop.state = UopState.COMMITTED
        uop.commit_cycle = self.cycle
        self._last_commit_cycle = self.cycle
        if self.engine:
            self._refresh_recency(uop)
        if uop.inst.writes_register and uop.result is not None:
            self.regfile[uop.inst.rd] = to_unsigned(uop.result)
        if uop.is_store:
            if uop.paddr is None:
                raise SimulationError(f"store committed w/o address: {uop!r}")
            self.hierarchy.commit_store(uop.paddr, uop.store_value or 0)
        elif uop.opcode is Opcode.CLFLUSH:
            self._commit_clflush(uop)
        if self._rename.get(uop.inst.rd) is uop:
            del self._rename[uop.inst.rd]
        if self.engine:
            self.engine.on_commit(uop)
        self.lsq.remove(uop)
        self._committed += 1
        self._n_committed += 1
        if uop.opcode is Opcode.HALT:
            self._halt("halt")
        elif (self._max_instructions is not None
              and self._committed >= self._max_instructions):
            # The budget stop is artificial: record where the next
            # instruction would have retired so a checkpointed run can
            # resume exactly here (the budget _halt squashes everything
            # in flight, so architectural state is the committed state).
            self._next_pc = (uop.actual_target
                             if uop.actual_taken
                             and uop.actual_target is not None
                             else uop.pc + INSTRUCTION_BYTES)
            self._halt("budget")

    def _refresh_recency(self, uop: DynUop) -> None:
        """Restore the architectural cache touch of a committing micro-op.

        SafeSpec's speculative lookups are deliberately non-perturbing
        (not even replacement state changes, Section IV-A) — but the
        instruction *did* commit, so its access is architectural and must
        refresh recency, exactly as the baseline's access-time touch did.
        Only squashed instructions leave no trace.
        """
        if (uop.ifetch_level in ("L1", "L2", "L3")
                and uop.ifetch_line != self._last_refreshed_iline):
            self.hierarchy.refresh_line_recency("i", uop.ifetch_line)
            self._last_refreshed_iline = uop.ifetch_line
        if uop.ifetch_line >= 0:
            page = uop.pc & ~4095
            if page != self._last_refreshed_ipage:
                self.hierarchy.refresh_committed_translation("i", uop.pc)
                if uop.iwalked:
                    self.hierarchy.refresh_walk_lines(uop.pc)
                self._last_refreshed_ipage = page
        if (uop.is_load or uop.is_store) and uop.vaddr is not None:
            self.hierarchy.refresh_committed_translation("d", uop.vaddr)
            if uop.dwalked:
                self.hierarchy.refresh_walk_lines(uop.vaddr)
        if uop.is_load and uop.hit_level in ("L1", "L2", "L3") \
                and uop.paddr is not None:
            self.hierarchy.refresh_line_recency(
                "d", self.hierarchy.l1d.line_address(uop.paddr))

    def _commit_clflush(self, uop: DynUop) -> None:
        """clflush takes architectural effect at commit: evict the line
        from every committed cache level."""
        if uop.vaddr is None:
            return
        translation = self.hierarchy.page_table.lookup(uop.vaddr)
        if translation is None:
            return
        self.hierarchy.clflush(translation.physical(uop.vaddr))

    def _halt(self, reason: str) -> None:
        self._halted_reason = reason
        for squashed in self.rob.squash_all():
            self._discard_uop(squashed)
        for pending in self._fetch_buffer:
            pending.state = UopState.SQUASHED
            self._discard_uop(pending)
        self._fetch_buffer.clear()
        self.iq.drop_squashed()
        self.lsq.drop_squashed()
        self._executing = [u for u in self._executing
                           if u.state is not UopState.SQUASHED]

    def _raise_fault(self, uop: DynUop) -> None:
        """Architectural fault at the head of the ROB.

        Everything in flight (including the faulting micro-op) is squashed
        and its shadow state annulled; control transfers to the fault
        handler when one is installed, otherwise the run stops.  Note that
        under WFB the faulting micro-op's state may *already* have been
        promoted — the Meltdown hole the paper describes.
        """
        self._n_faults += 1
        self._fault_events.append(FaultEvent(
            cycle=self.cycle, pc=uop.pc, vaddr=uop.vaddr or 0,
            kind=uop.fault or "unknown"))
        self._last_commit_cycle = self.cycle
        for squashed in self.rob.squash_all():
            self._discard_uop(squashed)
        self._flush_front_end()
        if self.fault_handler_pc is None:
            self._halted_reason = "fault"
            return
        self._redirect_fetch(self.fault_handler_pc)

    # ------------------------------------------------------------------
    # writeback / branch resolution
    # ------------------------------------------------------------------

    def _writeback_stage(self) -> None:
        if not self._executing:
            return
        finishing = [u for u in self._executing
                     if u.done_cycle <= self.cycle
                     and u.state is UopState.ISSUED]
        if not finishing:
            return
        finishing_set = set(id(u) for u in finishing)
        self._executing = [u for u in self._executing
                           if id(u) not in finishing_set
                           and u.state is not UopState.SQUASHED]
        finishing.sort(key=lambda u: u.seq)
        for uop in finishing:
            if uop.state is not UopState.ISSUED:
                # Squashed mid-batch by an older mispredicting branch:
                # it must neither finish, wake consumers, promote WFB
                # state, nor — crucially — resolve as a branch, which
                # would redirect fetch down its wrong path.
                continue
            uop.state = UopState.DONE
            if uop.opcode is Opcode.FENCE:
                self._inflight_fences -= 1
            for waiter in uop.waiters:
                if waiter.state is UopState.DISPATCHED:
                    waiter.pending -= 1
                    if waiter.pending == 0:
                        self.iq.wake(waiter)
            uop.waiters.clear()
            if self.engine and self.policy is CommitPolicy.WFB:
                if not uop.branch_deps:
                    self.engine.on_branch_resolved(uop)
            if self._mem_dep_spec and uop.is_store \
                    and uop.vaddr is not None:
                self._check_memory_order(uop)
            if uop.is_branch:
                self._resolve_branch(uop)

    def _resolve_branch(self, uop: DynUop) -> None:
        self._n_branches += 1
        try:
            self._unresolved_branches.remove(uop.seq)
        except ValueError:
            pass
        fallthrough = uop.pc + INSTRUCTION_BYTES
        actual_target = uop.actual_target if uop.actual_taken else fallthrough
        predicted_target = uop.pred_target if uop.pred_taken else fallthrough
        mispredicted = (uop.actual_taken != uop.pred_taken
                        or actual_target != predicted_target)
        uop.mispredicted = mispredicted
        # Train the shared structures (P3: no privilege checks, trainable
        # by wrong-path execution contexts too).
        if uop.inst.is_conditional:
            self.predictor.update(uop.pc, uop.actual_taken, uop.pred_taken)
        if (uop.actual_taken and uop.actual_target is not None
                and not uop.inst.is_return):
            # Returns are predicted by the RSB, never installed in the
            # BTB (a return target is per-invocation, not per-PC).
            self.btb.update(uop.pc, uop.actual_target)
        if mispredicted:
            self._n_mispredicts += 1
            self._squash_younger_than(uop.seq)
            self._redirect_fetch(actual_target,
                                 penalty=self._mispredict_penalty)
        else:
            self._clear_branch_dependence(uop)

    def _check_memory_order(self, store: DynUop) -> None:
        """A store address just resolved under memory-dependence
        speculation: any younger load that already issued against an
        overlapping address consumed stale data.  Squash from the
        violating load onward and refetch it — it will now see the
        store (forwarded, or from memory once committed)."""
        victim = self.lsq.conflicting_load(store)
        if victim is None:
            return
        victim_pc = victim.pc
        self._squash_younger_than(victim.seq - 1)
        self._redirect_fetch(victim_pc, penalty=self._mispredict_penalty)

    def _clear_branch_dependence(self, branch: DynUop) -> None:
        """A correctly predicted branch resolved: younger micro-ops lose
        this dependence; WFB promotes those whose set empties.

        Only WFB tracks branch dependence sets, so the ROB scan is
        skipped entirely under the other policies.
        """
        if self.policy is not CommitPolicy.WFB:
            return
        for uop in self.rob:
            if uop.seq <= branch.seq or not uop.branch_deps:
                continue
            uop.branch_deps.discard(branch.seq)
            if not uop.branch_deps and self.engine:
                self.engine.on_branch_resolved(uop)

    # ------------------------------------------------------------------
    # squash machinery
    # ------------------------------------------------------------------

    def _discard_uop(self, uop: DynUop) -> None:
        self._n_squashed += 1
        if self.engine:
            self.engine.on_squash(uop)

    def _squash_younger_than(self, seq: int) -> None:
        for squashed in self.rob.squash_younger_than(seq):
            self._discard_uop(squashed)
        self._recount_fences()
        self._unresolved_branches = [s for s in self._unresolved_branches
                                     if s <= seq]
        self._flush_front_end()
        self.iq.drop_squashed()
        self.lsq.drop_squashed()
        self._executing = [u for u in self._executing
                           if u.state is not UopState.SQUASHED]
        self._rebuild_rename_table()

    def _recount_fences(self) -> None:
        self._inflight_fences = sum(
            1 for u in self.rob
            if u.opcode is Opcode.FENCE
            and u.state in (UopState.DISPATCHED, UopState.ISSUED))

    def _flush_front_end(self) -> None:
        for pending in self._fetch_buffer:
            pending.state = UopState.SQUASHED
            self._discard_uop(pending)
        self._fetch_buffer.clear()
        self._last_fetch_line = None

    def _rebuild_rename_table(self) -> None:
        self._rename.clear()
        for uop in self.rob:
            if uop.inst.writes_register:
                self._rename[uop.inst.rd] = uop

    def _redirect_fetch(self, target_pc: int, penalty: int = 0) -> None:
        self._fetch_pc = target_pc
        self._fetch_stall_until = max(self._fetch_stall_until,
                                      self.cycle + max(penalty, 1))
        self._fetch_halted = False
        self._last_fetch_line = None

    # ------------------------------------------------------------------
    # issue / execute
    # ------------------------------------------------------------------

    def _oldest_pending_fence(self) -> Optional[int]:
        if not self._inflight_fences:
            return None
        for uop in self.rob:
            if (uop.opcode is Opcode.FENCE
                    and uop.state in (UopState.DISPATCHED, UopState.ISSUED)):
                return uop.seq
        return None

    def _issue_stage(self) -> None:
        ready = self.iq.ready_uops()
        if not ready:
            return
        barrier = self._oldest_pending_fence()
        issue_width = self._issue_width
        try_claim = self.fus.try_claim_index
        issued = 0
        for uop in ready:
            if issued >= issue_width:
                break
            if barrier is not None and uop.seq > barrier:
                continue
            if uop.is_serialising and self.rob.head() is not uop:
                continue
            if uop.is_load and self.lsq.older_store_blocks(uop):
                continue
            if not self._shadow_admits(uop):
                uop.blocked_on_shadow = True
                continue
            if not try_claim(uop.fu_index):
                continue
            self._execute(uop)
            issued += 1

    def _shadow_admits(self, uop: DynUop) -> bool:
        """BLOCK full-policy: memory micro-ops stall while the d-side
        shadow structures are full — unless oldest (deadlock avoidance).
        The resulting delay is observable: the TSA timing channel."""
        if self.engine is None or not (uop.is_load or uop.is_store):
            return True
        if self.rob.head() is uop:
            return True
        return self.engine.can_accept_data_access()

    def _sink(self, uop: DynUop):
        if self.engine is None or uop.promoted:
            # A WFB-promoted micro-op (every older branch resolved, or
            # none to begin with) is past the shadow: its fills are
            # non-speculative and go straight to the committed
            # structures.  This is the paper's WFB hole — non-branch
            # speculation (faults, memory-order violations) squashes
            # state WFB has already released.
            return self.hierarchy.default_sink()
        return self.engine.sink_for(uop)

    def _execute(self, uop: DynUop) -> None:
        self.iq.remove(uop)
        uop.state = UopState.ISSUED
        uop.issue_cycle = self.cycle
        uop.blocked_on_shadow = False
        op = uop.opcode
        if op is Opcode.ALU:
            self._execute_alu(uop)
        elif op is Opcode.LOADIMM:
            uop.result = to_unsigned(uop.inst.imm)
            uop.done_cycle = self.cycle + self._alu_latency
        elif op is Opcode.LOAD:
            if not self._execute_load(uop):
                # Replay: a partially overlapping in-flight store means
                # word forwarding would be wrong; return the load to the
                # issue queue until the store drains to memory.
                uop.state = UopState.DISPATCHED
                uop.issue_cycle = -1
                self.iq.add(uop)
                return
        elif op is Opcode.STORE:
            self._execute_store(uop)
        elif op in (Opcode.BRANCH, Opcode.JMP, Opcode.JMPI,
                    Opcode.CALL, Opcode.RET):
            self._execute_branch(uop)
        elif op is Opcode.CLFLUSH:
            base = uop.source_value(uop.inst.rs1)
            uop.vaddr = to_unsigned(base + uop.inst.imm)
            uop.done_cycle = self.cycle + 1
        elif op is Opcode.RDTSC:
            uop.result = self.cycle
            uop.done_cycle = self.cycle + 1
        else:  # FENCE, NOP, HALT
            uop.done_cycle = self.cycle + 1
        self._executing.append(uop)

    def _execute_alu(self, uop: DynUop) -> None:
        lhs = uop.source_value(uop.inst.rs1)
        if uop.inst.rs2 is not None:
            rhs = uop.source_value(uop.inst.rs2)
        else:
            rhs = to_unsigned(uop.inst.imm)
        op = uop.inst.alu_op
        if op is AluOp.ADD:
            value = lhs + rhs
        elif op is AluOp.SUB:
            value = lhs - rhs
        elif op is AluOp.MUL:
            value = lhs * rhs
        elif op is AluOp.AND:
            value = lhs & rhs
        elif op is AluOp.OR:
            value = lhs | rhs
        elif op is AluOp.XOR:
            value = lhs ^ rhs
        elif op is AluOp.SHL:
            value = lhs << (rhs & 63)
        else:
            value = lhs >> (rhs & 63)
        uop.result = to_unsigned(value)
        latency = (self._mul_latency if op is AluOp.MUL
                   else self._alu_latency)
        uop.done_cycle = self.cycle + latency

    def _execute_load(self, uop: DynUop) -> bool:
        """Execute a load; returns False when it must be replayed."""
        base = uop.source_value(uop.inst.rs1)
        uop.vaddr = to_unsigned(base + uop.inst.imm)
        if self.lsq.older_store_blocks(uop):
            # Only detectable now that the address is known: a resolved
            # older store partially overlaps this word.
            return False
        forwarded = self.lsq.forward_from_store(uop)
        if forwarded is not None:
            value, _store = forwarded
            uop.result = to_unsigned(value)
            uop.forwarded = True
            uop.done_cycle = self.cycle + self._store_forward_latency
            self._n_forwards += 1
            return True
        result = self.hierarchy.data_access(
            uop.vaddr, is_write=False, privilege=self.privilege,
            sink=self._sink(uop))
        self._record_data_access(result)
        uop.mem_latency = result.latency
        uop.hit_level = result.hit_level
        uop.fault = result.fault
        uop.paddr = result.paddr
        uop.dwalked = not result.tlb_hit
        if result.fault == "unmapped":
            uop.result = 0
        else:
            # P1: the data is returned speculatively even on a permission
            # fault — this is the Meltdown read.
            uop.result = self.hierarchy.memory.read_word(result.paddr)
        uop.done_cycle = self.cycle + max(result.latency, 1)
        return True

    def _execute_store(self, uop: DynUop) -> None:
        base = uop.source_value(uop.inst.rs1)
        uop.vaddr = to_unsigned(base + uop.inst.imm)
        uop.store_value = uop.source_value(uop.inst.rs2)
        result = AccessResult(latency=0)
        translation = self.hierarchy.translate(
            "d", uop.vaddr, self._sink(uop), result)
        uop.dwalked = not result.tlb_hit
        if translation is None:
            uop.fault = "unmapped"
        else:
            uop.paddr = translation.physical(uop.vaddr)
            if not translation.permissions.allows(
                    write=True, execute=False, privilege=self.privilege):
                uop.fault = "permission"
        uop.done_cycle = self.cycle + max(result.latency, 1)

    def _execute_branch(self, uop: DynUop) -> None:
        op = uop.opcode
        if op is Opcode.BRANCH:
            lhs = to_signed(uop.source_value(uop.inst.rs1))
            rhs = to_signed(uop.source_value(uop.inst.rs2))
            cond = uop.inst.cond
            if cond is BranchCond.EQ:
                taken = lhs == rhs
            elif cond is BranchCond.NE:
                taken = lhs != rhs
            elif cond is BranchCond.LT:
                taken = lhs < rhs
            else:
                taken = lhs >= rhs
            uop.actual_taken = taken
            uop.actual_target = self.program.pc_of(uop.inst.target)
        elif op is Opcode.JMP:
            uop.actual_taken = True
            uop.actual_target = self.program.pc_of(uop.inst.target)
        elif op is Opcode.CALL:
            uop.actual_taken = True
            uop.actual_target = self.program.pc_of(uop.inst.target)
            uop.result = to_unsigned(uop.pc + INSTRUCTION_BYTES)  # link
        else:  # JMPI / RET: indirect through rs1
            uop.actual_taken = True
            uop.actual_target = to_unsigned(uop.source_value(uop.inst.rs1))
        uop.done_cycle = self.cycle + 1

    def _record_data_access(self, result: AccessResult) -> None:
        self._n_d_access += 1
        if result.hit_level == "shadow":
            self._n_d_shadow_hits += 1
        elif result.hit_level == "L1":
            self._n_d_l1_hits += 1
        else:
            self._n_d_miss += 1

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def _dispatch_stage(self) -> None:
        fetch_buffer = self._fetch_buffer
        if not fetch_buffer:
            return
        cycle = self.cycle
        front_end_depth = self._front_end_depth
        dispatched = 0
        while fetch_buffer and dispatched < self._issue_width:
            uop = fetch_buffer[0]
            if uop.fetch_cycle + front_end_depth > cycle:
                break
            if self.rob.full or self.iq.full:
                break
            if uop.is_load and self.lsq.ldq_full:
                break
            if uop.is_store and self.lsq.stq_full:
                break
            fetch_buffer.popleft()
            self._dispatch_uop(uop)
            dispatched += 1

    def _dispatch_uop(self, uop: DynUop) -> None:
        uop.state = UopState.DISPATCHED
        uop.dispatch_cycle = self.cycle
        for reg in uop.inst.source_registers():
            producer = self._rename.get(reg)
            if producer is None:
                uop.operands[reg] = self.regfile[reg]
            elif (producer.state in (UopState.DONE, UopState.COMMITTED)
                    and producer.result is not None):
                uop.operands[reg] = producer.result
            else:
                uop.producers[reg] = producer
                uop.pending += 1
                producer.waiters.append(uop)
        self.rob.push(uop)
        if uop.is_branch:
            self._unresolved_branches.append(uop.seq)
        if uop.opcode is Opcode.FENCE:
            self._inflight_fences += 1
        if self.policy is CommitPolicy.WFB:
            uop.branch_deps = set(self._unresolved_branches)
            uop.branch_deps.discard(uop.seq)
        if uop.inst.writes_register:
            self._rename[uop.inst.rd] = uop
        self.iq.add(uop)
        if uop.is_load:
            self.lsq.add_load(uop)
        elif uop.is_store:
            self.lsq.add_store(uop)
        if (self.engine and self.policy is CommitPolicy.WFB
                and not uop.branch_deps):
            self.engine.on_branch_resolved(uop)

    # ------------------------------------------------------------------
    # fetch
    # ------------------------------------------------------------------

    def _fetch_stage(self) -> None:
        if self.cycle < self._fetch_stall_until or self._fetch_halted:
            return
        fetched = 0
        while (fetched < self._fetch_width
               and len(self._fetch_buffer) < _FETCH_BUFFER_CAP):
            inst = self.program.fetch(self._fetch_pc)
            if inst is None:
                break
            uop = DynUop(self._next_seq, inst, self._fetch_pc,
                         self.program.index_of(self._fetch_pc), self.cycle)
            self._next_seq += 1
            stall = self._fetch_instruction_line(uop)
            self._fetch_buffer.append(uop)
            fetched += 1
            if inst.opcode is Opcode.HALT:
                # HALT serialises the front end: nothing is fetched past
                # it until a squash or fault redirects fetch elsewhere.
                self._fetch_halted = True
                break
            self._predict_and_advance(uop)
            if stall or uop.pred_taken:
                break

    def _fetch_instruction_line(self, uop: DynUop) -> bool:
        """Access the i-side hierarchy for the line holding ``uop.pc``.

        Returns True when the access missed L1/shadow, in which case fetch
        stalls for the remaining latency (the micro-op itself is kept and
        delivered when the line arrives).
        """
        line = self.hierarchy.l1i.line_address(uop.pc)
        if line == self._last_fetch_line:
            return False
        self._last_fetch_line = line
        result = self.hierarchy.fetch_access(
            uop.pc, privilege=self.privilege, sink=self._sink(uop))
        uop.ifetch_level = result.hit_level
        uop.ifetch_line = line
        uop.iwalked = not result.tlb_hit
        self._n_i_access += 1
        if result.hit_level == "shadow":
            self._n_i_shadow_hits += 1
        elif result.hit_level == "L1":
            self._n_i_l1_hits += 1
        else:
            self._n_i_miss += 1
        hit_latency = self.hierarchy.config.l1i.hit_latency
        if result.latency > hit_latency:
            extra = result.latency - hit_latency
            self._fetch_stall_until = self.cycle + extra
            uop.fetch_cycle = self.cycle + extra
            return True
        return False

    def _predict_and_advance(self, uop: DynUop) -> None:
        inst = uop.inst
        if inst.opcode is Opcode.BRANCH:
            uop.pred_taken = self.predictor.predict(uop.pc)
            uop.pred_target = (self.program.pc_of(inst.target)
                               if uop.pred_taken else None)
            # A fetch-time BHB sees the *predicted* direction; trained
            # branches make this the resolved direction too.
            self.btb.note_branch(uop.pred_taken)
        elif inst.opcode is Opcode.JMP:
            uop.pred_taken = True
            uop.pred_target = self.program.pc_of(inst.target)
        elif inst.opcode is Opcode.CALL:
            # Direct target: never mispredicts.  The RSB learns the
            # fall-through (return) address at fetch — including on the
            # wrong path, which is the ret2spec pollution surface.
            uop.pred_taken = True
            uop.pred_target = self.program.pc_of(inst.target)
            self.rsb.push(uop.pc + INSTRUCTION_BYTES)
        elif inst.opcode is Opcode.RET:
            predicted = self.rsb.pop()
            if predicted:
                uop.pred_taken = True
                uop.pred_target = predicted
            else:
                # Empty RSB: no prediction, fall through and fix up at
                # resolution (the ret2spec underflow misprediction).
                uop.pred_taken = False
                uop.pred_target = None
        elif inst.opcode is Opcode.JMPI:
            target = self.btb.predict_target(uop.pc)
            uop.btb_predicted = target is not None
            if target is not None:
                uop.pred_taken = True
                uop.pred_target = target
            else:
                # No BTB entry: fall through and fix up at resolution.
                uop.pred_taken = False
                uop.pred_target = None
        if uop.pred_taken and uop.pred_target is not None:
            self._fetch_pc = uop.pred_target
            self._last_fetch_line = None
        else:
            self._fetch_pc = uop.pc + INSTRUCTION_BYTES
