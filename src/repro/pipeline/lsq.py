"""Load and store queues with store-to-load forwarding.

The store queue implements the paper's TSO note (Section IV-B): "the cache
is not updated until the store commits, making stores robust to
speculation attacks" — store *data* only reaches the memory system at
commit.  Store *address translation* still happens at execute and is
speculative state (a dTLB fill) that SafeSpec shadows.

Disambiguation is conservative: a load may not issue while any older
store's address is unknown; once all older store addresses are known the
youngest matching store forwards its data.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.pipeline.uop import DynUop, UopState


class LoadStoreQueue:
    """Combined LDQ/STQ bookkeeping (separately bounded)."""

    __slots__ = ("ldq_capacity", "stq_capacity", "_word_bytes",
                 "_loads", "_stores")

    def __init__(self, ldq_entries: int, stq_entries: int,
                 word_bytes: int = 8) -> None:
        self.ldq_capacity = ldq_entries
        self.stq_capacity = stq_entries
        self._word_bytes = word_bytes
        self._loads: List[DynUop] = []
        self._stores: List[DynUop] = []

    # -- occupancy ---------------------------------------------------------

    @property
    def ldq_full(self) -> bool:
        return len(self._loads) >= self.ldq_capacity

    @property
    def stq_full(self) -> bool:
        return len(self._stores) >= self.stq_capacity

    def load_count(self) -> int:
        return len(self._loads)

    def store_count(self) -> int:
        return len(self._stores)

    # -- insertion / removal -------------------------------------------------

    def add_load(self, uop: DynUop) -> None:
        self._loads.append(uop)

    def add_store(self, uop: DynUop) -> None:
        self._stores.append(uop)

    def remove(self, uop: DynUop) -> None:
        """Remove a committed or squashed micro-op from its queue."""
        if uop.is_load:
            if uop in self._loads:
                self._loads.remove(uop)
        elif uop in self._stores:
            self._stores.remove(uop)

    def drop_squashed(self) -> None:
        """Purge every squashed entry (called after a pipeline squash)."""
        self._loads = [u for u in self._loads
                       if u.state != UopState.SQUASHED]
        self._stores = [u for u in self._stores
                        if u.state != UopState.SQUASHED]

    # -- disambiguation ---------------------------------------------------

    def _overlaps(self, addr_a: int, addr_b: int) -> bool:
        """Whether two word accesses overlap."""
        return abs(addr_a - addr_b) < self._word_bytes

    def older_store_blocks(self, load: DynUop) -> bool:
        """True while any older store has an unresolved address."""
        if not self._stores:
            return False
        load_seq = load.seq
        for store in self._stores:
            if store.seq >= load_seq:
                continue
            if store.state is UopState.SQUASHED:
                continue
            if store.vaddr is None:
                return True
        return False

    def forward_from_store(self, load: DynUop) -> Optional[Tuple[int, DynUop]]:
        """Value forwarded by the youngest older store to the same word.

        Returns ``(value, store)`` or ``None``.  Must only be called once
        :meth:`older_store_blocks` is False.
        """
        if not self._stores:
            return None
        best: Optional[DynUop] = None
        for store in self._stores:
            if store.seq >= load.seq or store.state is UopState.SQUASHED:
                continue
            if store.vaddr is None or load.vaddr is None:
                continue
            if self._overlaps(store.vaddr, load.vaddr):
                if best is None or store.seq > best.seq:
                    best = store
        if best is None or best.store_value is None:
            return None
        return best.store_value, best
