"""Load and store queues with store-to-load forwarding.

The store queue implements the paper's TSO note (Section IV-B): "the cache
is not updated until the store commits, making stores robust to
speculation attacks" — store *data* only reaches the memory system at
commit.  Store *address translation* still happens at execute and is
speculative state (a dTLB fill) that SafeSpec shadows.

Disambiguation is conservative by default: a load may not issue while
any older store's address is unknown; once all older store addresses
are known the youngest *exactly* matching store forwards its data, and
a partially overlapping store stalls the load until it drains (the
memory system merges the bytes — forwarding an unshifted word would be
wrong).  With ``mem_dep_speculation`` enabled, loads bypass unresolved
older stores instead, and :meth:`conflicting_load` lets the core detect
the memory-order violation when the store address finally resolves —
the Spectre v4 (speculative store bypass) surface.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.pipeline.uop import DynUop, UopState


class LoadStoreQueue:
    """Combined LDQ/STQ bookkeeping (separately bounded)."""

    __slots__ = ("ldq_capacity", "stq_capacity", "_word_bytes",
                 "_loads", "_stores", "_mem_dep_speculation")

    def __init__(self, ldq_entries: int, stq_entries: int,
                 word_bytes: int = 8,
                 mem_dep_speculation: bool = False) -> None:
        self.ldq_capacity = ldq_entries
        self.stq_capacity = stq_entries
        self._word_bytes = word_bytes
        self._mem_dep_speculation = mem_dep_speculation
        self._loads: List[DynUop] = []
        self._stores: List[DynUop] = []

    # -- occupancy ---------------------------------------------------------

    @property
    def ldq_full(self) -> bool:
        return len(self._loads) >= self.ldq_capacity

    @property
    def stq_full(self) -> bool:
        return len(self._stores) >= self.stq_capacity

    def load_count(self) -> int:
        return len(self._loads)

    def store_count(self) -> int:
        return len(self._stores)

    # -- insertion / removal -------------------------------------------------

    def add_load(self, uop: DynUop) -> None:
        self._loads.append(uop)

    def add_store(self, uop: DynUop) -> None:
        self._stores.append(uop)

    def remove(self, uop: DynUop) -> None:
        """Remove a committed or squashed micro-op from its queue."""
        if uop.is_load:
            if uop in self._loads:
                self._loads.remove(uop)
        elif uop in self._stores:
            self._stores.remove(uop)

    def drop_squashed(self) -> None:
        """Purge every squashed entry (called after a pipeline squash)."""
        self._loads = [u for u in self._loads
                       if u.state != UopState.SQUASHED]
        self._stores = [u for u in self._stores
                        if u.state != UopState.SQUASHED]

    # -- disambiguation ---------------------------------------------------

    def _overlaps(self, addr_a: int, addr_b: int) -> bool:
        """Whether two word accesses overlap."""
        return abs(addr_a - addr_b) < self._word_bytes

    def older_store_blocks(self, load: DynUop) -> bool:
        """True while an older store makes the load unissueable.

        Conservative mode: any older store with an unresolved address
        blocks.  With memory-dependence speculation, unresolved
        addresses do *not* block (the load bypasses; a conflict is
        caught later by :meth:`conflicting_load`).  In both modes a
        *partially* overlapping resolved store blocks until it drains:
        word forwarding cannot shift/merge bytes, only the memory
        system can.
        """
        if not self._stores:
            return False
        load_seq = load.seq
        load_vaddr = load.vaddr
        for store in self._stores:
            if store.seq >= load_seq:
                continue
            if store.state is UopState.SQUASHED:
                continue
            if store.vaddr is None:
                if not self._mem_dep_speculation:
                    return True
                continue
            if (load_vaddr is not None and store.vaddr != load_vaddr
                    and self._overlaps(store.vaddr, load_vaddr)):
                return True
        return False

    def forward_from_store(self, load: DynUop) -> Optional[Tuple[int, DynUop]]:
        """Value forwarded by the youngest older store to the *same* word.

        Returns ``(value, store)`` or ``None``.  Only an exact word
        match forwards; partial overlaps never reach here (the load is
        stalled by :meth:`older_store_blocks` until the store drains).
        """
        if not self._stores:
            return None
        best: Optional[DynUop] = None
        for store in self._stores:
            if store.seq >= load.seq or store.state is UopState.SQUASHED:
                continue
            if store.vaddr is None or load.vaddr is None:
                continue
            if store.vaddr == load.vaddr:
                if best is None or store.seq > best.seq:
                    best = store
        if best is None or best.store_value is None:
            return None
        return best.store_value, best

    def conflicting_load(self, store: DynUop) -> Optional[DynUop]:
        """Oldest younger load that already read past this store.

        Called when a store's address resolves under memory-dependence
        speculation: any younger load that has issued (or finished)
        against an overlapping address consumed stale data and must be
        squashed and replayed.
        """
        if store.vaddr is None:
            return None
        victim: Optional[DynUop] = None
        for load in self._loads:
            if load.seq <= store.seq:
                continue
            if load.state is not UopState.ISSUED and \
                    load.state is not UopState.DONE:
                continue
            if load.vaddr is None:
                continue
            if self._overlaps(store.vaddr, load.vaddr):
                if victim is None or load.seq < victim.seq:
                    victim = load
        return victim
