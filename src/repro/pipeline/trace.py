"""Pipeline event tracing.

A :class:`PipelineTracer` hooks a :class:`~repro.pipeline.core.Core` and
records one :class:`TraceEvent` per pipeline action (fetch, dispatch,
issue, writeback, commit, squash, fault) — the standard debugging aid of
every production simulator.  Events can be filtered by kind or sequence
range and rendered as a per-instruction timeline.

Usage::

    core = Core(program, hierarchy, ...)
    tracer = PipelineTracer().attach(core)
    core.run()
    print(tracer.render_timeline(limit=20))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigError
from repro.pipeline.core import Core
from repro.pipeline.uop import DynUop

EVENT_KINDS = ("fetch", "dispatch", "issue", "writeback", "commit",
               "squash", "fault")


@dataclass(frozen=True)
class TraceEvent:
    """One pipeline event."""

    cycle: int
    kind: str
    seq: int
    pc: int
    text: str

    def __str__(self) -> str:
        return (f"{self.cycle:8d}  {self.kind:9s} #{self.seq:<6d} "
                f"{self.pc:#08x}  {self.text}")


class PipelineTracer:
    """Records pipeline events by wrapping a core's stage methods."""

    def __init__(self, kinds: Optional[List[str]] = None,
                 max_events: int = 100_000) -> None:
        for kind in kinds or ():
            if kind not in EVENT_KINDS:
                raise ConfigError(f"unknown event kind {kind!r}")
        self._kinds = set(kinds) if kinds else set(EVENT_KINDS)
        self._max_events = max_events
        self.events: List[TraceEvent] = []
        self._core: Optional[Core] = None
        self._saved: Dict[str, Callable] = {}

    # ------------------------------------------------------------------

    def attach(self, core: Core) -> "PipelineTracer":
        """Start recording events from ``core``."""
        if self._core is not None:
            raise ConfigError("tracer is already attached")
        self._core = core
        self._wrap("_fetch_instruction_line", "fetch",
                   lambda uop, _r: str(uop.inst))
        self._wrap("_dispatch_uop", "dispatch",
                   lambda uop, _r: f"deps={sorted(uop.producers)}")
        self._wrap("_execute", "issue", lambda uop, _r: str(uop.inst))
        self._wrap("_commit_uop", "commit", lambda uop, _r: str(uop.inst))
        self._wrap("_discard_uop", "squash", lambda uop, _r: str(uop.inst))
        self._wrap("_raise_fault", "fault",
                   lambda uop, _r: f"{uop.fault} @ {uop.vaddr:#x}"
                   if uop.vaddr is not None else str(uop.fault))
        return self

    def detach(self) -> List[TraceEvent]:
        """Stop recording; returns the captured events."""
        if self._core is None:
            raise ConfigError("tracer is not attached")
        for name, original in self._saved.items():
            delattr(self._core, name)
        self._saved.clear()
        self._core = None
        return self.events

    def _wrap(self, method_name: str, kind: str,
              describe: Callable[[DynUop, object], str]) -> None:
        core = self._core
        original = getattr(core, method_name)
        self._saved[method_name] = original
        tracer = self

        def wrapped(uop: DynUop, *args, **kwargs):
            result = original(uop, *args, **kwargs)
            if kind in tracer._kinds and \
                    len(tracer.events) < tracer._max_events:
                tracer.events.append(TraceEvent(
                    cycle=core.cycle, kind=kind, seq=uop.seq, pc=uop.pc,
                    text=describe(uop, result)))
            return result

        setattr(core, method_name, wrapped)

    # ------------------------------------------------------------------

    def filter(self, kind: Optional[str] = None,
               seq: Optional[int] = None) -> List[TraceEvent]:
        """Events matching a kind and/or a micro-op sequence number."""
        selected = self.events
        if kind is not None:
            selected = [e for e in selected if e.kind == kind]
        if seq is not None:
            selected = [e for e in selected if e.seq == seq]
        return list(selected)

    def lifetime(self, seq: int) -> List[TraceEvent]:
        """Every event of one dynamic instruction, in order."""
        return self.filter(seq=seq)

    def render_timeline(self, limit: int = 50) -> str:
        """A readable event log (first ``limit`` events)."""
        header = (f"{'cycle':>8s}  {'event':9s} {'seq':7s} "
                  f"{'pc':8s}  detail")
        lines = [header, "-" * len(header)]
        lines += [str(event) for event in self.events[:limit]]
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        return "\n".join(lines)
