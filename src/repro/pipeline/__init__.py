"""The out-of-order core: config, micro-ops, ROB, LSQ, issue, cycle loop."""

from repro.pipeline.config import CoreConfig
from repro.pipeline.core import Core, RunResult
from repro.pipeline.uop import DynUop, UopState

__all__ = ["Core", "CoreConfig", "DynUop", "RunResult", "UopState"]
