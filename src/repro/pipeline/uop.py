"""Dynamic micro-op state tracked through the pipeline."""

from __future__ import annotations

import enum
from typing import Dict, Optional, Set, TYPE_CHECKING

from repro.isa.instructions import Instruction, Opcode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    pass


class UopState(enum.Enum):
    """Lifecycle of a dynamic micro-op."""

    FETCHED = "fetched"        # in the front-end buffer
    DISPATCHED = "dispatched"  # in ROB + IQ, waiting for operands
    ISSUED = "issued"          # executing on a functional unit
    DONE = "done"              # result produced, waiting to commit
    COMMITTED = "committed"
    SQUASHED = "squashed"


class DynUop:
    """One dynamic instance of an instruction in flight.

    The core manipulates these objects directly; they are not part of the
    public API but their fields are documented because the SafeSpec engine
    and the analysis code read them.
    """

    __slots__ = (
        "seq", "inst", "pc", "index", "state",
        "opcode", "is_load", "is_store", "is_branch", "is_serialising",
        "inst_class", "fu_index",
        "fetch_cycle", "dispatch_cycle", "issue_cycle", "done_cycle",
        "commit_cycle",
        "pred_taken", "pred_target", "actual_taken", "actual_target",
        "mispredicted", "btb_predicted",
        "operands", "producers", "result", "pending", "waiters",
        "vaddr", "paddr", "store_value", "fault", "mem_latency",
        "hit_level", "forwarded", "ifetch_level", "ifetch_line",
        "dwalked", "iwalked",
        "branch_deps", "promoted", "blocked_on_shadow",
    )

    def __init__(self, seq: int, inst: Instruction, pc: int, index: int,
                 fetch_cycle: int) -> None:
        self.seq = seq
        self.inst = inst
        self.pc = pc
        self.index = index
        self.state = UopState.FETCHED

        # Decoded classification, copied from the (assembly-time decoded)
        # instruction so the pipeline's per-cycle checks are plain slot
        # reads instead of chained property calls.
        opcode = inst.opcode
        self.opcode = opcode
        self.is_load = opcode is Opcode.LOAD
        self.is_store = opcode is Opcode.STORE
        self.is_branch = inst.is_control_flow
        self.is_serialising = (opcode is Opcode.RDTSC
                               or opcode is Opcode.FENCE)
        self.inst_class = inst.inst_class
        self.fu_index = inst.fu_index

        self.fetch_cycle = fetch_cycle
        self.dispatch_cycle = -1
        self.issue_cycle = -1
        self.done_cycle = -1
        self.commit_cycle = -1

        # control flow
        self.pred_taken = False
        self.pred_target: Optional[int] = None
        self.actual_taken = False
        self.actual_target: Optional[int] = None
        self.mispredicted = False
        self.btb_predicted = False

        # data flow: register -> resolved value, or register -> producer
        self.operands: Dict[int, int] = {}
        self.producers: Dict[int, "DynUop"] = {}
        self.result: Optional[int] = None
        self.pending = 0                  # producers still outstanding
        self.waiters: list = []           # consumers to wake when done

        # memory
        self.vaddr: Optional[int] = None
        self.paddr: Optional[int] = None
        self.store_value: Optional[int] = None
        self.fault: Optional[str] = None
        self.mem_latency = 0
        self.hit_level = ""
        self.forwarded = False
        self.ifetch_level = ""
        self.ifetch_line = -1
        self.dwalked = False
        self.iwalked = False

        # speculation bookkeeping
        self.branch_deps: Set[int] = set()
        self.promoted = False            # WFB: shadow state already moved
        self.blocked_on_shadow = False   # stalled by a full shadow structure

    # -- classification ----------------------------------------------------

    @property
    def in_flight(self) -> bool:
        return self.state in (UopState.DISPATCHED, UopState.ISSUED,
                              UopState.DONE)

    # -- operand readiness ---------------------------------------------------

    def operands_ready(self) -> bool:
        """All source registers have values (producers finished).

        Readiness is tracked by wakeup: producers decrement ``pending``
        at writeback, so this check is O(1).
        """
        return self.pending == 0

    def source_value(self, reg: int) -> int:
        """Resolved value of a source register (call once ready).

        Values either arrived at dispatch (architectural registers and
        already-finished producers) or are pulled from the producer's
        result here.
        """
        if reg in self.operands:
            return self.operands[reg]
        return self.producers[reg].result

    def __repr__(self) -> str:
        return (f"DynUop(#{self.seq} pc={self.pc:#x} {self.inst} "
                f"{self.state.value})")
