"""Issue queue and functional-unit availability."""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.errors import SimulationError
from repro.isa.instructions import InstructionClass
from repro.pipeline.config import CoreConfig
from repro.pipeline.uop import DynUop, UopState


class FunctionalUnits:
    """Per-cycle issue-slot accounting for each unit class."""

    def __init__(self, config: CoreConfig) -> None:
        self._capacity: Dict[InstructionClass, int] = {
            InstructionClass.INT: config.int_alus,
            InstructionClass.MUL: config.mul_units,
            InstructionClass.LOAD: config.load_ports,
            InstructionClass.STORE: config.store_ports,
            InstructionClass.BRANCH: config.branch_units,
            InstructionClass.SYSTEM: 1,
        }
        self._used: Dict[InstructionClass, int] = {}

    def new_cycle(self) -> None:
        """Release every unit for the next cycle (fully pipelined units)."""
        self._used = {cls: 0 for cls in self._capacity}

    def try_claim(self, inst_class: InstructionClass) -> bool:
        """Claim an issue slot of the given class if one remains."""
        if self._used.get(inst_class, 0) >= self._capacity[inst_class]:
            return False
        self._used[inst_class] = self._used.get(inst_class, 0) + 1
        return True


class IssueQueue:
    """A bounded window of dispatched, not-yet-issued micro-ops.

    Readiness is wakeup-driven: micro-ops enter the ready list when their
    pending producer count reaches zero (at dispatch, or when the last
    producer's writeback wakes them), so the scheduler never polls
    waiting entries.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: List[DynUop] = []
        self._ready: List[DynUop] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[DynUop]:
        return iter(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def add(self, uop: DynUop) -> None:
        if self.full:
            raise SimulationError("IQ overflow — dispatch must check full")
        self._entries.append(uop)
        if uop.pending == 0:
            self._ready.append(uop)

    def wake(self, uop: DynUop) -> None:
        """A producer finished: move the micro-op to the ready list."""
        if uop.state is UopState.DISPATCHED and uop.pending == 0:
            self._ready.append(uop)

    def remove(self, uop: DynUop) -> None:
        self._entries.remove(uop)
        try:
            self._ready.remove(uop)
        except ValueError:
            pass

    def drop_squashed(self) -> None:
        self._entries = [u for u in self._entries
                         if u.state != UopState.SQUASHED]
        self._ready = [u for u in self._ready
                       if u.state != UopState.SQUASHED]

    def ready_uops(self) -> List[DynUop]:
        """Micro-ops whose operands are all available, oldest first."""
        self._ready.sort(key=lambda u: u.seq)
        return list(self._ready)
