"""Issue queue and functional-unit availability."""

from __future__ import annotations

import operator
from typing import Iterator, List

from repro.errors import SimulationError
from repro.isa.instructions import FU_CLASS_INDEX, InstructionClass
from repro.pipeline.config import CoreConfig
from repro.pipeline.uop import DynUop, UopState

_BY_SEQ = operator.attrgetter("seq")


class FunctionalUnits:
    """Per-cycle issue-slot accounting for each unit class.

    Capacity and usage are dense lists indexed by the instruction-class
    ``fu_index`` decoded at assembly time — the per-cycle reset and the
    per-issue claim are plain list operations with no enum hashing.
    """

    __slots__ = ("_capacity", "_used", "_zeros", "_dirty")

    def __init__(self, config: CoreConfig) -> None:
        by_class = {
            InstructionClass.INT: config.int_alus,
            InstructionClass.MUL: config.mul_units,
            InstructionClass.LOAD: config.load_ports,
            InstructionClass.STORE: config.store_ports,
            InstructionClass.BRANCH: config.branch_units,
            InstructionClass.SYSTEM: 1,
        }
        self._capacity: List[int] = [0] * len(FU_CLASS_INDEX)
        for cls, capacity in by_class.items():
            self._capacity[FU_CLASS_INDEX[cls]] = capacity
        self._zeros: List[int] = [0] * len(self._capacity)
        self._used: List[int] = list(self._zeros)
        self._dirty = False

    def new_cycle(self) -> None:
        """Release every unit for the next cycle (fully pipelined units)."""
        if self._dirty:
            self._used = list(self._zeros)
            self._dirty = False

    def try_claim_index(self, fu_index: int) -> bool:
        """Claim an issue slot of the indexed class if one remains."""
        used = self._used
        if used[fu_index] >= self._capacity[fu_index]:
            return False
        used[fu_index] += 1
        self._dirty = True
        return True

    def try_claim(self, inst_class: InstructionClass) -> bool:
        """Claim an issue slot of the given class if one remains."""
        return self.try_claim_index(FU_CLASS_INDEX[inst_class])


class IssueQueue:
    """A bounded window of dispatched, not-yet-issued micro-ops.

    Readiness is wakeup-driven: micro-ops enter the ready list when their
    pending producer count reaches zero (at dispatch, or when the last
    producer's writeback wakes them), so the scheduler never polls
    waiting entries.
    """

    __slots__ = ("capacity", "_entries", "_ready")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: List[DynUop] = []
        self._ready: List[DynUop] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[DynUop]:
        return iter(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def add(self, uop: DynUop) -> None:
        if len(self._entries) >= self.capacity:
            raise SimulationError("IQ overflow — dispatch must check full")
        self._entries.append(uop)
        if uop.pending == 0:
            self._ready.append(uop)

    def wake(self, uop: DynUop) -> None:
        """A producer finished: move the micro-op to the ready list."""
        if uop.state is UopState.DISPATCHED and uop.pending == 0:
            self._ready.append(uop)

    def remove(self, uop: DynUop) -> None:
        self._entries.remove(uop)
        try:
            self._ready.remove(uop)
        except ValueError:
            pass

    def drop_squashed(self) -> None:
        self._entries = [u for u in self._entries
                         if u.state is not UopState.SQUASHED]
        self._ready = [u for u in self._ready
                       if u.state is not UopState.SQUASHED]

    def ready_uops(self) -> List[DynUop]:
        """Micro-ops whose operands are all available, oldest first.

        Always returns a snapshot, never the live ready list.
        """
        ready = self._ready
        if not ready:
            return []
        ready.sort(key=_BY_SEQ)
        return list(ready)
