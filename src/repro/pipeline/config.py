"""Core configuration — Table I of the paper (Skylake-like).

The default values reproduce the paper's simulated CPU:

===========  ==========================================
Parameter    Configuration
===========  ==========================================
CPU          SkyLake
Issue        6-way issue
IQ           96-entry Issue Queue
Commit       Up to 6 micro-ops/cycle
ROB          224-entry Reorder Buffer
iTLB         64-entry (in HierarchyConfig)
dTLB         64-entry (in HierarchyConfig)
LDQ          72-entry
STQ          56-entry
===========  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class CoreConfig:
    """Sizing and timing of the out-of-order engine."""

    fetch_width: int = 6
    issue_width: int = 6
    commit_width: int = 6
    rob_entries: int = 224
    iq_entries: int = 96
    ldq_entries: int = 72
    stq_entries: int = 56

    # functional units
    int_alus: int = 4
    mul_units: int = 1
    load_ports: int = 2
    store_ports: int = 1
    branch_units: int = 2

    # latencies (cycles)
    alu_latency: int = 1
    mul_latency: int = 3
    front_end_depth: int = 5        # fetch -> dispatchable delay
    mispredict_penalty: int = 12    # squash -> first refetched instruction
    store_forward_latency: int = 4  # store-queue forwarding to a load

    # Memory-dependence speculation: loads may issue past unresolved
    # older store addresses; a later address conflict squashes and
    # replays (the Spectre v4 / speculative-store-bypass surface).
    # Off by default: the classic conservative disambiguation.
    mem_dep_speculation: bool = False

    # safety valve for runaway simulations
    max_cycles: int = 20_000_000

    def __post_init__(self) -> None:
        positive_fields = [
            "fetch_width", "issue_width", "commit_width", "rob_entries",
            "iq_entries", "ldq_entries", "stq_entries", "int_alus",
            "mul_units", "load_ports", "store_ports", "branch_units",
            "alu_latency", "mul_latency", "front_end_depth",
            "mispredict_penalty", "store_forward_latency", "max_cycles",
        ]
        for name in positive_fields:
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1")
        if self.rob_entries < self.iq_entries:
            raise ConfigError("ROB must be at least as large as the IQ")
