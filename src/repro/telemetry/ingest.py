"""Ingesters: every producer payload the repo emits, normalized.

One entry point, :func:`ingest_payload`, sniffs the artifact shape and
dispatches:

* ``BENCH_<rev>.json`` harness snapshots (``repro.bench``) — per-row
  cycles/sec, calibration-normalized scores, the host calibration spin,
  and the calibration-drift flags when present;
* the uniform CLI JSON envelope ``{"schema_version", "rev", "command",
  "payload"}`` — ``verify`` (pass-rate by profile/policy), ``matrix`` /
  ``attack`` (leak verdicts per attack x policy), ``sample`` (stitched
  IPC + CI), ``workload`` / ``run`` (full-run IPC, the sampled-error
  reference), ``cache`` (store stats), ``status`` (server stats);
* a raw ``/v1/stats`` body from a running ``repro serve`` (no envelope,
  so the rev comes from ``default_rev`` or the working tree).

The input contract is forgiving by design: a malformed or partial
payload is *skipped with a warning* (collected on the returned
:class:`IngestReport`), never raised — rebuilding the dashboard from a
directory of mixed-vintage artifacts must not die on the one file an
old revision wrote differently.  Within a payload, malformed rows are
skipped individually and the well-formed remainder still lands.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.telemetry.store import TrajectoryPoint, TrajectoryStore

_ENVELOPE_KEYS = {"schema_version", "rev", "command", "payload"}


@dataclass
class IngestReport:
    """What one artifact contributed (or why it was skipped)."""

    source: str
    kind: str                       # bench / verify / ... / skipped
    rev: Optional[str] = None
    points: int = 0
    new_source: bool = True
    warnings: List[str] = field(default_factory=list)

    @property
    def skipped(self) -> bool:
        return self.kind == "skipped"

    def to_dict(self) -> Dict[str, Any]:
        return {"source": self.source, "kind": self.kind, "rev": self.rev,
                "points": self.points, "new_source": self.new_source,
                "warnings": list(self.warnings)}


def _working_tree_rev() -> str:
    from repro.bench.harness import git_revision

    return git_revision()


def _number(value: Any) -> float:
    """``value`` as a float, or raise (bools are not measurements)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"not a number: {value!r}")
    return float(value)


# ---------------------------------------------------------------------------
# per-shape parsers: (payload, context) -> points, warnings
# ---------------------------------------------------------------------------

def _parse_bench(payload: Dict[str, Any], rev: str, schema: int
                 ) -> Tuple[List[TrajectoryPoint], List[str]]:
    points: List[TrajectoryPoint] = []
    warnings: List[str] = []
    calibration = payload.get("calibration", {})
    if isinstance(calibration, dict) and "kloops_per_sec" in calibration:
        points.append(TrajectoryPoint(
            rev=rev, schema_version=schema, command="bench",
            series="calibration", label="host",
            value=_number(calibration["kloops_per_sec"]),
            unit="kloops/s",
            meta={key: calibration[key] for key in
                  ("loops", "drift_vs_baseline", "drifted")
                  if key in calibration}))
    for row in payload.get("results", []):
        try:
            name = str(row["name"])
            backend = str(row.get("backend", "cycle"))
            digest = str(row.get("machine_spec_digest") or "")
            meta = {key: row[key] for key in
                    ("benchmark", "policy", "instructions", "job_key",
                     "cycles", "best_wall_s", "kloops_per_sec",
                     "calibration_drift", "calibration_drifted")
                    if key in row}
            for series, unit in (("cycles_per_sec", "cyc/s"),
                                 ("normalized_score", "x")):
                points.append(TrajectoryPoint(
                    rev=rev, schema_version=schema, command="bench",
                    series=series, label=name, backend=backend,
                    spec_digest=digest, value=_number(row[series]),
                    unit=unit, meta=meta))
        except (KeyError, TypeError, ValueError) as error:
            warnings.append(f"bench row skipped ({error})")
    if not points:
        warnings.append("bench payload contributed no points")
    return points, warnings


def _parse_verify(payload: Dict[str, Any], rev: str, schema: int
                  ) -> Tuple[List[TrajectoryPoint], List[str]]:
    warnings: List[str] = []
    backend = str(payload.get("backend", "cycle"))
    groups: Dict[Tuple[str, str], List[bool]] = {}
    for verdict in payload.get("verdicts", []):
        try:
            key = (str(verdict["profile"]), str(verdict["policy"]))
            groups.setdefault(key, []).append(bool(verdict["ok"]))
        except (KeyError, TypeError) as error:
            warnings.append(f"verify verdict skipped ({error})")
    points: List[TrajectoryPoint] = []
    by_profile: Dict[str, List[bool]] = {}
    for (profile, policy), oks in sorted(groups.items()):
        by_profile.setdefault(profile, []).extend(oks)
        points.append(TrajectoryPoint(
            rev=rev, schema_version=schema, command="verify",
            series="pass_rate", label=f"{profile}/{policy}",
            backend=backend, value=sum(oks) / len(oks), unit="fraction",
            meta={"cases": len(oks), "failures": len(oks) - sum(oks)}))
    for profile, oks in sorted(by_profile.items()):
        points.append(TrajectoryPoint(
            rev=rev, schema_version=schema, command="verify",
            series="pass_rate", label=profile, backend=backend,
            value=sum(oks) / len(oks), unit="fraction",
            meta={"cases": len(oks), "failures": len(oks) - sum(oks)}))
    if not points:
        # Partial payloads (no verdict list) still carry the headline.
        try:
            cases = int(payload["cases"])
            failures = int(payload["failures"])
            profile = str(payload.get("profile", "mixed"))
            points.append(TrajectoryPoint(
                rev=rev, schema_version=schema, command="verify",
                series="pass_rate", label=profile, backend=backend,
                value=(cases - failures) / cases if cases else 0.0,
                unit="fraction",
                meta={"cases": cases, "failures": failures}))
        except (KeyError, TypeError, ValueError):
            warnings.append("verify payload has neither verdicts nor "
                            "cases/failures totals")
    return points, warnings


def _verdict_point(rev: str, schema: int, attack: str, policy: str,
                   closed: bool, backend: str) -> TrajectoryPoint:
    return TrajectoryPoint(
        rev=rev, schema_version=schema, command="matrix",
        series="verdict", label=f"{attack}/{policy}", backend=backend,
        value=1.0 if closed else 0.0,
        text="closed" if closed else "LEAKED")


def _parse_matrix(payload: Dict[str, Any], rev: str, schema: int
                  ) -> Tuple[List[TrajectoryPoint], List[str]]:
    points: List[TrajectoryPoint] = []
    warnings: List[str] = []
    backend = str(payload.get("backend", "cycle"))
    matrix = payload.get("matrix")
    if not isinstance(matrix, dict):
        return [], ["matrix payload has no attack/policy cells"]
    for attack, row in matrix.items():
        if not isinstance(row, dict):
            warnings.append(f"matrix row {attack!r} skipped (not a dict)")
            continue
        for policy, cell in row.items():
            try:
                points.append(_verdict_point(
                    rev, schema, str(attack), str(policy),
                    bool(cell["closed"]), backend))
            except (KeyError, TypeError) as error:
                warnings.append(
                    f"matrix cell {attack}/{policy} skipped ({error})")
    return points, warnings


def _parse_attack(payload: Dict[str, Any], rev: str, schema: int
                  ) -> Tuple[List[TrajectoryPoint], List[str]]:
    points: List[TrajectoryPoint] = []
    warnings: List[str] = []
    for record in payload.get("results", []):
        try:
            points.append(_verdict_point(
                rev, schema, str(record["attack"]),
                str(record["policy"]),
                record["leaked"] != record["secret"],
                str(record.get("backend", "cycle"))))
        except (KeyError, TypeError) as error:
            warnings.append(f"attack record skipped ({error})")
    if not points:
        warnings.append("attack payload contributed no points")
    return points, warnings


def _parse_sample(payload: Dict[str, Any], rev: str, schema: int
                  ) -> Tuple[List[TrajectoryPoint], List[str]]:
    try:
        label = f"{payload['target']}/{payload['policy']}"
        point = TrajectoryPoint(
            rev=rev, schema_version=schema, command="sample",
            series="stitched_ipc", label=label,
            backend=str(payload.get("backend", "cycle")),
            value=_number(payload["stitched_ipc"]), unit="ipc",
            meta={key: payload[key] for key in
                  ("ipc_ci95", "ipc_mean", "ipc_std", "coverage",
                   "total_instructions", "measured_windows",
                   "cached_windows", "plan") if key in payload})
    except (KeyError, TypeError, ValueError) as error:
        return [], [f"sample payload skipped ({error})"]
    return [point], []


def _parse_workload(payload: Dict[str, Any], rev: str, schema: int
                    ) -> Tuple[List[TrajectoryPoint], List[str]]:
    points: List[TrajectoryPoint] = []
    warnings: List[str] = []
    policy = payload.get("policy")
    backend = str(payload.get("backend", "cycle"))
    for run in payload.get("runs", []):
        try:
            points.append(TrajectoryPoint(
                rev=rev, schema_version=schema, command="workload",
                series="ipc", label=f"{run['benchmark']}/{policy}",
                backend=backend, value=_number(run["ipc"]), unit="ipc",
                meta={"cycles": run.get("cycles"),
                      "instructions": payload.get("instructions")}))
        except (KeyError, TypeError, ValueError) as error:
            warnings.append(f"workload run skipped ({error})")
    if not points:
        warnings.append("workload payload contributed no points")
    return points, warnings


def _parse_serve_stats(payload: Dict[str, Any], rev: str, schema: int
                       ) -> Tuple[List[TrajectoryPoint], List[str]]:
    jobs = payload.get("jobs")
    store = payload.get("store")
    if not isinstance(jobs, dict) or not isinstance(store, dict):
        return [], ["status payload is not a server stats body "
                    "(no jobs/store counters); skipped"]
    points: List[TrajectoryPoint] = []
    warnings: List[str] = []
    meta = {"workers": payload.get("workers"),
            "uptime_s": payload.get("uptime_s"),
            "store_backend": store.get("backend"),
            "store_location": store.get("location")}
    for counter in ("known", "executed", "store_hits", "failed"):
        if counter not in jobs:
            warnings.append(f"serve stats missing jobs.{counter}")
            continue
        points.append(TrajectoryPoint(
            rev=rev, schema_version=schema, command="serve",
            series="jobs", label=counter,
            value=_number(jobs[counter]), unit="jobs", meta=meta))
    for series, key in (("store_entries", "entries"),
                        ("store_bytes", "payload_bytes")):
        if key in store:
            points.append(TrajectoryPoint(
                rev=rev, schema_version=schema, command="serve",
                series=series, label=str(store.get("backend", "?")),
                value=_number(store[key]), meta=meta))
    return points, warnings


def _parse_cache(payload: Dict[str, Any], rev: str, schema: int
                 ) -> Tuple[List[TrajectoryPoint], List[str]]:
    if "entries" not in payload or "backend" not in payload:
        # `repro cache clear/gc` emits {action, removed, remaining}:
        # an action receipt, not a corpus observation.
        return [], ["cache payload is not a stats body; skipped"]
    points = [TrajectoryPoint(
        rev=rev, schema_version=schema, command="cache",
        series="store_entries", label=str(payload["backend"]),
        value=_number(payload["entries"]),
        meta={"location": payload.get("location")})]
    if "payload_bytes" in payload:
        points.append(TrajectoryPoint(
            rev=rev, schema_version=schema, command="cache",
            series="store_bytes", label=str(payload["backend"]),
            value=_number(payload["payload_bytes"]), unit="bytes"))
    for kind, count in (payload.get("by_kind") or {}).items():
        points.append(TrajectoryPoint(
            rev=rev, schema_version=schema, command="cache",
            series="store_kind_entries", label=str(kind),
            value=_number(count)))
    return points, []


_ENVELOPE_PARSERS: Dict[str, Callable[..., Tuple[List[TrajectoryPoint],
                                                 List[str]]]] = {
    "verify": _parse_verify,
    "matrix": _parse_matrix,
    "attack": _parse_attack,
    "sample": _parse_sample,
    "workload": _parse_workload,
    "run": _parse_workload,
    "status": _parse_serve_stats,
    "cache": _parse_cache,
}


# ---------------------------------------------------------------------------
# the entry points
# ---------------------------------------------------------------------------

def ingest_payload(store: TrajectoryStore, payload: Any,
                   source: str = "<memory>",
                   default_rev: Optional[str] = None) -> IngestReport:
    """Normalize one artifact into ``store``; never raises on bad input.

    Returns an :class:`IngestReport`; a payload whose shape is not
    recognized (or that contributes nothing) comes back with
    ``kind="skipped"`` and a warning, leaving the store untouched.
    """
    if not isinstance(payload, dict):
        return IngestReport(source=source, kind="skipped", warnings=[
            f"not a JSON object ({type(payload).__name__}); skipped"])

    if "results" in payload and "calibration" in payload:
        # A bench harness snapshot (BENCH_<rev>.json / baseline.json).
        kind = "bench"
        rev = str(payload.get("rev") or default_rev
                  or _working_tree_rev())
        schema = int(payload.get("schema") or 0)
        points, warnings = _parse_bench(payload, rev, schema)
    elif _ENVELOPE_KEYS.issubset(payload):
        command = str(payload["command"])
        parser = _ENVELOPE_PARSERS.get(command)
        if parser is None:
            return IngestReport(
                source=source, kind="skipped", rev=str(payload["rev"]),
                warnings=[f"no ingester for command {command!r}; "
                          f"skipped"])
        kind = command
        rev = str(payload["rev"])
        try:
            schema = int(payload["schema_version"])
            body = payload["payload"]
            if not isinstance(body, dict):
                raise TypeError("payload body is not an object")
            points, warnings = parser(body, rev, schema)
        except (KeyError, TypeError, ValueError) as error:
            return IngestReport(source=source, kind="skipped", rev=rev,
                                warnings=[f"malformed {command} envelope "
                                          f"({error}); skipped"])
    elif "protocol" in payload and "jobs" in payload and \
            "store" in payload:
        # A raw /v1/stats body (no envelope, so no rev of its own).
        kind = "serve-stats"
        rev = str(default_rev or _working_tree_rev())
        schema = int(payload.get("schema") or 0)
        points, warnings = _parse_serve_stats(payload, rev, schema)
    else:
        return IngestReport(source=source, kind="skipped", warnings=[
            "unrecognized payload shape (not a bench snapshot, CLI "
            "envelope, or serve stats body); skipped"])

    if not points:
        return IngestReport(source=source, kind="skipped", rev=rev,
                            warnings=warnings or ["no points; skipped"])
    store.upsert(points)
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True, default=str).encode()
    ).hexdigest()
    new = store.record_source(digest, kind, rev, source, len(points))
    return IngestReport(source=source, kind=kind, rev=rev,
                        points=len(points), new_source=new,
                        warnings=warnings)


def ingest_file(store: TrajectoryStore, path: str,
                default_rev: Optional[str] = None) -> IngestReport:
    """Read + ingest one JSON artifact; unreadable files skip-warn."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as error:
        return IngestReport(source=path, kind="skipped", warnings=[
            f"unreadable artifact ({error}); skipped"])
    return ingest_payload(store, payload, source=path,
                          default_rev=default_rev)
