"""Longitudinal trajectory store: one normalized row per metric point.

Every artifact the repo emits — ``BENCH_<rev>.json`` snapshots, the CLI
``--format json`` envelopes (``verify`` / ``matrix`` / ``sample`` /
``workload`` / ``cache`` / ``status``), a server's ``/v1/stats`` — is a
point-in-time payload.  :class:`TrajectoryStore` is where they connect:
the ingesters (:mod:`repro.telemetry.ingest`) normalize each payload
into :class:`TrajectoryPoint` rows keyed by

    (rev, schema_version, command, series, label, backend, spec_digest)

and the store upserts them into one SQLite database (WAL mode + busy
timeout, the same concurrency posture as
:class:`~repro.serve.store.SQLiteResultStore`).  The primary key *is*
the idempotency contract: re-ingesting the same artifact replaces its
own rows instead of duplicating them, so the dashboard can be rebuilt
from committed artifacts any number of times.

Revision ordering is the store's one non-trivial query: git short revs
do not sort, so :meth:`TrajectoryStore.revisions` asks ``git rev-list``
for commit order and falls back to first-ingest order for revs the
repository does not know (a dirty working tree's ``local``, payloads
ingested outside a checkout).
"""

from __future__ import annotations

import json
import sqlite3
import subprocess
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.exec.cache import default_cache_dir

# Bump when the points table layout changes incompatibly.
TELEMETRY_SCHEMA_VERSION = 1

# The default database file name, placed inside the cache directory
# (next to the result store) unless $REPRO_TELEMETRY_DB overrides it.
DB_FILENAME = "telemetry.sqlite"
TELEMETRY_DB_ENV = "REPRO_TELEMETRY_DB"

BUSY_TIMEOUT_MS = 10_000

_SCHEMA_SQL = (
    """
    CREATE TABLE IF NOT EXISTS points (
        rev            TEXT    NOT NULL,
        schema_version INTEGER NOT NULL,
        command        TEXT    NOT NULL,
        series         TEXT    NOT NULL,
        label          TEXT    NOT NULL,
        backend        TEXT    NOT NULL DEFAULT '',
        spec_digest    TEXT    NOT NULL DEFAULT '',
        value          REAL,
        text_value     TEXT,
        unit           TEXT    NOT NULL DEFAULT '',
        meta           TEXT    NOT NULL DEFAULT '{}',
        updated_at     REAL    NOT NULL,
        PRIMARY KEY (rev, schema_version, command, series, label,
                     backend, spec_digest)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS revs (
        rev       TEXT PRIMARY KEY,
        first_seq INTEGER NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS sources (
        digest      TEXT PRIMARY KEY,
        kind        TEXT NOT NULL,
        rev         TEXT,
        source      TEXT NOT NULL,
        points      INTEGER NOT NULL,
        ingested_at REAL NOT NULL
    )
    """,
)


@dataclass(frozen=True)
class TrajectoryPoint:
    """One normalized metric observation at one revision.

    ``series`` names the metric (``normalized_score``, ``pass_rate``,
    ``verdict``, ...), ``label`` the entity within it (a bench row, an
    ``attack/policy`` cell, a fuzz profile).  ``value`` carries numeric
    metrics; categorical outcomes ride ``text`` (with ``value`` as a
    sortable shadow, e.g. closed=1.0).  ``meta`` holds payload extras
    (CI bounds, job keys) as a JSON-able dict.
    """

    rev: str
    schema_version: int
    command: str
    series: str
    label: str
    backend: str = ""
    spec_digest: str = ""
    value: Optional[float] = None
    text: Optional[str] = None
    unit: str = ""
    meta: Dict[str, Any] = field(default_factory=dict)

    def key(self) -> tuple:
        return (self.rev, self.schema_version, self.command, self.series,
                self.label, self.backend, self.spec_digest)


def default_telemetry_db() -> Path:
    """``$REPRO_TELEMETRY_DB`` when set, else ``<cache-dir>/telemetry.sqlite``."""
    import os

    override = os.environ.get(TELEMETRY_DB_ENV)
    if override:
        return Path(override)
    return default_cache_dir() / DB_FILENAME


def git_rev_ranks(revs: Sequence[str]) -> Optional[Dict[str, int]]:
    """Commit-order rank for each (short) rev, or None outside git.

    Ranks follow ``git rev-list --reverse`` (oldest first); revs the
    repository does not know are absent from the mapping.
    """
    try:
        out = subprocess.run(
            ["git", "rev-list", "--reverse", "--topo-order", "HEAD"],
            capture_output=True, text=True, timeout=10, check=False)
    except OSError:
        return None
    if out.returncode != 0:
        return None
    history = out.stdout.split()
    ranks: Dict[str, int] = {}
    for rev in revs:
        for index, full in enumerate(history):
            if full.startswith(rev):
                ranks[rev] = index
                break
    return ranks


class TrajectoryStore:
    """SQLite-backed store of :class:`TrajectoryPoint` rows."""

    def __init__(self, path: Union[str, Path, None] = None) -> None:
        base = Path(path) if path is not None else default_telemetry_db()
        # A directory argument gets the default file name inside it.
        self.path = base / DB_FILENAME if base.is_dir() else base
        self._lock = threading.Lock()
        self._conn: Optional[sqlite3.Connection] = None

    # -- connection management --------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        if self._conn is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(str(self.path),
                                   timeout=BUSY_TIMEOUT_MS / 1000.0,
                                   check_same_thread=False)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
            conn.execute("PRAGMA synchronous=NORMAL")
            for statement in _SCHEMA_SQL:
                conn.execute(statement)
            conn.commit()
            self._conn = conn
        return self._conn

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    def __enter__(self) -> "TrajectoryStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- writes ------------------------------------------------------------

    def upsert(self, points: Iterable[TrajectoryPoint]) -> int:
        """Insert-or-replace ``points``; returns how many were written.

        The primary key covers the full point identity, so re-ingesting
        an artifact replaces its own rows — never duplicates them.
        """
        rows = list(points)
        if not rows:
            return 0
        now = time.time()
        with self._lock:
            conn = self._connect()
            for point in rows:
                conn.execute(
                    "INSERT INTO points (rev, schema_version, command, "
                    "  series, label, backend, spec_digest, value, "
                    "  text_value, unit, meta, updated_at) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?) "
                    "ON CONFLICT(rev, schema_version, command, series, "
                    "  label, backend, spec_digest) DO UPDATE SET "
                    "  value = excluded.value, "
                    "  text_value = excluded.text_value, "
                    "  unit = excluded.unit, "
                    "  meta = excluded.meta, "
                    "  updated_at = excluded.updated_at",
                    (point.rev, point.schema_version, point.command,
                     point.series, point.label, point.backend,
                     point.spec_digest, point.value, point.text,
                     point.unit, json.dumps(point.meta, sort_keys=True),
                     now))
                conn.execute(
                    "INSERT OR IGNORE INTO revs (rev, first_seq) VALUES "
                    "(?, (SELECT COALESCE(MAX(first_seq), 0) + 1 "
                    "     FROM revs))", (point.rev,))
            conn.commit()
        return len(rows)

    def record_source(self, digest: str, kind: str, rev: Optional[str],
                      source: str, points: int) -> bool:
        """Remember one ingested artifact; True when first seen."""
        with self._lock:
            conn = self._connect()
            known = conn.execute(
                "SELECT 1 FROM sources WHERE digest = ?",
                (digest,)).fetchone() is not None
            conn.execute(
                "INSERT INTO sources (digest, kind, rev, source, points, "
                "  ingested_at) VALUES (?, ?, ?, ?, ?, ?) "
                "ON CONFLICT(digest) DO UPDATE SET "
                "  kind = excluded.kind, rev = excluded.rev, "
                "  source = excluded.source, points = excluded.points, "
                "  ingested_at = excluded.ingested_at",
                (digest, kind, rev, source, points, time.time()))
            conn.commit()
        return not known

    # -- reads -------------------------------------------------------------

    def points(self, command: Optional[str] = None,
               series: Optional[str] = None,
               rev: Optional[str] = None) -> List[TrajectoryPoint]:
        """Every stored point matching the given filters."""
        clauses, args = [], []
        for column, wanted in (("command", command), ("series", series),
                               ("rev", rev)):
            if wanted is not None:
                clauses.append(f"{column} = ?")
                args.append(wanted)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        with self._lock:
            rows = self._connect().execute(
                "SELECT rev, schema_version, command, series, label, "
                "backend, spec_digest, value, text_value, unit, meta "
                f"FROM points{where} ORDER BY command, series, label, "
                "backend", args).fetchall()
        return [TrajectoryPoint(
            rev=row[0], schema_version=row[1], command=row[2],
            series=row[3], label=row[4], backend=row[5],
            spec_digest=row[6], value=row[7], text=row[8], unit=row[9],
            meta=json.loads(row[10])) for row in rows]

    def revisions(self) -> List[str]:
        """Every ingested rev, oldest first.

        Revs in the repository's history sort by commit order; unknown
        revs (dirty trees, foreign payloads) keep first-ingest order and
        sort after every known rev — the trajectory's moving tip.
        """
        with self._lock:
            rows = self._connect().execute(
                "SELECT rev, first_seq FROM revs").fetchall()
        revs = [row[0] for row in rows]
        seqs = {row[0]: row[1] for row in rows}
        ranks = git_rev_ranks(revs) or {}
        known = len(ranks)
        return sorted(revs, key=lambda rev: (
            (0, ranks[rev]) if rev in ranks else (1, known + seqs[rev])))

    def summary(self) -> Dict[str, Any]:
        """The corpus shape ``telemetry show`` renders."""
        with self._lock:
            conn = self._connect()
            per_rev = conn.execute(
                "SELECT rev, command, COUNT(*) FROM points "
                "GROUP BY rev, command").fetchall()
            total = conn.execute("SELECT COUNT(*) FROM points") \
                .fetchone()[0]
            sources = conn.execute("SELECT COUNT(*) FROM sources") \
                .fetchone()[0]
        commands: Dict[str, Dict[str, int]] = {}
        for rev, command, count in per_rev:
            commands.setdefault(rev, {})[command] = count
        return {
            "db": str(self.path),
            "telemetry_schema": TELEMETRY_SCHEMA_VERSION,
            "points": int(total),
            "sources": int(sources),
            "revisions": [{"rev": rev,
                           "points": sum(commands.get(rev, {}).values()),
                           "commands": commands.get(rev, {})}
                          for rev in self.revisions()],
        }

    def __len__(self) -> int:
        with self._lock:
            row = self._connect().execute(
                "SELECT COUNT(*) FROM points").fetchone()
        return int(row[0])
