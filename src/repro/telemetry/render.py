"""Static HTML dashboard over a :class:`TrajectoryStore`.

One self-contained file: CSS and data inline, charts as inline SVG, no
scripts fetched and no network references — the artifact renders
identically from a CI artifact store, a pages branch, or ``file://``.
Given the same store contents the output is byte-identical, so a
re-ingest + re-render round trip is a no-op (the idempotency the CI job
asserts).

Sections:

* **cycles/sec trend** — geomean calibration-normalized score per
  backend across revisions (the auditable form of the >10% bench gate);
* **backend speedup** — geomean fast-vs-cycle ratio per revision;
* **security verdicts** — the latest leak matrix plus every cell that
  changed between adjacent revisions (the paper's claims are exactly
  that this list stays empty while the trends climb);
* **verify pass-rate** by fuzz profile;
* **sampled IPC** — stitched estimates with 95% CI bars, and the error
  against the full run whenever the same revision ingested one.

Colors follow the mark's job: categorical series hues are assigned in a
fixed slot order per backend (never cycled), verdicts wear the reserved
status palette *plus* an icon and a word (never color alone), and text
stays in ink tokens.  Light and dark are both selected palettes — the
dark values are the documented dark-surface steps, not an automatic
flip.
"""

from __future__ import annotations

import html
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.statistics import geometric_mean
from repro.telemetry.store import TrajectoryStore

# Categorical slots (light, dark) in fixed assignment order; the
# backend name picks its slot once and keeps it in every chart.
_SERIES_SLOTS = (("#2a78d6", "#3987e5"),     # slot 1: blue
                 ("#eb6834", "#d95926"),     # slot 2: orange
                 ("#1baf7a", "#199e70"))     # slot 3: aqua
_SLOT_ORDER = ("cycle", "fast")              # known backends first

_CSS = """
:root {
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --ink-1: #0b0b0b; --ink-2: #52514e; --ink-muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --good: #0ca30c; --critical: #d03b3b;
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --ink-1: #ffffff; --ink-2: #c3c2b7; --ink-muted: #898781;
    --grid: #2c2c2a; --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --good: #0ca30c; --critical: #d03b3b;
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--page); color: var(--ink-1);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
main { max-width: 980px; margin: 0 auto; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 0 0 2px; }
.subtitle { color: var(--ink-2); margin: 0 0 20px; }
section {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px 18px; margin: 0 0 16px;
}
section p.caption { color: var(--ink-2); margin: 2px 0 10px; }
.legend { display: flex; gap: 14px; flex-wrap: wrap; margin: 0 0 6px;
  color: var(--ink-2); font-size: 12px; align-items: center; }
.legend .chip { display: inline-block; width: 10px; height: 10px;
  border-radius: 3px; margin-right: 5px; vertical-align: -1px; }
svg text { fill: var(--ink-muted); font: 11px system-ui, sans-serif; }
svg text.direct { fill: var(--ink-2); font-weight: 600; }
svg text.value { fill: var(--ink-2); }
table { border-collapse: collapse; font-variant-numeric: tabular-nums; }
th, td { text-align: left; padding: 4px 12px 4px 0;
  border-bottom: 1px solid var(--grid); font-weight: normal; }
th { color: var(--ink-muted); font-size: 12px; }
td.num, th.num { text-align: right; }
.verdict-closed { color: var(--good); font-weight: 600; }
.verdict-leaked { color: var(--critical); font-weight: 600; }
.delta-none { color: var(--ink-2); }
.empty { color: var(--ink-muted); font-style: italic; }
code { font-size: 12px; }
footer { color: var(--ink-muted); font-size: 12px; margin-top: 8px; }
"""


# ---------------------------------------------------------------------------
# data assembly
# ---------------------------------------------------------------------------

def _backend_slot(backend: str, seen: List[str]) -> int:
    """The fixed categorical slot for ``backend`` (never re-assigned)."""
    order = [name for name in _SLOT_ORDER if name in seen]
    order += [name for name in seen if name not in _SLOT_ORDER]
    return min(order.index(backend), len(_SERIES_SLOTS) - 1)


def collect_dashboard_data(store: TrajectoryStore) -> Dict[str, Any]:
    """Everything the dashboard draws, as one JSON-able tree."""
    revs = store.revisions()
    rev_index = {rev: index for index, rev in enumerate(revs)}

    # Bench: geomean normalized score per (rev, backend), raw rows for
    # the speedup pairing, and the host calibration trend.
    scores: Dict[str, Dict[str, List[float]]] = {}
    pairable: Dict[Tuple[str, str], Dict[str, float]] = {}
    calibration: Dict[str, float] = {}
    for point in store.points(command="bench"):
        if point.series == "calibration":
            calibration[point.rev] = point.value or 0.0
        if point.series != "normalized_score" or not point.value:
            continue
        scores.setdefault(point.backend, {}) \
            .setdefault(point.rev, []).append(point.value)
        meta = point.meta
        stem = (meta.get("benchmark"), meta.get("policy"),
                meta.get("instructions"), point.spec_digest)
        pairable.setdefault((point.rev, str(stem)), {})[point.backend] = \
            point.value
    backends = sorted(scores, key=lambda b: (
        _SLOT_ORDER.index(b) if b in _SLOT_ORDER else len(_SLOT_ORDER), b))
    score_trend = {
        backend: [{"rev": rev, "score": round(geometric_mean(values), 3)}
                  for rev, values in sorted(
                      per_rev.items(),
                      key=lambda item: rev_index.get(item[0], 1 << 30))]
        for backend, per_rev in scores.items()}

    speedups: Dict[str, List[float]] = {}
    for (rev, _stem), by_backend in pairable.items():
        reference = by_backend.get("cycle")
        if not reference:
            continue
        for backend, score in by_backend.items():
            if backend != "cycle":
                speedups.setdefault(rev, []).append(score / reference)
    speedup_trend = [
        {"rev": rev, "speedup": round(geometric_mean(values), 2)}
        for rev, values in sorted(
            speedups.items(),
            key=lambda item: rev_index.get(item[0], 1 << 30))]

    # Security verdicts: per rev, label -> closed/LEAKED; deltas between
    # adjacent revisions that both carry verdicts.
    verdicts: Dict[str, Dict[str, str]] = {}
    for point in store.points(series="verdict"):
        verdicts.setdefault(point.rev, {})[point.label] = \
            point.text or "?"
    verdict_revs = [rev for rev in revs if rev in verdicts]
    deltas = []
    for previous, current in zip(verdict_revs, verdict_revs[1:]):
        changed = []
        before, after = verdicts[previous], verdicts[current]
        for label in sorted(set(before) | set(after)):
            old, new = before.get(label, "absent"), \
                after.get(label, "absent")
            if old != new:
                changed.append({"cell": label, "from": old, "to": new})
        deltas.append({"from": previous, "to": current,
                       "changed": changed})

    # Verify pass-rate by profile (the per-profile rollup labels have
    # no '/'; per-(profile, policy) splits ride the meta block).
    verify: Dict[str, List[Dict[str, Any]]] = {}
    for point in store.points(command="verify", series="pass_rate"):
        if "/" in point.label:
            continue
        verify.setdefault(point.label, []).append(
            {"rev": point.rev, "rate": point.value or 0.0,
             "cases": point.meta.get("cases"),
             "backend": point.backend})
    for rows in verify.values():
        rows.sort(key=lambda row: rev_index.get(row["rev"], 1 << 30))

    # Sampled IPC (+ the full-run reference when the same rev has one).
    full_ipc: Dict[Tuple[str, str], float] = {}
    for point in store.points(command="workload", series="ipc"):
        full_ipc[(point.rev, point.label)] = point.value or 0.0
    sampled = []
    for point in store.points(command="sample", series="stitched_ipc"):
        reference = full_ipc.get((point.rev, point.label))
        error = (abs((point.value or 0.0) - reference) / reference
                 if reference else None)
        sampled.append({
            "rev": point.rev, "label": point.label,
            "backend": point.backend, "ipc": point.value,
            "ci95": point.meta.get("ipc_ci95"),
            "coverage": point.meta.get("coverage"),
            "full_ipc": reference,
            "error": round(error, 5) if error is not None else None})
    sampled.sort(key=lambda row: (rev_index.get(row["rev"], 1 << 30),
                                  row["label"]))

    summary = store.summary()
    return {
        "revisions": revs,
        "calibration": [{"rev": rev, "kloops": calibration[rev]}
                        for rev in revs if rev in calibration],
        "backends": backends,
        "score_trend": score_trend,
        "speedup_trend": speedup_trend,
        "verdicts": {rev: verdicts[rev] for rev in verdict_revs},
        "verdict_deltas": deltas,
        "verify": verify,
        "sampled": sampled,
        "summary": summary,
    }


# ---------------------------------------------------------------------------
# SVG primitives
# ---------------------------------------------------------------------------

def _ticks(low: float, high: float, count: int = 4) -> List[float]:
    if high <= low:
        high = low + 1.0
    step = (high - low) / count
    return [low + step * index for index in range(count + 1)]


def _fmt(value: float) -> str:
    if value >= 100:
        return f"{value:,.0f}"
    if value >= 1:
        return f"{value:.2f}".rstrip("0").rstrip(".")
    return f"{value:.3f}".rstrip("0").rstrip(".")


def _line_chart(series: Sequence[Dict[str, Any]], xlabels: List[str],
                *, unit: str = "", y_zero: bool = False,
                error_key: Optional[str] = None,
                width: int = 640, height: int = 220) -> str:
    """A multi-series line/marker chart as an inline-SVG string.

    ``series`` rows are ``{"name", "color" (CSS var), "points":
    [(x_index, y, tooltip)], optional "errors": [(x_index, lo, hi)]}``.
    Lines are 2px, markers 8px with native ``<title>`` tooltips, the
    grid is hairline, and each series gets a direct label at its last
    point (the legend is rendered in HTML above the chart).
    """
    pad_left, pad_right, pad_top, pad_bottom = 56, 76, 12, 30
    plot_w = width - pad_left - pad_right
    plot_h = height - pad_top - pad_bottom
    values = [y for row in series for (_x, y, _t) in row["points"]]
    if error_key:
        for row in series:
            for (_x, low, high) in row.get("errors", []):
                values.extend([low, high])
    if not values:
        return "<p class='empty'>no data points yet</p>"
    low, high = min(values), max(values)
    if y_zero:
        low = min(0.0, low)
    span = (high - low) or 1.0
    low -= span * 0.08
    high += span * 0.08
    if y_zero:
        low = max(low, 0.0) if min(values) >= 0 else low

    def sx(index: float) -> float:
        slots = max(len(xlabels) - 1, 1)
        return pad_left + plot_w * (index / slots)

    def sy(value: float) -> float:
        return pad_top + plot_h * (1.0 - (value - low) / (high - low))

    parts = [f'<svg viewBox="0 0 {width} {height}" width="100%" '
             f'role="img" preserveAspectRatio="xMinYMin meet">']
    for tick in _ticks(low, high):
        y = sy(tick)
        parts.append(f'<line x1="{pad_left}" y1="{y:.1f}" '
                     f'x2="{width - pad_right}" y2="{y:.1f}" '
                     f'stroke="var(--grid)" stroke-width="1"/>')
        parts.append(f'<text x="{pad_left - 6}" y="{y + 4:.1f}" '
                     f'text-anchor="end">{_fmt(tick)}</text>')
    parts.append(f'<line x1="{pad_left}" y1="{pad_top + plot_h}" '
                 f'x2="{width - pad_right}" y2="{pad_top + plot_h}" '
                 f'stroke="var(--baseline)" stroke-width="1"/>')
    for index, label in enumerate(xlabels):
        parts.append(f'<text x="{sx(index):.1f}" '
                     f'y="{height - pad_bottom + 16}" '
                     f'text-anchor="middle">{html.escape(label)}</text>')
    if unit:
        parts.append(f'<text x="{pad_left - 6}" y="{pad_top - 1}" '
                     f'text-anchor="end">{html.escape(unit)}</text>')
    for row in series:
        color = row["color"]
        points = row["points"]
        for (x, point_low, point_high) in row.get("errors", []):
            parts.append(
                f'<line x1="{sx(x):.1f}" y1="{sy(point_low):.1f}" '
                f'x2="{sx(x):.1f}" y2="{sy(point_high):.1f}" '
                f'stroke="{color}" stroke-width="2" opacity="0.6"/>')
            for cap in (point_low, point_high):
                parts.append(
                    f'<line x1="{sx(x) - 4:.1f}" y1="{sy(cap):.1f}" '
                    f'x2="{sx(x) + 4:.1f}" y2="{sy(cap):.1f}" '
                    f'stroke="{color}" stroke-width="2" opacity="0.6"/>')
        if len(points) > 1:
            path = " ".join(f"{sx(x):.1f},{sy(y):.1f}"
                            for (x, y, _t) in points)
            parts.append(f'<polyline points="{path}" fill="none" '
                         f'stroke="{color}" stroke-width="2" '
                         f'stroke-linejoin="round"/>')
        for (x, y, tooltip) in points:
            parts.append(
                f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="4" '
                f'fill="{color}" stroke="var(--surface-1)" '
                f'stroke-width="2"><title>{html.escape(tooltip)}'
                f'</title></circle>')
        if points:
            x, y, _t = points[-1]
            parts.append(f'<text x="{sx(x) + 10:.1f}" y="{sy(y) + 4:.1f}" '
                         f'class="direct">{html.escape(row["name"])}'
                         f'</text>')
    parts.append("</svg>")
    return "".join(parts)


def _legend(entries: Sequence[Tuple[str, str]]) -> str:
    chips = "".join(
        f'<span><span class="chip" style="background:{color}"></span>'
        f'{html.escape(name)}</span>' for name, color in entries)
    return f'<div class="legend">{chips}</div>'


# ---------------------------------------------------------------------------
# sections
# ---------------------------------------------------------------------------

def _series_color(backend: str, backends: List[str]) -> str:
    return f"var(--series-{_backend_slot(backend, backends) + 1})"


def _section_scores(data: Dict[str, Any]) -> str:
    revs = data["revisions"]
    backends = data["backends"]
    rev_index = {rev: i for i, rev in enumerate(revs)}
    series = []
    for backend in backends:
        color = _series_color(backend, backends)
        points = [(rev_index[row["rev"]], row["score"],
                   f"{backend} @ {row['rev']}: {row['score']} x host")
                  for row in data["score_trend"].get(backend, [])
                  if row["rev"] in rev_index]
        series.append({"name": backend, "color": color, "points": points})
    legend = _legend([(backend, _series_color(backend, backends))
                      for backend in backends]) if len(backends) > 1 else ""
    chart = _line_chart(series, revs, unit="score")
    return (
        "<section><h2>Normalized cycles/sec by backend</h2>"
        "<p class='caption'>Geomean calibration-normalized score "
        "(simulated cycles/sec &divide; host kloops/sec) over the "
        "committed bench snapshots &mdash; the trend the &gt;10% bench "
        "gate audits point-by-point.</p>"
        f"{legend}{chart}</section>")


def _section_speedup(data: Dict[str, Any]) -> str:
    revs = data["revisions"]
    rev_index = {rev: i for i, rev in enumerate(revs)}
    rows = [row for row in data["speedup_trend"]
            if row["rev"] in rev_index]
    points = [(rev_index[row["rev"]], row["speedup"],
               f"{row['rev']}: {row['speedup']}x vs cycle")
              for row in rows]
    chart = _line_chart(
        [{"name": "fast/cycle", "color": "var(--series-2)",
          "points": points}], revs, unit="x", y_zero=True)
    return (
        "<section><h2>Backend speedup</h2>"
        "<p class='caption'>Geomean fast-backend speedup over the "
        "cycle core, from bench rows that pair within one snapshot "
        "(same benchmark, policy, budget, and machine spec).</p>"
        f"{chart}</section>")


def _verdict_cell(text: str) -> str:
    if text == "closed":
        return '<td><span class="verdict-closed">&#10003; closed</span></td>'
    if text == "LEAKED":
        return ('<td><span class="verdict-leaked">&#10007; LEAKED</span>'
                "</td>")
    return f"<td class='empty'>{html.escape(text)}</td>"


def _section_verdicts(data: Dict[str, Any]) -> str:
    verdicts = data["verdicts"]
    if not verdicts:
        return ("<section><h2>Security verdicts</h2>"
                "<p class='empty'>no matrix or attack payloads ingested "
                "yet</p></section>")
    latest = list(verdicts)[-1]
    cells = verdicts[latest]
    attacks, policies = [], []
    for label in cells:
        attack, _, policy = label.rpartition("/")
        if attack not in attacks:
            attacks.append(attack)
        if policy not in policies:
            policies.append(policy)
    head = "".join(f"<th>{html.escape(p)}</th>" for p in policies)
    body = []
    for attack in attacks:
        row = "".join(
            _verdict_cell(cells.get(f"{attack}/{policy}", "&mdash;"))
            for policy in policies)
        body.append(f"<tr><td>{html.escape(attack)}</td>{row}</tr>")
    table = (f"<table><thead><tr><th>attack @ {html.escape(latest)}"
             f"</th>{head}</tr></thead><tbody>{''.join(body)}</tbody>"
             "</table>")
    deltas = []
    for delta in data["verdict_deltas"]:
        arrow = f"{html.escape(delta['from'])} &rarr; " \
                f"{html.escape(delta['to'])}"
        if not delta["changed"]:
            deltas.append(f"<li class='delta-none'>{arrow}: no verdict "
                          "changes</li>")
        else:
            changes = "; ".join(
                f"<code>{html.escape(c['cell'])}</code> "
                f"{html.escape(c['from'])} &rarr; {html.escape(c['to'])}"
                for c in delta["changed"])
            deltas.append(f"<li>{arrow}: {changes}</li>")
    delta_html = (f"<ul>{''.join(deltas)}</ul>" if deltas else
                  "<p class='empty'>only one revision carries verdicts "
                  "so far</p>")
    return (
        "<section><h2>Security verdicts</h2>"
        "<p class='caption'>The leak matrix at the newest ingested "
        "revision, and every cell that changed between adjacent "
        "revisions &mdash; the reproduction's claim is that this list "
        "stays empty while the performance trends move.</p>"
        f"{table}<h2 style='margin-top:14px'>Deltas</h2>{delta_html}"
        "</section>")


def _section_verify(data: Dict[str, Any]) -> str:
    revs = data["revisions"]
    rev_index = {rev: i for i, rev in enumerate(revs)}
    profiles = sorted(data["verify"])
    if not profiles:
        return ("<section><h2>Verify pass-rate by profile</h2>"
                "<p class='empty'>no verify payloads ingested yet</p>"
                "</section>")
    series = []
    for index, profile in enumerate(profiles):
        color = f"var(--series-{min(index, 2) + 1})"
        points = [(rev_index[row["rev"]], row["rate"],
                   f"{profile} @ {row['rev']}: "
                   f"{row['rate']:.1%} of {row['cases']} cases")
                  for row in data["verify"][profile]
                  if row["rev"] in rev_index]
        series.append({"name": profile, "color": color, "points": points})
    legend = _legend([(row["name"], row["color"]) for row in series]) \
        if len(series) > 1 else ""
    chart = _line_chart(series, revs, unit="pass rate", y_zero=True)
    return (
        "<section><h2>Verify pass-rate by profile</h2>"
        "<p class='caption'>Differential-verification pass rate "
        "(oracle + SafeSpec invariants) per fuzz profile.</p>"
        f"{legend}{chart}</section>")


def _section_sampled(data: Dict[str, Any]) -> str:
    revs = data["revisions"]
    rev_index = {rev: i for i, rev in enumerate(revs)}
    rows = data["sampled"]
    if not rows:
        return ("<section><h2>Sampled IPC</h2>"
                "<p class='empty'>no sample payloads ingested yet</p>"
                "</section>")
    labels = []
    for row in rows:
        if row["label"] not in labels:
            labels.append(row["label"])
    series = []
    for index, label in enumerate(labels):
        color = f"var(--series-{min(index, 2) + 1})"
        points, errors = [], []
        for row in rows:
            if row["label"] != label or row["rev"] not in rev_index:
                continue
            x = rev_index[row["rev"]]
            tip = f"{label} @ {row['rev']}: stitched {row['ipc']:.4f}"
            if row["ci95"]:
                tip += f" ± {row['ci95']:.4f}"
                errors.append((x, row["ipc"] - row["ci95"],
                               row["ipc"] + row["ci95"]))
            if row["error"] is not None:
                tip += (f"; full {row['full_ipc']:.4f} "
                        f"(err {row['error']:.2%})")
            points.append((x, row["ipc"], tip))
        series.append({"name": label, "color": color, "points": points,
                       "errors": errors})
    legend = _legend([(row["name"], row["color"]) for row in series]) \
        if len(series) > 1 else ""
    chart = _line_chart(series, revs, unit="IPC", error_key="errors")

    def _row_html(row: Dict[str, Any]) -> str:
        ci = "&plusmn;{:.4f}".format(row["ci95"]) if row["ci95"] \
            else "&mdash;"
        err = "{:.2%}".format(row["error"]) \
            if row["error"] is not None else "&mdash;"
        return ("<tr><td>{}</td><td>{}</td><td>{}</td>"
                "<td class='num'>{:.4f}</td><td class='num'>{}</td>"
                "<td class='num'>{}</td></tr>").format(
                    html.escape(row["rev"]), html.escape(row["label"]),
                    html.escape(row["backend"]), row["ipc"], ci, err)

    table_rows = "".join(_row_html(row) for row in rows)
    table = ("<table><thead><tr><th>rev</th><th>workload</th>"
             "<th>backend</th><th class='num'>stitched IPC</th>"
             "<th class='num'>95% CI</th><th class='num'>vs full</th>"
             "</tr></thead><tbody>" + table_rows + "</tbody></table>")
    return (
        "<section><h2>Sampled IPC</h2>"
        "<p class='caption'>SimPoint-style stitched IPC estimates with "
        "95% confidence bars; the error column compares against a "
        "full run ingested at the same revision.</p>"
        f"{legend}{chart}{table}</section>")


def _section_revisions(data: Dict[str, Any]) -> str:
    rows = []
    for entry in data["summary"]["revisions"]:
        commands = ", ".join(f"{name}&times;{count}" for name, count
                             in sorted(entry["commands"].items()))
        rows.append(f"<tr><td><code>{html.escape(entry['rev'])}</code>"
                    f"</td><td class='num'>{entry['points']}</td>"
                    f"<td>{commands}</td></tr>")
    return (
        "<section><h2>Ingested revisions</h2>"
        "<table><thead><tr><th>rev</th><th class='num'>points</th>"
        "<th>commands</th></tr></thead><tbody>"
        + "".join(rows) + "</tbody></table></section>")


# ---------------------------------------------------------------------------
# the document
# ---------------------------------------------------------------------------

def render_dashboard(store: TrajectoryStore,
                     title: str = "SafeSpec reproduction telemetry"
                     ) -> str:
    """The dashboard HTML for ``store``'s current contents."""
    data = collect_dashboard_data(store)
    summary = data["summary"]
    sections = [
        _section_scores(data),
        _section_speedup(data),
        _section_verdicts(data),
        _section_verify(data),
        _section_sampled(data),
        _section_revisions(data),
    ]
    embedded = html.escape(json.dumps(data, indent=1, sort_keys=True),
                           quote=False)
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8">\n'
        '<meta name="viewport" content="width=device-width, '
        'initial-scale=1">\n'
        f"<title>{html.escape(title)}</title>\n"
        f"<style>{_CSS}</style>\n</head>\n<body>\n<main>\n"
        f"<h1>{html.escape(title)}</h1>\n"
        f"<p class='subtitle'>{summary['points']} points across "
        f"{len(data['revisions'])} revisions, rebuilt offline from "
        f"{summary['sources']} committed artifacts &mdash; no network "
        "fetches.</p>\n"
        + "\n".join(sections)
        + "\n<footer>Data embedded below for audit; the table view of "
        "every chart.</footer>\n"
        '<script type="application/json" id="telemetry-data">\n'
        f"{embedded}\n</script>\n</main>\n</body>\n</html>\n")
