"""repro.telemetry — longitudinal perf/security trajectory telemetry.

The observability layer the rest of the stack reports into: every
artifact the repo emits (``BENCH_<rev>.json`` snapshots, ``verify`` /
``matrix`` / ``sample`` / ``workload`` CLI JSON envelopes, a server's
``/v1/stats``) ingests into one SQLite :class:`TrajectoryStore`, and
:func:`render_dashboard` turns the store into a single self-contained
offline HTML dashboard.

Three entry points share the machinery:

* :class:`Telemetry` (via ``Session.telemetry()``) for programmatic use;
* ``repro telemetry ingest|render|show`` on the command line;
* the ``telemetry-smoke`` CI job, which rebuilds the dashboard from the
  committed artifacts on every push.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.telemetry.ingest import (IngestReport, ingest_file,
                                    ingest_payload)
from repro.telemetry.render import collect_dashboard_data, render_dashboard
from repro.telemetry.store import (TELEMETRY_SCHEMA_VERSION,
                                   TrajectoryPoint, TrajectoryStore,
                                   default_telemetry_db)

__all__ = [
    "TELEMETRY_SCHEMA_VERSION",
    "IngestReport",
    "Telemetry",
    "TrajectoryPoint",
    "TrajectoryStore",
    "collect_dashboard_data",
    "default_telemetry_db",
    "ingest_file",
    "ingest_payload",
    "render_dashboard",
]


class Telemetry:
    """Facade over one trajectory database.

    Owns a :class:`TrajectoryStore` and exposes the full loop —
    ingest artifacts, inspect the corpus, render the dashboard —
    without touching the lower-level modules.  Usable as a context
    manager; ``Session.telemetry()`` constructs one.
    """

    def __init__(self, db: Union[str, Path, None] = None) -> None:
        self.store = TrajectoryStore(db)

    # -- ingest ------------------------------------------------------------

    def ingest(self, payload: Any, source: str = "<memory>",
               rev: Optional[str] = None) -> IngestReport:
        """Ingest one already-parsed payload (dict)."""
        return ingest_payload(self.store, payload, source=source,
                              default_rev=rev)

    def ingest_file(self, path: Union[str, Path],
                    rev: Optional[str] = None) -> IngestReport:
        """Ingest one JSON artifact from disk; never raises."""
        return ingest_file(self.store, str(path), default_rev=rev)

    def ingest_files(self, paths: List[Union[str, Path]],
                     rev: Optional[str] = None) -> List[IngestReport]:
        return [self.ingest_file(path, rev=rev) for path in paths]

    # -- inspect / render --------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        return self.store.summary()

    def data(self) -> Dict[str, Any]:
        """The dashboard's full data tree (what the HTML embeds)."""
        return collect_dashboard_data(self.store)

    def render(self, output: Union[str, Path, None] = None,
               title: str = "SafeSpec reproduction telemetry") -> str:
        """Render the dashboard; write it to ``output`` when given."""
        page = render_dashboard(self.store, title=title)
        if output is not None:
            Path(output).write_text(page, encoding="utf-8")
        return page

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self.store.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
