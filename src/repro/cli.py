"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``attack <name|all> [--policy ...] [--secret N]`` — run attack PoCs;
  the exit code counts protected-policy runs that still leaked.
* ``matrix`` — Tables III/IV: every attack under every policy.
* ``workload <name|suite> [--policy ...] [--instructions N]`` — run the
  synthetic suite and print the per-run metrics.
* ``figures [--benchmarks a,b,...] [--instructions N]`` — regenerate the
  performance figures (6-9, 11-16) as text tables or machine-readable
  JSON (``--format json``).
* ``table5`` — the hardware-overhead table.
* ``asm <file>`` — assemble a text program and print its disassembly.

``matrix``, ``workload`` and ``figures`` submit their simulations
through :mod:`repro.exec`: ``--jobs N`` fans them out over N worker
processes, and completed runs are reused from the persistent result
cache (``--cache-dir``, disable with ``--no-cache``) across invocations.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.analysis.experiment import FIGURE_POLICIES, ExperimentRunner
from repro.analysis.report import (render_figure_series, render_ipc_figure,
                                   render_sizing_figure, render_two_series)
from repro.attacks import ALL_ATTACKS, run_attack_by_name, security_matrix
from repro.attacks.runner import expected_closed, render_matrix
from repro.core.policy import CommitPolicy
from repro.errors import ReproError
from repro.exec.cache import NullCache, ResultCache
from repro.exec.executor import make_executor, stderr_progress
from repro.exec.job import SCHEMA_VERSION, workload_job
from repro.hwmodel.overhead import render_table5
from repro.workloads import suite_names

_POLICIES = {p.value: p for p in CommitPolicy}

_SIZING_FIGURES = [("6", "shadow_icache"), ("7", "shadow_dcache"),
                   ("8", "shadow_itlb"), ("9", "shadow_dtlb")]


def _parse_policy(value: str) -> CommitPolicy:
    if value not in _POLICIES:
        raise argparse.ArgumentTypeError(
            f"unknown policy {value!r}; choose from {sorted(_POLICIES)}")
    return _POLICIES[value]


def _add_exec_options(parser: argparse.ArgumentParser) -> None:
    """Executor/cache flags shared by the simulation-batch commands."""
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the simulation batch "
                             "(default: 1, serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not update the on-disk "
                             "result cache")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result cache location (default: "
                             "$REPRO_CACHE_DIR or ~/.cache/repro)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SafeSpec (DAC 2019) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    attack = sub.add_parser("attack", help="run one attack PoC (or all)")
    attack.add_argument("name", choices=list(ALL_ATTACKS) + ["all"])
    attack.add_argument("--policy", type=_parse_policy,
                        action="append", default=None,
                        help="baseline / wfb / wfc (repeatable; "
                             "default: all three)")
    attack.add_argument("--secret", type=int, default=42)

    matrix = sub.add_parser("matrix",
                            help="run every attack under every policy "
                                 "(Tables III & IV)")
    matrix.add_argument("--format", choices=["text", "json"],
                        default="text")
    _add_exec_options(matrix)

    workload = sub.add_parser("workload",
                              help="run a synthetic benchmark")
    workload.add_argument("name", help="benchmark name or 'suite'")
    workload.add_argument("--policy", type=_parse_policy,
                          default=CommitPolicy.BASELINE)
    workload.add_argument("--instructions", type=int, default=10_000)
    workload.add_argument("--format", choices=["text", "json"],
                          default="text")
    _add_exec_options(workload)

    figures = sub.add_parser("figures",
                             help="regenerate the performance figures")
    figures.add_argument("--benchmarks", default=None,
                         help="comma-separated subset (default: full "
                              "suite)")
    figures.add_argument("--instructions", type=int, default=8_000)
    figures.add_argument("--format", choices=["text", "json"],
                         default="text")
    _add_exec_options(figures)

    sub.add_parser("table5", help="hardware overhead table (Table V)")

    asm = sub.add_parser("asm", help="assemble and disassemble a program")
    asm.add_argument("file", help="assembly source file ('-' for stdin)")

    return parser


# ---------------------------------------------------------------------------
# executor wiring
# ---------------------------------------------------------------------------

def _make_cache(args: argparse.Namespace):
    if args.no_cache:
        return NullCache()
    return ResultCache(args.cache_dir)


def _make_executor(args: argparse.Namespace, cache):
    progress = stderr_progress if args.jobs > 1 else None
    return make_executor(workers=args.jobs, cache=cache, progress=progress)


def _report_cache(cache) -> None:
    print(cache.describe(), file=sys.stderr)


# ---------------------------------------------------------------------------
# command implementations
# ---------------------------------------------------------------------------

def _cmd_attack(args: argparse.Namespace) -> int:
    policies = args.policy or [CommitPolicy.BASELINE, CommitPolicy.WFB,
                               CommitPolicy.WFC]
    names = list(ALL_ATTACKS) if args.name == "all" else [args.name]
    failures = 0
    for name in names:
        for policy in policies:
            result = run_attack_by_name(name, policy, args.secret)
            print(result)
            if result.success and expected_closed(name, policy):
                # A leak under a policy the paper says closes this
                # attack is a reproduction failure; baseline leaks (and
                # WFB's expected Meltdown leak) are the vulnerable
                # behaviour being reproduced.
                failures += 1
    return failures


def _cmd_matrix(args: argparse.Namespace) -> int:
    cache = _make_cache(args)
    matrix = security_matrix(executor=_make_executor(args, cache))
    if args.format == "json":
        payload = {
            "schema": SCHEMA_VERSION,
            "matrix": {
                attack: {policy: {"closed": result.closed,
                                  "leaked": result.leaked}
                         for policy, result in row.items()}
                for attack, row in matrix.items()},
        }
        json.dump(payload, sys.stdout, indent=2)
        print()
    else:
        print(render_matrix(matrix))
    _report_cache(cache)
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    names = suite_names() if args.name == "suite" else [args.name]
    cache = _make_cache(args)
    executor = _make_executor(args, cache)
    jobs = [workload_job(name, args.policy,
                         instructions=args.instructions)
            for name in names]
    results = executor.run(jobs)
    if args.format == "json":
        payload = {
            "schema": SCHEMA_VERSION,
            "policy": args.policy.value,
            "instructions": args.instructions,
            "runs": [{
                "benchmark": run.target,
                "ipc": run.ipc,
                "dcache_read_miss_rate": run.dcache_read_miss_rate,
                "icache_miss_rate": run.icache_miss_rate,
                "cycles": run.cycles,
                "cached": run.from_cache,
            } for run in results],
        }
        json.dump(payload, sys.stdout, indent=2)
        print()
    else:
        header = (f"{'benchmark':10s} {'IPC':>7s} {'d-miss':>7s} "
                  f"{'i-miss':>7s} {'cycles':>9s}")
        print(header)
        print("-" * len(header))
        for run in results:
            print(f"{run.target:10s} {run.ipc:7.3f} "
                  f"{run.dcache_read_miss_rate:7.3f} "
                  f"{run.icache_miss_rate:7.3f} {run.cycles:9d}")
    _report_cache(cache)
    return 0


def _figures_data(runner: ExperimentRunner) -> Dict[str, Dict[str, object]]:
    """Every figure's series, keyed by figure number.

    The one source both output formats render from, so ``--format json``
    exports exactly the series the text tables show.
    """
    wfc, wfb = CommitPolicy.WFC, CommitPolicy.WFB
    base = CommitPolicy.BASELINE
    figures: Dict[str, Dict[str, object]] = {}
    for figure_id, structure in _SIZING_FIGURES:
        figures[figure_id] = {
            "title": f"{structure} size covering 99.99% of cycles",
            "structure": structure,
            "series": {"wfc": runner.shadow_sizing(structure, wfc),
                       "wfb": runner.shadow_sizing(structure, wfb)},
        }
    figures["11"] = {
        "title": "IPC normalized to the insecure baseline",
        "series": {"wfc": runner.normalized_ipc(wfc)},
    }
    figures["12"] = {
        "title": "d-cache read miss rate",
        "series": {"wfc": runner.dcache_miss_rates(wfc),
                   "baseline": runner.dcache_miss_rates(base)},
    }
    figures["13"] = {
        "title": "hits on shadow d-cache",
        "series": {"wfc": runner.shadow_dcache_hits(wfc)},
    }
    figures["14"] = {
        "title": "i-cache miss rate",
        "series": {"wfc": runner.icache_miss_rates(wfc),
                   "baseline": runner.icache_miss_rates(base)},
    }
    figures["15"] = {
        "title": "hits on shadow i-cache",
        "series": {"wfc": runner.shadow_icache_hits(wfc)},
    }
    figures["16"] = {
        "title": "commit rate of shadow state",
        "series": {
            "shadow_icache": runner.shadow_commit_rates("shadow_icache",
                                                        wfc),
            "shadow_dcache": runner.shadow_commit_rates("shadow_dcache",
                                                        wfc)},
    }
    return figures


def _render_figures_text(figures: Dict[str, Dict[str, object]]) -> str:
    blocks = []
    for figure_id, _structure in _SIZING_FIGURES:
        data = figures[figure_id]
        blocks.append(render_sizing_figure(
            figure_id, data["structure"],
            data["series"]["wfc"], data["series"]["wfb"]))
    def heading(figure_id: str) -> str:
        return f"Figure {figure_id}: {figures[figure_id]['title']}"

    blocks.append(render_ipc_figure(figures["11"]["series"]["wfc"]))
    blocks.append(render_two_series(
        heading("12"),
        "WFC", figures["12"]["series"]["wfc"],
        "baseline", figures["12"]["series"]["baseline"]))
    blocks.append(render_figure_series(
        heading("13"), figures["13"]["series"]["wfc"], scale_max=1.0))
    blocks.append(render_two_series(
        heading("14"),
        "WFC", figures["14"]["series"]["wfc"],
        "baseline", figures["14"]["series"]["baseline"]))
    blocks.append(render_figure_series(
        heading("15"), figures["15"]["series"]["wfc"], scale_max=1.0))
    blocks.append(render_two_series(
        heading("16"),
        "i-cache", figures["16"]["series"]["shadow_icache"],
        "d-cache", figures["16"]["series"]["shadow_dcache"]))
    return "\n\n".join(blocks)


def _cmd_figures(args: argparse.Namespace) -> int:
    benchmarks = (args.benchmarks.split(",") if args.benchmarks
                  else None)
    cache = _make_cache(args)
    runner = ExperimentRunner(benchmarks=benchmarks,
                              instructions=args.instructions,
                              executor=_make_executor(args, cache))
    # One batch: a parallel executor sees the whole sweep at once.
    runner.run_all(FIGURE_POLICIES)
    figures = _figures_data(runner)
    if args.format == "json":
        payload = {
            "schema": SCHEMA_VERSION,
            "instructions": args.instructions,
            "benchmarks": runner.benchmarks,
            "cache": {"hits": cache.hits, "misses": cache.misses},
            "figures": figures,
        }
        json.dump(payload, sys.stdout, indent=2)
        print()
    else:
        print(_render_figures_text(figures))
    _report_cache(cache)
    return 0


def _cmd_table5(_args: argparse.Namespace) -> int:
    print(render_table5())
    return 0


def _cmd_asm(args: argparse.Namespace) -> int:
    from repro.isa.assembler import assemble

    if args.file == "-":
        source = sys.stdin.read()
    else:
        with open(args.file) as handle:
            source = handle.read()
    program = assemble(source)
    print(program.disassemble())
    return 0


_COMMANDS = {
    "attack": _cmd_attack,
    "matrix": _cmd_matrix,
    "workload": _cmd_workload,
    "figures": _cmd_figures,
    "table5": _cmd_table5,
    "asm": _cmd_asm,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
