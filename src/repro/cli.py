"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``attack <name|all> [--policy ...] [--secret N]`` — run attack PoCs;
  the exit code counts protected-policy runs that still leaked.
* ``matrix`` — Tables III/IV: every attack under every policy.
* ``workload <name|suite> [--policy ...] [--instructions N]`` — run the
  synthetic suite and print the per-run metrics (``run`` is an alias
  whose name defaults to ``suite``).
* ``specs [name]`` — list the registered hardware presets, or show one
  spec's full tree, digest, and diff against the default machine.
* ``figures [--benchmarks a,b,...] [--instructions N]`` — regenerate the
  performance figures (6-9, 11-16) as text tables or machine-readable
  JSON (``--format json``).
* ``verify [--count N] [--seed N] [--profile NAME]`` — differentially
  verify fuzzed programs against the in-order reference oracle under
  every policy (``repro.verify``), checking the SafeSpec leakage
  invariants; the exit code counts failing cases, and a failing text
  run prints the seed plus a one-line repro command.  ``--backend
  fast`` holds the fast backend to the oracle, ``--diff-backends
  cycle,fast`` also cross-checks the backends against each other.
* ``sample <name> [--interval N] [--windows N]`` — checkpointed,
  SimPoint-style sampled simulation (``repro.sample``): fast-forward on
  the fast backend, measure a seeded selection of windows on the
  detailed backend in parallel, and stitch a whole-program IPC estimate
  with error bars.
* ``bench [--quick] [--backend cycle,fast]`` — time the simulator
  (``repro.bench``), emit a schema-versioned ``BENCH_<rev>.json`` and
  gate against the committed ``benchmarks/baseline.json`` (exit 1 on a
  >10% slowdown); with a non-cycle backend it also reports the
  fast-vs-cycle speedup (``--min-speedup X`` gates on it), and
  ``--sampled`` adds a sampled-vs-full wall-clock row.
* ``serve [--port N] [--workers N] [--store sqlite]`` — run the
  simulation service: an asyncio HTTP job server over a pool of worker
  processes and a shared result store (``repro.serve``).
* ``submit <payload> [--url URL] [--wait S]`` — post a submission
  payload (inline JSON, ``@file`` or ``-``) to a running server;
  ``--wait`` polls the batch to completion (exit code counts failures).
* ``status [key] [--batch ID] [--url URL]`` — server stats, one job's
  state, or a batch's states.
* ``cache stats|clear|gc`` — inspect or prune the result store, for
  both the directory cache and the shared SQLite store.
* ``telemetry ingest|render|show`` — the longitudinal trajectory store
  (``repro.telemetry``): ingest any artifact the repo emits (BENCH
  snapshots, ``--format json`` envelopes, ``/v1/stats`` bodies) into
  one SQLite database, then render a self-contained offline HTML
  dashboard of the perf/security trends across revisions.
* ``table5`` — the hardware-overhead table.
* ``asm <file>`` — assemble a text program and print its disassembly.

Every ``--format json`` subcommand emits the same envelope::

    {"schema_version": N, "rev": "<git rev>", "command": "<name>",
     "payload": {...}}

so consumers dispatch on ``command`` and version-gate on
``schema_version`` without knowing any payload's shape.

Every simulation-batch command (``attack``, ``matrix``, ``workload``,
``figures``, ``verify``, ``sample``) is a thin client of
:class:`repro.api.session.Session`:
``--jobs N`` fans the batch out over N worker processes, and completed
runs are reused from the persistent result cache (``--cache-dir``,
disable with ``--no-cache``) across invocations.  Attack and workload
name choices derive from the component registries
(:mod:`repro.api.registry`).

The simulation commands (and ``bench``) also take the hardware axis:
``--preset <name>`` starts from a registered
:class:`~repro.spec.MachineSpec` and ``--set key=value`` (repeatable)
derives dotted-path overrides, e.g.::

    repro run mcf --preset little-core --set core.rob_entries=96
    repro matrix --set safespec.sizing=performance
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.report import render_figures_text
from repro.api.registry import attack_names
from repro.api.scenario import Scenario
from repro.api.session import MATRIX_POLICIES, Session
from repro.attacks.runner import (attack_result_from_sim, expected_closed,
                                  render_matrix)
from repro.core.policy import CommitPolicy
from repro.errors import ReproError
from repro.exec.cache import STORE_KINDS, make_cache
from repro.exec.executor import stderr_progress
from repro.exec.job import SCHEMA_VERSION
from repro.hwmodel.overhead import render_table5
from repro.spec import (DEFAULT_SPEC, MachineSpec, derive_from_strings,
                        get_spec, spec_description, spec_names)
from repro.workloads import suite_names

_POLICIES = {p.value: p for p in CommitPolicy}


def _emit_json(command: str, payload: dict) -> None:
    """Print one ``--format json`` result in the uniform envelope.

    Every JSON-emitting subcommand goes through here, so the outer
    shape — ``schema_version`` (the result-store schema), ``rev`` (the
    working tree), ``command`` (the subcommand name) and ``payload``
    (the command-specific body) — is identical across the CLI.
    """
    from repro.bench.harness import git_revision

    json.dump({
        "schema_version": SCHEMA_VERSION,
        "rev": git_revision(),
        "command": command,
        "payload": payload,
    }, sys.stdout, indent=2)
    print()


def _parse_policy(value: str) -> CommitPolicy:
    if value not in _POLICIES:
        raise argparse.ArgumentTypeError(
            f"unknown policy {value!r}; choose from {sorted(_POLICIES)}")
    return _POLICIES[value]


def _add_exec_options(parser: argparse.ArgumentParser) -> None:
    """Session flags shared by the simulation-batch commands."""
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the simulation batch "
                             "(default: 1, serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not update the on-disk "
                             "result cache")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="result cache location (default: "
                             "$REPRO_CACHE_DIR or ~/.cache/repro)")
    parser.add_argument("--store", choices=STORE_KINDS, default=None,
                        help="result-store backend: dir (one JSON file "
                             "per result) or sqlite (the shared store "
                             "`repro serve` uses; default: $REPRO_STORE "
                             "or dir)")


def _add_spec_options(parser: argparse.ArgumentParser) -> None:
    """Hardware-shape flags shared by the simulation commands."""
    parser.add_argument("--preset", choices=spec_names(), default=None,
                        metavar="NAME",
                        help="start from a registered MachineSpec preset "
                             f"(see `repro specs`; e.g. {DEFAULT_SPEC})")
    parser.add_argument("--set", action="append", default=[],
                        metavar="KEY=VALUE", dest="set_overrides",
                        help="override one spec field by dotted path "
                             "(repeatable), e.g. --set core.rob_entries=96")


def _add_backend_option(parser: argparse.ArgumentParser,
                        plural: bool = False) -> None:
    """The execution-backend flag shared by the simulation commands."""
    from repro.backends import backend_names

    names = "/".join(backend_names())
    extra = " (comma-separated for several)" if plural else ""
    parser.add_argument("--backend", default="cycle", metavar="NAME",
                        help=f"execution backend: {names} "
                             f"(default: cycle){extra}")


def _resolve_spec(args: argparse.Namespace) -> Optional[MachineSpec]:
    """The MachineSpec the spec flags describe (None = legacy default).

    With neither ``--preset`` nor ``--set`` the command runs exactly
    the spec-less job it always has (same cache keys); ``--set`` alone
    derives from the default machine.
    """
    if args.preset is None and not args.set_overrides:
        return None
    spec = get_spec(args.preset) if args.preset else MachineSpec()
    if args.set_overrides:
        spec = derive_from_strings(spec, args.set_overrides)
    return spec


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SafeSpec (DAC 2019) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    attack = sub.add_parser("attack", help="run one attack PoC (or all)")
    attack.add_argument("name", choices=attack_names() + ["all"])
    attack.add_argument("--policy", type=_parse_policy,
                        action="append", default=None,
                        help="baseline / wfb / wfc (repeatable; "
                             "default: all three)")
    attack.add_argument("--secret", type=int, default=42)
    attack.add_argument("--format", choices=["text", "json"],
                        default="text")
    _add_exec_options(attack)
    _add_spec_options(attack)
    _add_backend_option(attack)

    matrix = sub.add_parser("matrix",
                            help="run every attack under every policy "
                                 "(Tables III & IV)")
    matrix.add_argument("--format", choices=["text", "json"],
                        default="text")
    _add_exec_options(matrix)
    _add_spec_options(matrix)
    _add_backend_option(matrix)

    # ``workload`` requires a name; ``run`` is the same command with the
    # name defaulting to the whole suite.
    for command, name_kwargs in (
            ("workload", {}),
            ("run", {"nargs": "?", "default": "suite"})):
        workload = sub.add_parser(
            command,
            help="run a synthetic benchmark" if command == "workload"
                 else "run benchmarks (alias of workload; defaults to "
                      "the whole suite)")
        workload.add_argument("name", help="benchmark name or 'suite'",
                              **name_kwargs)
        workload.add_argument("--policy", type=_parse_policy,
                              default=CommitPolicy.BASELINE)
        workload.add_argument("--instructions", type=int, default=10_000)
        workload.add_argument("--format", choices=["text", "json"],
                              default="text")
        _add_exec_options(workload)
        _add_spec_options(workload)
        _add_backend_option(workload)

    figures = sub.add_parser("figures",
                             help="regenerate the performance figures")
    figures.add_argument("--benchmarks", default=None,
                         help="comma-separated subset (default: full "
                              "suite)")
    figures.add_argument("--instructions", type=int, default=8_000)
    figures.add_argument("--format", choices=["text", "json"],
                         default="text")
    _add_exec_options(figures)
    _add_spec_options(figures)

    specs = sub.add_parser(
        "specs", help="list or show MachineSpec hardware presets")
    specs.add_argument("name", nargs="?", default=None,
                       help="preset to show in full (omit to list)")
    specs.add_argument("--set", action="append", default=[],
                       metavar="KEY=VALUE", dest="set_overrides",
                       help="preview dotted-path overrides applied to "
                            "the shown preset")
    specs.add_argument("--format", choices=["text", "json"],
                       default="text")

    verify = sub.add_parser(
        "verify",
        help="differentially verify fuzzed programs against the "
             "reference oracle (repro.verify)")
    verify.add_argument("--count", type=int, default=10, metavar="N",
                        help="number of fuzz seeds to run (default: 10)")
    verify.add_argument("--seed", type=int, default=0, metavar="N",
                        help="first fuzz seed (default: 0)")
    verify.add_argument("--profile", default="mixed", metavar="NAME",
                        help="fuzz profile (mixed/alu/memory/control/"
                             "faulty/call-ret; default: mixed)")
    verify.add_argument("--policy", type=_parse_policy,
                        action="append", default=None,
                        help="baseline / wfb / wfc (repeatable; "
                             "default: all three)")
    verify.add_argument("--instructions", type=int, default=20_000,
                        metavar="N",
                        help="per-case instruction budget")
    verify.add_argument("--format", choices=["text", "json"],
                        default="text")
    verify.add_argument("--diff-backends", default=None,
                        metavar="A,B",
                        help="cross-backend differential: run every case "
                             "on each named backend and compare (e.g. "
                             "cycle,fast); overrides --backend")
    _add_exec_options(verify)
    _add_spec_options(verify)
    _add_backend_option(verify)

    sample = sub.add_parser(
        "sample",
        help="checkpointed SimPoint-style sampled simulation of one "
             "long workload (repro.sample)")
    sample.add_argument("name", help="benchmark name (see `repro run`)")
    sample.add_argument("--policy", type=_parse_policy,
                        default=CommitPolicy.BASELINE,
                        help="baseline / wfb / wfc (default: baseline)")
    sample.add_argument("--instructions", type=int, default=1_000_000,
                        metavar="N",
                        help="total instruction budget the estimate "
                             "covers (default: 1000000)")
    sample.add_argument("--interval", type=int, default=None, metavar="N",
                        help="instructions per slice / checkpoint "
                             "spacing (default: 50000)")
    sample.add_argument("--warmup", type=int, default=None, metavar="N",
                        help="warmup instructions before each measured "
                             "window (default: 2000)")
    sample.add_argument("--windows", type=int, default=None, metavar="N",
                        help="how many slices to measure (default: 8)")
    sample.add_argument("--window", type=int, default=None, metavar="N",
                        help="measured instructions per window "
                             "(default: 10000)")
    sample.add_argument("--seed", type=int, default=0, metavar="N",
                        help="window-selection seed (default: 0)")
    sample.add_argument("--cold", action="store_true",
                        help="restore architectural state only (drop the "
                             "checkpoints' warm predictor/TLB/cache "
                             "state)")
    sample.add_argument("--ff-backend", default="fast", metavar="NAME",
                        help="fast-forward backend for the checkpoint "
                             "scan (default: fast)")
    sample.add_argument("--format", choices=["text", "json"],
                        default="text")
    _add_exec_options(sample)
    _add_spec_options(sample)
    _add_backend_option(sample)

    bench = sub.add_parser(
        "bench",
        help="time the simulator and gate against benchmarks/baseline.json")
    bench.add_argument("--quick", action="store_true",
                       help="the small CI spec set (matches the committed "
                            "baseline)")
    bench.add_argument("--warmup", type=int, default=1, metavar="N")
    bench.add_argument("--repeats", type=int, default=3, metavar="N")
    bench.add_argument("--output", default=None, metavar="PATH",
                       help="payload path (default: BENCH_<rev>.json)")
    bench.add_argument("--baseline", default="benchmarks/baseline.json",
                       metavar="PATH",
                       help="baseline payload to gate against")
    bench.add_argument("--no-compare", action="store_true",
                       help="emit the payload without gating")
    bench.add_argument("--threshold", type=float, default=0.10,
                       metavar="FRACTION",
                       help="slowdown fraction that fails the gate "
                            "(default: 0.10)")
    bench.add_argument("--update-baseline", action="store_true",
                       help="also write the payload over --baseline")
    bench.add_argument("--no-cache", action="store_true",
                       help="do not read/write the on-disk result cache "
                            "for accounting")
    bench.add_argument("--cache-dir", default=None, metavar="DIR")
    bench.add_argument("--min-speedup", type=float, default=None,
                       metavar="X",
                       help="fail unless the geomean non-cycle backend "
                            "speedup is at least X (e.g. 5)")
    bench.add_argument("--service", action="store_true",
                       help="also measure a served warm-vs-cold "
                            "round-trip per backend (repro.serve over a "
                            "temporary shared SQLite store)")
    bench.add_argument("--sampled", action="store_true",
                       help="also measure a sampled-vs-full wall-clock "
                            "pair for one long workload (repro.sample)")
    _add_spec_options(bench)
    _add_backend_option(bench, plural=True)

    serve = sub.add_parser(
        "serve",
        help="run the simulation service (HTTP job server over a "
             "shared result store)")
    serve.add_argument("--host", default=None, metavar="ADDR",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=None, metavar="N",
                       help="bind port (default: 8322; 0 picks an "
                            "ephemeral port)")
    serve.add_argument("--workers", type=int, default=2, metavar="N",
                       help="background simulation worker processes "
                            "(default: 2)")
    serve.add_argument("--store", choices=STORE_KINDS, default="sqlite",
                       help="result-store backend backing the service "
                            "(default: sqlite, the shared store)")
    serve.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="store location (default: $REPRO_CACHE_DIR "
                            "or ~/.cache/repro)")

    submit = sub.add_parser(
        "submit",
        help="submit a job payload to a running `repro serve` instance")
    submit.add_argument("payload",
                        help="submission JSON: an inline object, "
                             "@path/to/file.json, or '-' for stdin")
    submit.add_argument("--url", default=None, metavar="URL",
                        help="server base URL (default: $REPRO_SERVE_URL "
                             "or http://127.0.0.1:8322)")
    submit.add_argument("--wait", type=float, default=None, metavar="S",
                        help="poll until the batch completes (at most S "
                             "seconds); exit code counts failed jobs")
    submit.add_argument("--format", choices=["text", "json"],
                        default="text")

    status = sub.add_parser(
        "status",
        help="query a running `repro serve` instance (stats, a job, "
             "or a batch)")
    status.add_argument("job", nargs="?", default=None,
                        help="job key to show (omit for server stats)")
    status.add_argument("--batch", default=None, metavar="ID",
                        help="show one submission batch instead")
    status.add_argument("--url", default=None, metavar="URL",
                        help="server base URL (default: $REPRO_SERVE_URL "
                             "or http://127.0.0.1:8322)")
    status.add_argument("--wait", type=float, default=None, metavar="S",
                        help="long-poll a job/batch for up to S seconds")
    status.add_argument("--format", choices=["text", "json"],
                        default="text")

    cache = sub.add_parser(
        "cache",
        help="inspect or prune the result store (dir or sqlite)")
    cache.add_argument("action", choices=["stats", "clear", "gc"],
                       help="stats: corpus shape; clear: drop every "
                            "current-schema entry; gc: prune by "
                            "age/count/size")
    cache.add_argument("--store", choices=STORE_KINDS, default=None,
                       help="store backend (default: $REPRO_STORE or dir)")
    cache.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="store location (default: $REPRO_CACHE_DIR "
                            "or ~/.cache/repro)")
    cache.add_argument("--max-age-days", type=float, default=None,
                       metavar="D",
                       help="gc: drop entries unused for more than D days")
    cache.add_argument("--max-entries", type=int, default=None,
                       metavar="N",
                       help="gc: keep at most the N most recent entries")
    cache.add_argument("--max-bytes", type=int, default=None, metavar="B",
                       help="gc: keep the most recent entries within a "
                            "B-byte payload budget")
    cache.add_argument("--all-schemas", action="store_true",
                       help="gc: also drop entries from other schema "
                            "versions (sqlite store)")
    cache.add_argument("--format", choices=["text", "json"],
                       default="text")

    telemetry = sub.add_parser(
        "telemetry",
        help="longitudinal trajectory store + offline HTML dashboard "
             "(repro.telemetry)")
    telemetry_sub = telemetry.add_subparsers(dest="action", required=True)
    telemetry_ingest = telemetry_sub.add_parser(
        "ingest",
        help="normalize artifacts (BENCH_<rev>.json, --format json "
             "envelopes, /v1/stats bodies) into the trajectory store")
    telemetry_ingest.add_argument(
        "paths", nargs="+", metavar="PATH",
        help="JSON artifacts; malformed ones skip with a warning")
    telemetry_ingest.add_argument(
        "--rev", default=None, metavar="REV",
        help="revision for artifacts that do not carry one "
             "(default: the working tree)")
    telemetry_render = telemetry_sub.add_parser(
        "render",
        help="render the store as one self-contained offline HTML "
             "dashboard")
    telemetry_render.add_argument(
        "-o", "--output", default=None, metavar="PATH",
        help="output file (default: telemetry.html)")
    telemetry_render.add_argument(
        "--title", default="SafeSpec reproduction telemetry",
        metavar="TEXT")
    telemetry_show = telemetry_sub.add_parser(
        "show", help="summarize the trajectory store")
    for sub_parser in (telemetry_ingest, telemetry_render,
                       telemetry_show):
        sub_parser.add_argument(
            "--db", default=None, metavar="PATH",
            help="trajectory database (default: $REPRO_TELEMETRY_DB or "
                 "telemetry.sqlite in the cache dir)")
        sub_parser.add_argument("--format", choices=["text", "json"],
                                default="text")

    sub.add_parser("table5", help="hardware overhead table (Table V)")

    asm = sub.add_parser("asm", help="assemble and disassemble a program")
    asm.add_argument("file", help="assembly source file ('-' for stdin)")

    return parser


# ---------------------------------------------------------------------------
# session wiring
# ---------------------------------------------------------------------------

def _make_session(args: argparse.Namespace,
                  progress=None) -> Session:
    """The session the shared exec flags describe."""
    if progress is None:
        progress = stderr_progress if args.jobs > 1 else None
    return Session(jobs=args.jobs, cache=not args.no_cache,
                   cache_dir=args.cache_dir,
                   store=getattr(args, "store", None), progress=progress)


def _report_cache(session: Session) -> None:
    print(session.describe_cache(), file=sys.stderr)


# ---------------------------------------------------------------------------
# command implementations
# ---------------------------------------------------------------------------

def _cmd_attack(args: argparse.Namespace) -> int:
    policies = args.policy or list(MATRIX_POLICIES)
    names = attack_names() if args.name == "all" else [args.name]
    # A serial text run streams each verdict as it completes (the
    # executor reports in submission order); parallel runs keep the
    # stderr progress lines and print the ordered verdicts at the end.
    stream = args.format == "text" and args.jobs == 1
    if stream:
        session = _make_session(
            args, progress=lambda done, total, job, result:
            print(attack_result_from_sim(result)))
    else:
        session = _make_session(args)
    spec = _resolve_spec(args)
    scenarios = [Scenario.attack(name, policy, secret=args.secret,
                                 spec=spec, backend=args.backend)
                 for name in names for policy in policies]
    results = session.run(scenarios)
    failures = 0
    records = []
    for scenario, sim in zip(scenarios, results):
        result = attack_result_from_sim(sim)
        expected = expected_closed(scenario.target, scenario.policy)
        # A leak under a policy the paper says closes this attack is a
        # reproduction failure; baseline leaks (and WFB's expected
        # Meltdown leak) are the vulnerable behaviour being reproduced.
        unexpected = result.success and expected
        failures += unexpected
        if args.format == "text" and not stream:
            print(result)
        records.append({
            "attack": scenario.target,
            "policy": scenario.policy.value,
            "secret": result.secret,
            "leaked": result.leaked,
            "closed": result.closed,
            "expected_closed": expected,
            "unexpected_leak": unexpected,
            "cached": sim.from_cache,
        })
    if args.format == "json":
        _emit_json("attack", {"results": records, "failures": failures})
    _report_cache(session)
    return failures


def _cmd_matrix(args: argparse.Namespace) -> int:
    session = _make_session(args)
    matrix = session.matrix(spec=_resolve_spec(args),
                            backend=args.backend)
    if args.format == "json":
        _emit_json("matrix", {
            "backend": args.backend,
            "matrix": {
                attack: {policy: {"closed": result.closed,
                                  "leaked": result.leaked}
                         for policy, result in row.items()}
                for attack, row in matrix.items()},
        })
    else:
        print(render_matrix(matrix))
    _report_cache(session)
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    names = suite_names() if args.name == "suite" else [args.name]
    session = _make_session(args)
    spec = _resolve_spec(args)
    results = session.run(
        [Scenario.workload(name, args.policy,
                           instructions=args.instructions, spec=spec,
                           backend=args.backend)
         for name in names])
    if args.format == "json":
        _emit_json(args.command, {
            "policy": args.policy.value,
            "instructions": args.instructions,
            "backend": args.backend,
            "runs": [{
                "benchmark": run.target,
                "ipc": run.ipc,
                "dcache_read_miss_rate": run.dcache_read_miss_rate,
                "icache_miss_rate": run.icache_miss_rate,
                "cycles": run.cycles,
                "cached": run.from_cache,
            } for run in results],
        })
    else:
        header = (f"{'benchmark':10s} {'IPC':>7s} {'d-miss':>7s} "
                  f"{'i-miss':>7s} {'cycles':>9s}")
        print(header)
        print("-" * len(header))
        for run in results:
            print(f"{run.target:10s} {run.ipc:7.3f} "
                  f"{run.dcache_read_miss_rate:7.3f} "
                  f"{run.icache_miss_rate:7.3f} {run.cycles:9d}")
    _report_cache(session)
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    benchmarks = (args.benchmarks.split(",") if args.benchmarks
                  else None)
    session = _make_session(args)
    figures = session.figures(benchmarks=benchmarks,
                              instructions=args.instructions,
                              spec=_resolve_spec(args))
    if args.format == "json":
        _emit_json("figures", {
            "instructions": args.instructions,
            "benchmarks": benchmarks or suite_names(),
            "cache": {"hits": session.cache.hits,
                      "misses": session.cache.misses},
            "figures": figures,
        })
    else:
        print(render_figures_text(figures))
    _report_cache(session)
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify import fuzz_profile

    fuzz_profile(args.profile)      # unknown profiles fail before any run
    backend = args.diff_backends or args.backend
    session = _make_session(args)
    report = session.verify(
        count=args.count, seed=args.seed,
        policies=args.policy, profile=args.profile,
        instructions=args.instructions, spec=_resolve_spec(args),
        backend=backend)
    if args.format == "json":
        # report.to_payload() contributes fuzz_version and the verdicts.
        _emit_json("verify", {
            "profile": args.profile,
            "seed": args.seed,
            "count": args.count,
            "backend": backend,
            **report.to_payload(),
        })
    else:
        print(report.render_text())
        if not report.ok:
            # Failing text runs name the seed and hand back a one-line
            # repro command — no --format json round-trip needed.
            first = next(v for v in report.verdicts if not v.ok)
            flag = ("--diff-backends" if "," in first.backend
                    else "--backend")
            print(f"first failing seed: {first.seed}")
            print(f"reproduce: repro verify --seed {first.seed} "
                  f"--count 1 --profile {first.profile} "
                  f"--policy {first.policy.value} "
                  f"{flag} {first.backend} --format json")
    _report_cache(session)
    # Clamped: a raw count would wrap modulo 256 at process exit (256
    # failures would read as success).
    return min(report.failures, 255)


def _cmd_sample(args: argparse.Namespace) -> int:
    session = _make_session(args)
    report = session.sample(
        args.name, policy=args.policy, instructions=args.instructions,
        interval=args.interval, warmup=args.warmup,
        windows=args.windows, window=args.window, seed=args.seed,
        warm=not args.cold, spec=_resolve_spec(args),
        backend=args.backend, ff_backend=args.ff_backend)
    failed = len(report.failed_windows)
    if args.format == "json":
        _emit_json("sample", report.to_dict())
    else:
        print(report.render_text())
        if failed:
            # Failing text runs name the plan seed and hand back a
            # one-line repro command — no --format json round-trip.
            first = report.failed_windows[0]
            plan = report.plan
            print(f"first failing window: {first.index} "
                  f"(seed {plan.seed}, "
                  f"{first.halted_reason or 'unmeasured'})")
            print(f"reproduce: repro sample {args.name} "
                  f"--policy {report.policy.value} "
                  f"--instructions {report.total_instructions} "
                  f"--interval {plan.interval} --warmup {plan.warmup} "
                  f"--windows {plan.windows} --window {plan.window} "
                  f"--seed {plan.seed} --backend {report.backend} "
                  f"--format json")
    _report_cache(session)
    return min(failed, 255)


def _cmd_bench(args: argparse.Namespace) -> int:
    import os

    from repro.backends import BACKENDS
    from repro.bench import (BenchHarness, FULL_SPECS, QUICK_SPECS,
                             annotate_calibration_drift, backend_speedups,
                             compare_payloads, render_calibration_drift,
                             render_speedups, with_backend)
    from repro.bench.harness import dump_payload, load_payload
    from repro.exec.cache import NullCache, ResultCache

    cache = NullCache() if args.no_cache else ResultCache(args.cache_dir)
    harness = BenchHarness(warmup=args.warmup, repeats=args.repeats,
                           cache=cache)
    specs = QUICK_SPECS if args.quick else FULL_SPECS
    machine_spec = _resolve_spec(args)
    if machine_spec is not None:
        # Time the same workload set on the requested hardware shape.
        # The job keys change with the shape, so the comparator marks
        # baseline rows stale instead of gating across machines.
        import dataclasses

        specs = tuple(dataclasses.replace(s, machine_spec=machine_spec)
                      for s in specs)
    backends = [name.strip() for name in args.backend.split(",")
                if name.strip()]
    for name in backends:
        BACKENDS.entry(name)        # unknown backends fail before timing
    specs = tuple(spec for backend in backends
                  for spec in with_backend(specs, backend))

    def progress(done, total, spec, row):
        print(f"[{done}/{total}] {spec.name}: "
              f"{row['cycles_per_sec']:,.0f} cycles/s "
              f"(best of {args.repeats})", file=sys.stderr, flush=True)

    payload = harness.run(specs, progress=progress)
    if args.service:
        import tempfile

        from repro.bench.service import (render_service_rows,
                                         service_roundtrip)

        rows = []
        with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") \
                as store_dir:
            for backend in backends:
                rows.append(service_roundtrip(backend=backend,
                                              store_dir=store_dir))
        payload["service"] = rows
        print(render_service_rows(rows))
    if args.sampled:
        from repro.bench.sampled import (render_sampled_rows,
                                         sampled_roundtrip)

        sampled_rows = [sampled_roundtrip()]
        payload["sampled"] = sampled_rows
        print(render_sampled_rows(sampled_rows))
    baseline = (load_payload(args.baseline)
                if os.path.exists(args.baseline) else None)
    # Calibration drift guard: annotate BEFORE dumping so the flags
    # land in the written BENCH_<rev>.json and ride into telemetry.
    drift = annotate_calibration_drift(payload, baseline,
                                       threshold=args.threshold)
    if drift["checked"] and drift["drifted"]:
        print(f"warning: {render_calibration_drift(drift)}",
              file=sys.stderr)
    output = args.output or f"BENCH_{payload['rev']}.json"
    dump_payload(payload, output)
    print(f"wrote {output} "
          f"(calibration {payload['calibration']['kloops_per_sec']:,.0f} "
          f"kloops/s)", file=sys.stderr)
    # Fast-vs-cycle speedup: reported whenever a non-cycle backend was
    # timed; reference scores come from this run's cycle rows, or from
    # the committed baseline when only the fast backend was timed.
    speedups = backend_speedups(payload, baseline)
    speedup_failed = False
    if speedups["pairs"] or args.min_speedup is not None:
        print(render_speedups(speedups))
        if args.min_speedup is not None:
            geomean = speedups.get("geomean", 0.0)
            speedup_failed = geomean < args.min_speedup
            print(f"speedup gate (>= {args.min_speedup:.1f}x): "
                  f"{'FAIL' if speedup_failed else 'PASS'}")
    if args.update_baseline:
        dump_payload(payload, args.baseline)
        print(f"updated baseline {args.baseline}", file=sys.stderr)
        return 1 if speedup_failed else 0
    if args.no_compare:
        return 1 if speedup_failed else 0
    if baseline is None:
        print(f"no baseline at {args.baseline}; skipping the gate "
              f"(write one with --update-baseline)", file=sys.stderr)
        return 1 if speedup_failed else 0
    report = compare_payloads(payload, baseline,
                              threshold=args.threshold)
    print(report.render())
    return 0 if report.passed and not speedup_failed else 1


def _cmd_specs(args: argparse.Namespace) -> int:
    default = get_spec(DEFAULT_SPEC)
    if args.name is None:
        if args.set_overrides:
            print("error: --set requires a preset name to apply to",
                  file=sys.stderr)
            return 1
        if args.format == "json":
            _emit_json("specs", {
                "specs": [{"name": name,
                           "digest": get_spec(name).digest(),
                           "description": spec_description(name)}
                          for name in spec_names()],
            })
        else:
            header = f"{'preset':18s} {'digest':12s} description"
            print(header)
            print("-" * len(header))
            for name in spec_names():
                print(f"{name:18s} {get_spec(name).short_digest():12s} "
                      f"{spec_description(name)}")
        return 0
    spec = get_spec(args.name)
    if args.set_overrides:
        spec = derive_from_strings(spec, args.set_overrides)
    if args.format == "json":
        _emit_json("specs", {
            "name": args.name,
            "digest": spec.digest(),
            "description": spec_description(args.name),
            "overrides": list(args.set_overrides),
            "spec": spec.to_dict(),
        })
    else:
        print(f"{args.name}: {spec_description(args.name)}")
        print(f"digest: {spec.digest()}")
        print(json.dumps(spec.to_dict(), indent=2))
        delta = default.diff(spec)
        if delta:
            print(f"diff vs {DEFAULT_SPEC} (default -> this):")
            for line in delta.splitlines():
                print(f"  {line}")
        else:
            print(f"identical to the default ({DEFAULT_SPEC})")
    return 0


def _serve_url(args: argparse.Namespace) -> str:
    import os

    from repro.serve.server import DEFAULT_HOST, DEFAULT_PORT

    return (args.url or os.environ.get("REPRO_SERVE_URL")
            or f"http://{DEFAULT_HOST}:{DEFAULT_PORT}")


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.server import (DEFAULT_HOST, DEFAULT_PORT, JobService,
                                    run_server)

    host = args.host or DEFAULT_HOST
    port = args.port if args.port is not None else DEFAULT_PORT
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 1
    store = make_cache(args.store, args.cache_dir)
    service = JobService(store=store, workers=args.workers)
    location = getattr(store, "path", None) or getattr(
        store, "directory", "")

    def announce(server):
        print(f"repro serve: {server.url} "
              f"(schema v{SCHEMA_VERSION}, {args.workers} workers, "
              f"{args.store} store at {location})", file=sys.stderr,
              flush=True)

    run_server(service, host=host, port=port, on_start=announce)
    return 0


def _load_submission(raw: str) -> dict:
    """The submission payload a `repro submit` argument names."""
    if raw == "-":
        text = sys.stdin.read()
    elif raw.startswith("@"):
        with open(raw[1:]) as handle:
            text = handle.read()
    else:
        text = raw
    try:
        return json.loads(text)
    except ValueError as error:
        raise ReproError(
            f"submission payload is not valid JSON: {error}") from error


def _render_batch_text(state: dict) -> None:
    for job in state["jobs"]:
        line = (f"{job['key'][:12]}  {job['kind']}:{job['target']}"
                f"/{job['policy']}  {job['status']}")
        origin = job.get("origin") or job.get("source")
        if origin:
            line += f" ({origin})"
        if job.get("error"):
            line += f"  {job['error']}"
        print(line)


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeClient

    client = ServeClient(_serve_url(args))
    envelope = client.submit(_load_submission(args.payload))
    if args.wait is None:
        if args.format == "json":
            _emit_json("submit", envelope)
        else:
            print(f"batch {envelope['batch']}: "
                  f"{len(envelope['jobs'])} jobs submitted")
            _render_batch_text(envelope)
        return 0
    final = client.wait_batch(envelope["batch"], timeout=args.wait)
    if args.format == "json":
        _emit_json("submit", final)
    else:
        print(f"batch {final['batch']}: {final['completed']}/"
              f"{final['total']} done, {final['failed']} failed")
        _render_batch_text(final)
    return min(final["failed"], 255)


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeClient

    client = ServeClient(_serve_url(args))
    if args.job is not None and args.batch is not None:
        print("error: pass a job key or --batch, not both",
              file=sys.stderr)
        return 1
    if args.job is not None:
        payload = client.job(args.job, wait=args.wait)
        failed = payload["status"] == "failed"
    elif args.batch is not None:
        payload = client.batch(args.batch, wait=args.wait)
        failed = payload["failed"] > 0
    else:
        payload = client.stats()
        failed = False
    if args.format == "json":
        _emit_json("status", payload)
    elif args.job is not None:
        print(f"{payload['key']}  {payload['kind']}:{payload['target']}"
              f"/{payload['policy']}  {payload['status']}")
        if payload.get("error"):
            print(f"error: {payload['error']}")
    elif args.batch is not None:
        print(f"batch {payload['batch']}: {payload['completed']}/"
              f"{payload['total']} done, {payload['failed']} failed")
        _render_batch_text(payload)
    else:
        jobs = payload["jobs"]
        print(f"serve up {payload['uptime_s']}s, schema "
              f"v{payload['schema']}, {payload['workers']} workers")
        print(f"jobs: {jobs['known']} known, {jobs['executed']} executed, "
              f"{jobs['store_hits']} store hits, {jobs['failed']} failed")
        store = payload["store"]
        print(f"store [{store.get('backend')}] {store.get('location')}: "
              f"{store.get('entries', 0)} entries, "
              f"{store.get('payload_bytes', 0)} payload bytes")
    return 1 if failed else 0


def _cmd_cache(args: argparse.Namespace) -> int:
    store = make_cache(args.store, args.cache_dir)
    if args.action == "stats":
        payload = store.stats()
        if args.format == "json":
            _emit_json("cache", payload)
        else:
            print(f"[{payload['backend']}] {payload['location']} "
                  f"(schema v{payload['schema']})")
            print(f"entries: {payload['entries']}, payload bytes: "
                  f"{payload['payload_bytes']}")
            for key in ("by_kind", "schema_versions"):
                if payload.get(key):
                    rows = ", ".join(f"{name}={count}" for name, count
                                     in payload[key].items())
                    print(f"{key.replace('_', ' ')}: {rows}")
        return 0
    if args.action == "clear":
        removed = store.clear()
    else:
        if (args.max_age_days is None and args.max_entries is None
                and args.max_bytes is None and not args.all_schemas):
            print("error: gc needs at least one of --max-age-days, "
                  "--max-entries, --max-bytes, --all-schemas",
                  file=sys.stderr)
            return 1
        removed = store.gc(max_age_days=args.max_age_days,
                           max_entries=args.max_entries,
                           max_bytes=args.max_bytes,
                           all_schemas=args.all_schemas)
    if args.format == "json":
        _emit_json("cache", {"action": args.action, "removed": removed,
                             "remaining": len(store)})
    else:
        print(f"{args.action}: removed {removed} entries "
              f"({len(store)} remain)")
    return 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    from repro.telemetry import Telemetry

    with Telemetry(args.db) as telemetry:
        if args.action == "ingest":
            reports = [telemetry.ingest_file(path, rev=args.rev)
                       for path in args.paths]
            ingested = [r for r in reports if not r.skipped]
            if args.format == "json":
                _emit_json("telemetry", {
                    "action": "ingest",
                    "db": str(telemetry.store.path),
                    "ingested": len(ingested),
                    "skipped": len(reports) - len(ingested),
                    "points": sum(r.points for r in reports),
                    "reports": [r.to_dict() for r in reports],
                })
            else:
                for report in reports:
                    status = (report.kind if not report.skipped
                              else "skipped")
                    line = (f"{report.source}: {status}"
                            + (f" rev {report.rev}" if report.rev else "")
                            + (f", {report.points} points"
                               if report.points else ""))
                    print(line)
                    for warning in report.warnings:
                        print(f"  warning: {warning}", file=sys.stderr)
                print(f"{len(ingested)}/{len(reports)} artifacts into "
                      f"{telemetry.store.path}")
            # Every input skipped means nothing was ingested — that is
            # the failure mode (a tolerated bad file among good ones
            # is not).
            return 1 if reports and not ingested else 0
        if args.action == "render":
            output = args.output or "telemetry.html"
            page = telemetry.render(output, title=args.title)
            summary = telemetry.summary()
            if args.format == "json":
                _emit_json("telemetry", {
                    "action": "render",
                    "db": str(telemetry.store.path),
                    "output": output,
                    "bytes": len(page.encode("utf-8")),
                    "points": summary["points"],
                    "revisions": [entry["rev"] for entry
                                  in summary["revisions"]],
                })
            else:
                print(f"wrote {output} ({summary['points']} points, "
                      f"{len(summary['revisions'])} revisions)")
            return 0
        # show
        summary = telemetry.summary()
        if args.format == "json":
            _emit_json("telemetry", {"action": "show", **summary})
        else:
            print(f"{summary['db']} (telemetry schema "
                  f"v{summary['telemetry_schema']}): "
                  f"{summary['points']} points from "
                  f"{summary['sources']} artifacts")
            for entry in summary["revisions"]:
                commands = ", ".join(
                    f"{name} x{count}" for name, count
                    in sorted(entry["commands"].items()))
                print(f"  {entry['rev']}: {entry['points']} points "
                      f"({commands})")
        return 0


def _cmd_table5(_args: argparse.Namespace) -> int:
    print(render_table5())
    return 0


def _cmd_asm(args: argparse.Namespace) -> int:
    from repro.isa.assembler import assemble

    if args.file == "-":
        source = sys.stdin.read()
    else:
        with open(args.file) as handle:
            source = handle.read()
    program = assemble(source)
    print(program.disassemble())
    return 0


_COMMANDS = {
    "attack": _cmd_attack,
    "matrix": _cmd_matrix,
    "workload": _cmd_workload,
    "run": _cmd_workload,
    "figures": _cmd_figures,
    "specs": _cmd_specs,
    "verify": _cmd_verify,
    "sample": _cmd_sample,
    "bench": _cmd_bench,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "status": _cmd_status,
    "cache": _cmd_cache,
    "telemetry": _cmd_telemetry,
    "table5": _cmd_table5,
    "asm": _cmd_asm,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
