"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``attack <name|all> [--policy ...] [--secret N]`` — run attack PoCs.
* ``matrix`` — Tables III/IV: every attack under every policy.
* ``workload <name|suite> [--policy ...] [--instructions N]`` — run the
  synthetic suite and print the per-run metrics.
* ``figures [--benchmarks a,b,...] [--instructions N]`` — regenerate the
  performance figures (6-9, 11-16) as text tables.
* ``table5`` — the hardware-overhead table.
* ``asm <file>`` — assemble a text program and print its disassembly.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.experiment import ExperimentRunner
from repro.analysis.report import (render_figure_series, render_ipc_figure,
                                   render_sizing_figure, render_two_series)
from repro.attacks import ALL_ATTACKS, run_attack_by_name, security_matrix
from repro.attacks.runner import render_matrix
from repro.core.policy import CommitPolicy
from repro.errors import ReproError
from repro.hwmodel.overhead import render_table5
from repro.workloads import run_workload, suite_names

_POLICIES = {p.value: p for p in CommitPolicy}


def _parse_policy(value: str) -> CommitPolicy:
    if value not in _POLICIES:
        raise argparse.ArgumentTypeError(
            f"unknown policy {value!r}; choose from {sorted(_POLICIES)}")
    return _POLICIES[value]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SafeSpec (DAC 2019) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    attack = sub.add_parser("attack", help="run one attack PoC (or all)")
    attack.add_argument("name", choices=list(ALL_ATTACKS) + ["all"])
    attack.add_argument("--policy", type=_parse_policy,
                        action="append", default=None,
                        help="baseline / wfb / wfc (repeatable; "
                             "default: all three)")
    attack.add_argument("--secret", type=int, default=42)

    sub.add_parser("matrix",
                   help="run every attack under every policy "
                        "(Tables III & IV)")

    workload = sub.add_parser("workload",
                              help="run a synthetic benchmark")
    workload.add_argument("name", help="benchmark name or 'suite'")
    workload.add_argument("--policy", type=_parse_policy,
                          default=CommitPolicy.BASELINE)
    workload.add_argument("--instructions", type=int, default=10_000)

    figures = sub.add_parser("figures",
                             help="regenerate the performance figures")
    figures.add_argument("--benchmarks", default=None,
                         help="comma-separated subset (default: full "
                              "suite)")
    figures.add_argument("--instructions", type=int, default=8_000)

    sub.add_parser("table5", help="hardware overhead table (Table V)")

    asm = sub.add_parser("asm", help="assemble and disassemble a program")
    asm.add_argument("file", help="assembly source file ('-' for stdin)")

    return parser


# ---------------------------------------------------------------------------
# command implementations
# ---------------------------------------------------------------------------

def _cmd_attack(args: argparse.Namespace) -> int:
    policies = args.policy or [CommitPolicy.BASELINE, CommitPolicy.WFB,
                               CommitPolicy.WFC]
    names = list(ALL_ATTACKS) if args.name == "all" else [args.name]
    failures = 0
    for name in names:
        for policy in policies:
            result = run_attack_by_name(name, policy, args.secret)
            print(result)
    return failures


def _cmd_matrix(_args: argparse.Namespace) -> int:
    matrix = security_matrix()
    print(render_matrix(matrix))
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    names = suite_names() if args.name == "suite" else [args.name]
    header = (f"{'benchmark':10s} {'IPC':>7s} {'d-miss':>7s} "
              f"{'i-miss':>7s} {'cycles':>9s}")
    print(header)
    print("-" * len(header))
    for name in names:
        run = run_workload(name, args.policy,
                           instructions=args.instructions)
        print(f"{name:10s} {run.ipc:7.3f} "
              f"{run.dcache_read_miss_rate:7.3f} "
              f"{run.icache_miss_rate:7.3f} {run.result.cycles:9d}")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    benchmarks = (args.benchmarks.split(",") if args.benchmarks
                  else None)
    runner = ExperimentRunner(benchmarks=benchmarks,
                              instructions=args.instructions)
    wfc, wfb = CommitPolicy.WFC, CommitPolicy.WFB
    base = CommitPolicy.BASELINE
    sizing_figures = [("6", "shadow_icache"), ("7", "shadow_dcache"),
                      ("8", "shadow_itlb"), ("9", "shadow_dtlb")]
    for figure_id, structure in sizing_figures:
        print(render_sizing_figure(figure_id, structure,
                                   runner.shadow_sizing(structure, wfc),
                                   runner.shadow_sizing(structure, wfb)))
        print()
    print(render_ipc_figure(runner.normalized_ipc(wfc)))
    print()
    print(render_two_series("Figure 12: d-cache read miss rate",
                            "WFC", runner.dcache_miss_rates(wfc),
                            "baseline", runner.dcache_miss_rates(base)))
    print()
    print(render_figure_series("Figure 13: hits on shadow d-cache",
                               runner.shadow_dcache_hits(wfc),
                               scale_max=1.0))
    print()
    print(render_two_series("Figure 14: i-cache miss rate",
                            "WFC", runner.icache_miss_rates(wfc),
                            "baseline", runner.icache_miss_rates(base)))
    print()
    print(render_figure_series("Figure 15: hits on shadow i-cache",
                               runner.shadow_icache_hits(wfc),
                               scale_max=1.0))
    print()
    print(render_two_series(
        "Figure 16: commit rate of shadow state",
        "i-cache", runner.shadow_commit_rates("shadow_icache", wfc),
        "d-cache", runner.shadow_commit_rates("shadow_dcache", wfc)))
    return 0


def _cmd_table5(_args: argparse.Namespace) -> int:
    print(render_table5())
    return 0


def _cmd_asm(args: argparse.Namespace) -> int:
    from repro.isa.assembler import assemble

    if args.file == "-":
        source = sys.stdin.read()
    else:
        with open(args.file) as handle:
            source = handle.read()
    program = assemble(source)
    print(program.disassemble())
    return 0


_COMMANDS = {
    "attack": _cmd_attack,
    "matrix": _cmd_matrix,
    "workload": _cmd_workload,
    "figures": _cmd_figures,
    "table5": _cmd_table5,
    "asm": _cmd_asm,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
