"""SafeSpec reproduction: leakage-free speculation (DAC 2019).

Public API:

* :class:`~repro.machine.Machine` — a simulated out-of-order CPU with a
  selectable commit policy (BASELINE / WFB / WFC).
* :mod:`repro.spec` — declarative :class:`~repro.spec.MachineSpec`
  hardware descriptions plus the ``SPECS`` preset registry.
* :mod:`repro.isa` — the instruction set and program builder.
* :mod:`repro.attacks` — Spectre/Meltdown/TSA proof-of-concept attacks.
* :mod:`repro.workloads` — the synthetic SPEC CPU2017-like suite.
* :mod:`repro.verify` — reference ISA oracle, program fuzzer, and the
  differential/invariant verification harness (``repro verify``).
* :mod:`repro.analysis` — experiment runner and figure/table metrics.
* :mod:`repro.hwmodel` — CACTI-like hardware overhead model (Table V).
"""

from repro.core.policy import CommitPolicy
from repro.core.safespec import SafeSpecConfig, SizingMode
from repro.core.shadow import FullPolicy
from repro.isa import ProgramBuilder, assemble
from repro.machine import Machine
from repro.memory.paging import PrivilegeLevel
from repro.pipeline.config import CoreConfig
from repro.spec import MachineSpec, get_spec, spec_names

__version__ = "1.0.0"

__all__ = [
    "CommitPolicy",
    "CoreConfig",
    "FullPolicy",
    "Machine",
    "MachineSpec",
    "PrivilegeLevel",
    "ProgramBuilder",
    "SafeSpecConfig",
    "SizingMode",
    "assemble",
    "get_spec",
    "spec_names",
    "__version__",
]
