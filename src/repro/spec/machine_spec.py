"""The declarative hardware description: one value per machine shape.

A :class:`MachineSpec` composes every sizing knob the simulator exposes —
the out-of-order core (:class:`~repro.pipeline.config.CoreConfig`), the
memory system (:class:`~repro.memory.hierarchy.HierarchyConfig`), the
optional SafeSpec shadow configuration
(:class:`~repro.core.safespec.SafeSpecConfig`), the branch predictor
name, and the BTB geometry — into a single frozen, hashable value.

Because the spec is a *value*, every machine shape becomes first-class:

* serializable — :meth:`MachineSpec.to_dict` /
  :meth:`MachineSpec.from_dict` round-trip through plain JSON types;
* cacheable — :meth:`MachineSpec.digest` is a stable content hash, so
  the on-disk result cache distinguishes hardware shapes;
* sweepable — a :class:`~repro.api.scenario.Sweep` takes a ``specs``
  axis and runs sensitivity curves through the parallel executor;
* derivable — :meth:`MachineSpec.derive` produces a variant by dotted
  path without mutating the base::

      small = spec.derive(**{"core.rob_entries": 64,
                             "hierarchy.l1d.size_bytes": 16 * 1024})

Unknown paths, unknown fields in a payload, and values that violate a
config's own invariants all raise
:class:`~repro.errors.ConfigError` before any simulation runs.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass
from typing import (Any, Dict, Mapping, Optional, Sequence, Union,
                    get_args, get_origin, get_type_hints)

from repro.core.safespec import SafeSpecConfig
from repro.errors import ConfigError
from repro.frontend.btb import BTBConfig
from repro.frontend.rsb import RSBConfig
from repro.memory.hierarchy import HierarchyConfig
from repro.pipeline.config import CoreConfig

# Bump when the spec tree's field layout changes incompatibly; the
# digest (and therefore every spec-carrying job key) namespaces on it.
# v2: rsb section, btb.history_bits, core.mem_dep_speculation.
SPEC_SCHEMA_VERSION = 2

# Keys a spec contributes to SimJob.params (transport into the job hash
# and across executor workers).
SPEC_PARAM_KEY = "machine_spec"
SPEC_DIGEST_PARAM_KEY = "machine_spec_digest"


@dataclass(frozen=True)
class MachineSpec:
    """A complete, immutable description of one simulated machine.

    The default value reproduces the paper's Table I/II Skylake-like
    configuration with no SafeSpec engine config attached — exactly the
    machine ``Machine()`` has always built.  ``safespec`` is the shadow
    *sizing* configuration; the commit policy remains a per-run axis
    (``Machine.from_spec(spec, policy=...)`` overrides the policy field
    of an attached ``safespec``), so one hardware shape can be swept
    across baseline/WFB/WFC without three near-identical specs.
    """

    core: CoreConfig = CoreConfig()
    hierarchy: HierarchyConfig = HierarchyConfig()
    safespec: Optional[SafeSpecConfig] = None
    predictor: str = "bimodal"
    btb: BTBConfig = BTBConfig()
    rsb: RSBConfig = RSBConfig()

    def __post_init__(self) -> None:
        if not self.predictor or not isinstance(self.predictor, str):
            raise ConfigError("predictor must be a non-empty name "
                              "(see repro.api.registry.PREDICTORS)")

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """This spec as a nested dict of JSON-representable primitives."""
        payload: Dict[str, Any] = {"spec_schema": SPEC_SCHEMA_VERSION}
        for field in dataclasses.fields(self):
            payload[field.name] = _as_plain(getattr(self, field.name))
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MachineSpec":
        """Rebuild a spec from :meth:`to_dict` output.

        ``from_dict(to_dict(s)) == s`` for every valid spec; unknown
        keys and malformed values raise :class:`ConfigError`.
        """
        if not isinstance(payload, Mapping):
            raise ConfigError(
                f"machine spec payload must be a mapping, "
                f"got {type(payload).__name__}")
        schema = payload.get("spec_schema", SPEC_SCHEMA_VERSION)
        if schema != SPEC_SCHEMA_VERSION:
            raise ConfigError(
                f"unsupported machine spec schema {schema!r} "
                f"(this build reads v{SPEC_SCHEMA_VERSION})")
        body = {k: v for k, v in payload.items() if k != "spec_schema"}
        return _build_dataclass(cls, body, path="")

    def digest(self) -> str:
        """Stable content hash of this spec (hex SHA-256).

        Computed over the canonical JSON form of :meth:`to_dict`, so it
        is identical across processes, interpreter restarts and
        platforms for equal specs.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def short_digest(self) -> str:
        """The first 12 hex chars of :meth:`digest` (display use)."""
        return self.digest()[:12]

    def job_params(self) -> Dict[str, Any]:
        """The params entries a spec-carrying job transports.

        Both the full dict (so workers can rebuild the spec) and the
        digest (a human-greppable cache discriminator) flow into the
        job's content hash.
        """
        return {SPEC_PARAM_KEY: self.to_dict(),
                SPEC_DIGEST_PARAM_KEY: self.digest()}

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------

    def derive(self, **overrides: Any) -> "MachineSpec":
        """A new spec with dotted-path ``overrides`` applied.

        Keys are dotted paths into the spec tree (``"core.rob_entries"``,
        ``"hierarchy.l1d.size_bytes"``, ``"safespec.sizing"``, or a
        whole section like ``"core"``/``"safespec"``).  Values may be
        the target type, an enum's string value, or — for whole
        sections — a config object (or ``None`` to drop ``safespec``).
        Overrides touching one config object are applied atomically, so
        co-dependent fields (``core.rob_entries`` + ``core.iq_entries``)
        never trip an intermediate invariant.  Unknown paths raise
        :class:`ConfigError` naming the known fields at the failing
        level; deriving into ``safespec.*`` while ``safespec`` is
        ``None`` starts from a default :class:`SafeSpecConfig`.
        """
        if not overrides:
            return self
        tree: Dict[str, Any] = {}
        for path, value in overrides.items():
            parts = path.split(".")
            if not all(parts):
                raise ConfigError(f"malformed spec path {path!r}")
            node = tree
            for part in parts[:-1]:
                existing = node.get(part)
                if existing is not None and not isinstance(existing, dict):
                    raise ConfigError(
                        f"conflicting overrides: {path!r} descends into a "
                        f"section also replaced wholesale")
                node = node.setdefault(part, {})
                if not isinstance(node, dict):  # pragma: no cover - guarded
                    raise ConfigError(f"conflicting overrides at {path!r}")
            leaf = parts[-1]
            if isinstance(node.get(leaf), dict):
                raise ConfigError(
                    f"conflicting overrides: {path!r} replaces a section "
                    f"other overrides descend into")
            node[leaf] = _Leaf(value)
        return _apply_tree(self, tree, prefix="")

    @classmethod
    def resolve_path(cls, path: str) -> Any:
        """The (resolved) type at a dotted path, or raise ConfigError.

        Used to validate sweep-variant paths before any simulation and
        by the CLI ``--set`` parser to pick a string coercion.
        """
        return cls._resolve_path(path)[0]

    @classmethod
    def _resolve_path(cls, path: str) -> "tuple[Any, bool]":
        """(resolved type, is-optional) at a dotted path."""
        parts = path.split(".")
        if not all(parts):
            raise ConfigError(f"malformed spec path {path!r}")
        current: Any = cls
        optional = False
        walked = []
        for part in parts:
            if not dataclasses.is_dataclass(current):
                raise ConfigError(
                    f"spec path {path!r}: {'.'.join(walked)!r} has no "
                    f"sub-fields")
            hints = get_type_hints(current)
            names = [f.name for f in dataclasses.fields(current)]
            if part not in names:
                where = ".".join(walked) or "spec"
                raise ConfigError(
                    f"unknown spec path {path!r}: {where} has no field "
                    f"{part!r}; known: {', '.join(names)}")
            raw = hints[part]
            current = _strip_optional(raw)
            optional = current is not raw
            walked.append(part)
        return current, optional

    # ------------------------------------------------------------------
    # comparison
    # ------------------------------------------------------------------

    def diff(self, other: "MachineSpec") -> str:
        """Human-readable field-by-field difference, one line per path.

        Lines read ``path: mine -> theirs``; an empty string means the
        specs are equal.
        """
        mine = _flatten(self.to_dict())
        theirs = _flatten(other.to_dict())
        lines = []
        for path in sorted(set(mine) | set(theirs)):
            a = mine.get(path, "(unset)")
            b = theirs.get(path, "(unset)")
            if a != b:
                lines.append(f"{path}: {a} -> {b}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# params transport
# ---------------------------------------------------------------------------

def machine_spec_from_params(
        params: Mapping[str, Any]) -> Optional[MachineSpec]:
    """Rebuild the spec a job's params carry, or None when spec-less."""
    payload = params.get(SPEC_PARAM_KEY)
    if payload is None:
        return None
    return MachineSpec.from_dict(payload)


# ---------------------------------------------------------------------------
# CLI ``--set key=value`` parsing
# ---------------------------------------------------------------------------

_TRUE = {"1", "true", "yes", "on"}
_FALSE = {"0", "false", "no", "off"}


def derive_from_strings(spec: MachineSpec,
                        assignments: Sequence[str]) -> MachineSpec:
    """Apply ``key=value`` strings (the CLI ``--set`` flag) to a spec.

    The value string is coerced by the target field's declared type:
    ints accept decimal/hex/underscores (``--set
    hierarchy.l1d.size_bytes=0x4000``), enums accept their value names
    (``--set safespec.sizing=performance``), and ``none`` clears an
    optional field (``--set safespec=none``).
    """
    overrides: Dict[str, Any] = {}
    for assignment in assignments:
        path, sep, text = assignment.partition("=")
        path = path.strip()
        if not sep or not path:
            raise ConfigError(
                f"--set expects key=value, got {assignment!r}")
        target, optional = MachineSpec._resolve_path(path)
        overrides[path] = _coerce_string(target, optional,
                                         text.strip(), path)
    return spec.derive(**overrides)


def _coerce_string(target: Any, optional: bool, text: str,
                   path: str) -> Any:
    if text.lower() in ("none", "null"):
        # Only an Optional field may be cleared; 'none' for a required
        # int would otherwise surface later as a raw TypeError (or,
        # for a required section, silently fall back to defaults).
        if optional:
            return None
        raise ConfigError(
            f"{path} is required and cannot be set to {text!r}")
    if isinstance(target, type) and issubclass(target, enum.Enum):
        try:
            return target(text.lower())
        except ValueError:
            values = ", ".join(member.value for member in target)
            raise ConfigError(
                f"{path}: unknown value {text!r}; choose from {values}")
    if dataclasses.is_dataclass(target):
        raise ConfigError(
            f"{path} is a config section; set its fields "
            f"({path}.<field>=...) or 'none' to clear an optional one")
    if target is bool:
        if text.lower() in _TRUE:
            return True
        if text.lower() in _FALSE:
            return False
        raise ConfigError(f"{path}: expected a boolean, got {text!r}")
    if target is int:
        try:
            return int(text, 0)
        except ValueError:
            raise ConfigError(f"{path}: expected an integer, got {text!r}")
    if target is float:
        try:
            return float(text)
        except ValueError:
            raise ConfigError(f"{path}: expected a number, got {text!r}")
    return text


# ---------------------------------------------------------------------------
# generic dataclass <-> plain-value machinery
# ---------------------------------------------------------------------------

class _Leaf:
    """Wrapper distinguishing an override value from a nested tree."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value


def _as_plain(value: Any) -> Any:
    """A config value as JSON-representable primitives."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {field.name: _as_plain(getattr(value, field.name))
                for field in dataclasses.fields(value)}
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise ConfigError(
        f"cannot serialize spec value of type {type(value).__name__}")


def _strip_optional(annotation: Any) -> Any:
    """``Optional[T] -> T``; other annotations pass through."""
    if get_origin(annotation) is Union:
        args = [a for a in get_args(annotation) if a is not type(None)]
        if len(args) == 1:
            return args[0]
    return annotation


def _convert(target: Any, value: Any, path: str) -> Any:
    """Coerce ``value`` to the (possibly Optional) ``target`` type.

    Wrong-typed leaves raise :class:`ConfigError` here, before a
    config's ``__post_init__`` would trip over them with a raw
    ``TypeError`` (hand-edited payloads, sweep-variant values).
    """
    where = path or "spec"
    stripped = _strip_optional(target)
    if value is None:
        if stripped is not target:      # annotation was Optional
            return None
        raise ConfigError(f"{where} is required and cannot be null")
    target = stripped
    if dataclasses.is_dataclass(target) and isinstance(target, type):
        if isinstance(value, target):
            return value
        if isinstance(value, Mapping):
            return _build_dataclass(target, value, path)
        raise ConfigError(
            f"{where}: expected {target.__name__} (or a "
            f"mapping), got {type(value).__name__}")
    if isinstance(target, type) and issubclass(target, enum.Enum):
        if isinstance(value, target):
            return value
        try:
            return target(value)
        except ValueError:
            values = ", ".join(member.value for member in target)
            raise ConfigError(
                f"{where}: unknown value {value!r}; choose "
                f"from {values}")
    if target is bool:
        if isinstance(value, bool):
            return value
        raise ConfigError(f"{where}: expected a boolean, got {value!r}")
    if target is int:
        if isinstance(value, int) and not isinstance(value, bool):
            return value
        raise ConfigError(f"{where}: expected an integer, got {value!r}")
    if target is float:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
        raise ConfigError(f"{where}: expected a number, got {value!r}")
    if target is str:
        if isinstance(value, str):
            return value
        raise ConfigError(f"{where}: expected a string, got {value!r}")
    return value


def _build_dataclass(cls: type, payload: Mapping[str, Any],
                     path: str) -> Any:
    """Instantiate ``cls`` from a plain mapping, strictly."""
    fields = {f.name: f for f in dataclasses.fields(cls)}
    unknown = set(payload) - set(fields)
    if unknown:
        where = path or cls.__name__
        raise ConfigError(
            f"unknown field(s) {sorted(unknown)} in {where}; known: "
            f"{', '.join(fields)}")
    hints = get_type_hints(cls)
    kwargs = {}
    for name, value in payload.items():
        child = f"{path}.{name}" if path else name
        kwargs[name] = _convert(hints[name], value, child)
    return cls(**kwargs)


def _apply_tree(obj: Any, tree: Dict[str, Any], prefix: str) -> Any:
    """Rebuild ``obj`` with an override tree applied atomically."""
    if not dataclasses.is_dataclass(obj):
        raise ConfigError(
            f"spec path {prefix!r} has no sub-fields to override")
    hints = get_type_hints(type(obj))
    names = [f.name for f in dataclasses.fields(obj)]
    kwargs: Dict[str, Any] = {}
    for name, node in tree.items():
        child = f"{prefix}.{name}" if prefix else name
        if name not in names:
            where = prefix or "spec"
            raise ConfigError(
                f"unknown spec path {child!r}: {where} has no field "
                f"{name!r}; known: {', '.join(names)}")
        if isinstance(node, _Leaf):
            kwargs[name] = _convert(hints[name], node.value, child)
        else:
            current = getattr(obj, name)
            if current is None:
                # Deriving into an absent optional section starts from
                # that section's defaults (only ``safespec`` today).
                current = _strip_optional(hints[name])()
            kwargs[name] = _apply_tree(current, node, child)
    return dataclasses.replace(obj, **kwargs)


def _flatten(payload: Any, prefix: str = "") -> Dict[str, Any]:
    """Dotted-path -> leaf-value view of a nested to_dict tree."""
    if not isinstance(payload, dict):
        return {prefix: payload}
    flat: Dict[str, Any] = {}
    for key, value in payload.items():
        if key == "spec_schema" and not prefix:
            continue
        child = f"{prefix}.{key}" if prefix else key
        flat.update(_flatten(value, child))
    return flat
