"""The ``SPECS`` preset registry: named, ready-made machine shapes.

Follows the component-registry pattern (:mod:`repro.api.registry`):
each preset is one decorated factory in this module, and everything
downstream — CLI ``--preset`` choices, ``repro specs`` listings, sweep
``specs=[...]`` axes — derives from the registry.  Registration is
eager (a handful of frozen dataclasses), so importing :mod:`repro.spec`
always yields the full catalogue.

The ``skylake-table1`` preset is the default machine: byte-identical to
what ``Machine()`` has always built from the paper's Table I/II.
"""

from __future__ import annotations

from typing import Any, Callable, List

from repro.api.registry import Registry
from repro.core.policy import CommitPolicy
from repro.core.safespec import SafeSpecConfig, SizingMode
from repro.core.shadow import FullPolicy
from repro.frontend.btb import BTBConfig
from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import HierarchyConfig
from repro.memory.tlb import TLBConfig
from repro.pipeline.config import CoreConfig
from repro.spec.machine_spec import MachineSpec

SPECS = Registry("spec")

# The preset every entry point defaults to.
DEFAULT_SPEC = "skylake-table1"


def register_spec(name: str, *, description: str = "",
                  **metadata: Any) -> Callable[[Any], Any]:
    """Register the decorated zero-arg factory's spec under ``name``.

    The factory runs once at registration; the registry stores the
    (immutable) :class:`MachineSpec` value with ``description`` and any
    extra metadata attached.
    """
    def decorator(factory: Callable[[], MachineSpec]) -> Any:
        SPECS.add(name, factory(), description=description, **metadata)
        return factory
    return decorator


def get_spec(name: str) -> MachineSpec:
    """The preset registered under ``name`` (ConfigError when unknown)."""
    return SPECS.get(name)


def spec_names() -> List[str]:
    """Registered preset names, in registration order."""
    return SPECS.names()


def spec_description(name: str) -> str:
    """The one-line description a preset was registered with."""
    return SPECS.metadata(name).get("description", "")


# ---------------------------------------------------------------------------
# built-in presets
# ---------------------------------------------------------------------------

@register_spec(DEFAULT_SPEC,
               description="Paper Table I/II Skylake-like machine "
                           "(the default)")
def _skylake_table1() -> MachineSpec:
    return MachineSpec()


@register_spec("little-core",
               description="In-order-ish little core: 2-wide, 64-entry "
                           "ROB, halved caches and TLBs")
def _little_core() -> MachineSpec:
    return MachineSpec(
        core=CoreConfig(
            fetch_width=2, issue_width=2, commit_width=2,
            rob_entries=64, iq_entries=32,
            ldq_entries=24, stq_entries=16,
            int_alus=2, mul_units=1, load_ports=1, store_ports=1,
            branch_units=1),
        hierarchy=HierarchyConfig(
            l1i=CacheConfig("L1I", 16 * 1024, 4, 64, 3),
            l1d=CacheConfig("L1D", 16 * 1024, 4, 64, 3),
            l2=CacheConfig("L2", 128 * 1024, 4, 64, 12),
            l3=CacheConfig("L3", 1024 * 1024, 8, 64, 40),
            itlb=TLBConfig("iTLB", 32, 1),
            dtlb=TLBConfig("dTLB", 32, 1)),
        btb=BTBConfig(entries=256, index_bits=8))


@register_spec("big-core",
               description="Aggressive big core: 8-wide, 320-entry ROB, "
                           "doubled caches, 1K-entry BTB")
def _big_core() -> MachineSpec:
    return MachineSpec(
        core=CoreConfig(
            fetch_width=8, issue_width=8, commit_width=8,
            rob_entries=320, iq_entries=128,
            ldq_entries=128, stq_entries=96,
            int_alus=6, mul_units=2, load_ports=3, store_ports=2,
            branch_units=3),
        hierarchy=HierarchyConfig(
            l1i=CacheConfig("L1I", 64 * 1024, 8, 64, 4),
            l1d=CacheConfig("L1D", 64 * 1024, 8, 64, 4),
            l2=CacheConfig("L2", 512 * 1024, 8, 64, 12),
            l3=CacheConfig("L3", 8 * 1024 * 1024, 16, 64, 48),
            itlb=TLBConfig("iTLB", 128, 1),
            dtlb=TLBConfig("dTLB", 128, 1)),
        btb=BTBConfig(entries=1024, index_bits=10))


@register_spec("safespec-secure",
               description="SafeSpec worst-case (SECURE) shadow sizing — "
                           "closes the TSA channel (paper Section VII)")
def _safespec_secure() -> MachineSpec:
    return MachineSpec(
        safespec=SafeSpecConfig(policy=CommitPolicy.WFC,
                                sizing=SizingMode.SECURE,
                                full_policy=FullPolicy.DROP))


@register_spec("safespec-p9999",
               description="SafeSpec unsafe p99.99 (PERFORMANCE) shadow "
                           "sizing — contention, hence TSAs, possible")
def _safespec_p9999() -> MachineSpec:
    return MachineSpec(
        safespec=SafeSpecConfig(policy=CommitPolicy.WFC,
                                sizing=SizingMode.PERFORMANCE,
                                full_policy=FullPolicy.DROP))
