"""``repro.spec`` — the declarative hardware-description API.

* :class:`~repro.spec.machine_spec.MachineSpec` — one frozen, hashable
  value composing core, hierarchy, SafeSpec, predictor and BTB sizing,
  with ``to_dict``/``from_dict`` round-trip, a stable content
  ``digest()``, human-readable ``diff()``, and dotted-path ``derive()``.
* :data:`~repro.spec.presets.SPECS` — the decorator-based preset
  registry (``skylake-table1`` default, little/big cores, SafeSpec
  sizing variants); register your own with
  :func:`~repro.spec.presets.register_spec`.

Quickstart::

    from repro.spec import MachineSpec, get_spec

    small = get_spec("skylake-table1").derive(
        **{"core.rob_entries": 64, "hierarchy.l1d.size_bytes": 16 * 1024})
    machine = Machine.from_spec(small, policy=CommitPolicy.WFC)
"""

from repro.spec.machine_spec import (SPEC_DIGEST_PARAM_KEY, SPEC_PARAM_KEY,
                                     SPEC_SCHEMA_VERSION, MachineSpec,
                                     derive_from_strings,
                                     machine_spec_from_params)
from repro.spec.presets import (DEFAULT_SPEC, SPECS, get_spec, register_spec,
                                spec_description, spec_names)

__all__ = [
    "DEFAULT_SPEC",
    "MachineSpec",
    "SPECS",
    "SPEC_DIGEST_PARAM_KEY",
    "SPEC_PARAM_KEY",
    "SPEC_SCHEMA_VERSION",
    "derive_from_strings",
    "get_spec",
    "machine_spec_from_params",
    "register_spec",
    "spec_description",
    "spec_names",
]
