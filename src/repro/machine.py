"""High-level facade: a persistent simulated machine.

A :class:`Machine` owns the long-lived micro-architectural state — memory
hierarchy, branch predictor, BTB, and (when a SafeSpec policy is active)
the SafeSpec engine — and runs programs on it.  Running several programs
in sequence on one machine models consecutive executions on one physical
core, which is the setting mistraining attacks (Spectre) require::

    machine = Machine(policy=CommitPolicy.WFC)
    machine.map_user_range(0x10000, 4096)
    machine.write_word(0x10000, 42)
    result = machine.run(program)
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.api.registry import PREDICTORS
from repro.backends import DEFAULT_BACKEND, BACKENDS
from repro.core.policy import CommitPolicy
from repro.core.safespec import SafeSpecConfig, SafeSpecEngine
from repro.frontend.btb import BranchTargetBuffer, BTBConfig
from repro.frontend.rsb import ReturnStackBuffer, RSBConfig
from repro.isa.program import Program
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.memory.paging import PagePermissions, PageTable, PrivilegeLevel
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import RunResult
from repro.spec import MachineSpec


class Machine:
    """A simulated CPU plus memory system with a selectable commit policy.

    Prefer describing a machine shape as a
    :class:`~repro.spec.MachineSpec` and building via :meth:`from_spec`;
    the loose keyword arguments remain for direct construction.

    Arguments:
        policy: ``BASELINE`` (insecure), ``WFB`` or ``WFC``.
        core_config: pipeline sizing, Table I defaults.
        hierarchy_config: memory sizing, Table II defaults.
        safespec_config: full SafeSpec configuration; when given, its
            ``policy`` overrides the ``policy`` argument.  Use this to
            select sizing modes / full policies for the TSA experiments.
        btb_config: branch-target-buffer geometry.
        backend: execution backend name (``repro.backends``): ``"cycle"``
            for the cycle-accurate out-of-order core, ``"fast"`` for the
            lowered fast-functional core.
    """

    def __init__(self, policy: CommitPolicy = CommitPolicy.BASELINE,
                 core_config: Optional[CoreConfig] = None,
                 hierarchy_config: Optional[HierarchyConfig] = None,
                 safespec_config: Optional[SafeSpecConfig] = None,
                 page_table: Optional[PageTable] = None,
                 predictor: str = "bimodal",
                 btb_config: Optional[BTBConfig] = None,
                 rsb_config: Optional[RSBConfig] = None,
                 backend: str = DEFAULT_BACKEND) -> None:
        self.core_config = core_config or CoreConfig()
        # The machine is the single owner of the page table: the
        # hierarchy (and anything below it) always receives this one
        # explicitly and never defaults its own.
        self.page_table = page_table or PageTable()
        self.hierarchy = MemoryHierarchy(hierarchy_config,
                                         page_table=self.page_table)
        # Registry dispatch: the lookup error lists every registered
        # predictor (SafeSpec makes no assumption on the predictor).
        self.predictor = PREDICTORS.create(predictor)
        self.btb = BranchTargetBuffer(btb_config)
        self.rsb = ReturnStackBuffer(rsb_config)
        if safespec_config is not None:
            self.policy = safespec_config.policy
        else:
            self.policy = policy
        if self.policy.uses_shadow:
            config = safespec_config or SafeSpecConfig(policy=self.policy)
            self.engine: Optional[SafeSpecEngine] = SafeSpecEngine(
                config, self.hierarchy,
                ldq_entries=self.core_config.ldq_entries,
                stq_entries=self.core_config.stq_entries,
                rob_entries=self.core_config.rob_entries)
        else:
            self.engine = None
        # Backend dispatch mirrors the predictor lookup above: unknown
        # names fail loudly, listing every registered backend.
        self.backend = backend
        self._backend_impl = BACKENDS.create(backend)

    @classmethod
    def from_spec(cls, spec: Optional[MachineSpec] = None, *,
                  policy: Optional[CommitPolicy] = None,
                  page_table: Optional[PageTable] = None,
                  backend: str = DEFAULT_BACKEND) -> "Machine":
        """Build a machine from a declarative hardware description.

        ``spec`` defaults to the Table I/II machine (``MachineSpec()``).
        ``policy`` is the per-run axis: when given it wins over the
        policy recorded in ``spec.safespec`` (the spec describes shadow
        *sizing*; the sweep decides the commit policy), and a
        non-shadow policy simply drops the SafeSpec section.  When
        ``policy`` is omitted it comes from ``spec.safespec`` or
        defaults to ``BASELINE``.
        """
        spec = spec if spec is not None else MachineSpec()
        safespec = spec.safespec
        if policy is None:
            policy = (safespec.policy if safespec is not None
                      else CommitPolicy.BASELINE)
        if not policy.uses_shadow:
            safespec = None
        elif safespec is not None and safespec.policy is not policy:
            safespec = dataclasses.replace(safespec, policy=policy)
        return cls(policy=policy,
                   core_config=spec.core,
                   hierarchy_config=spec.hierarchy,
                   safespec_config=safespec,
                   page_table=page_table,
                   predictor=spec.predictor,
                   btb_config=spec.btb,
                   rsb_config=spec.rsb,
                   backend=backend)

    # ------------------------------------------------------------------
    # memory setup helpers
    # ------------------------------------------------------------------

    def map_user_range(self, start_vaddr: int, size: int) -> None:
        """Identity-map a user-accessible RWX range."""
        self.page_table.map_range(start_vaddr, size, PagePermissions())

    def map_kernel_range(self, start_vaddr: int, size: int) -> None:
        """Identity-map a supervisor-only range (the Meltdown target)."""
        self.page_table.map_range(
            start_vaddr, size,
            PagePermissions(supervisor_only=True))

    def write_word(self, vaddr: int, value: int) -> None:
        """Write directly to backing memory (test/attack setup)."""
        translation = self.page_table.lookup(vaddr)
        if translation is None:
            raise KeyError(f"vaddr {vaddr:#x} is not mapped")
        self.hierarchy.memory.write_word(translation.physical(vaddr), value)

    def read_word(self, vaddr: int) -> int:
        """Read directly from backing memory (result inspection)."""
        translation = self.page_table.lookup(vaddr)
        if translation is None:
            raise KeyError(f"vaddr {vaddr:#x} is not mapped")
        return self.hierarchy.memory.read_word(translation.physical(vaddr))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(self, program: Program,
            max_instructions: Optional[int] = None,
            privilege: PrivilegeLevel = PrivilegeLevel.USER,
            fault_handler_pc: Optional[int] = None,
            initial_registers: Optional[Dict[int, int]] = None,
            start_pc: Optional[int] = None,
            map_code: bool = True) -> RunResult:
        """Execute ``program`` to completion on this machine.

        ``start_pc`` resumes execution at an arbitrary instruction in the
        code image (checkpoint restore); default is the program start.
        ``map_code`` (default) identity-maps the program's code range as
        executable user pages before running.
        """
        if map_code and program.code_bytes:
            self.page_table.map_range(program.code_base, program.code_bytes)
        return self._backend_impl.run(
            self, program,
            max_instructions=max_instructions,
            privilege=privilege,
            fault_handler_pc=fault_handler_pc,
            initial_registers=initial_registers,
            start_pc=start_pc,
        )

    # ------------------------------------------------------------------
    # attacker-visible probes (committed state only)
    # ------------------------------------------------------------------

    def probe_latency(self, vaddr: int) -> int:
        """Latency a committed, timed load at ``vaddr`` would see now."""
        return self.hierarchy.probe_data_latency(vaddr)

    def probe_fetch_latency(self, vaddr: int) -> int:
        """Latency a committed instruction fetch at ``vaddr`` would see
        now (receiver for the I-cache attack variant)."""
        return self.hierarchy.probe_fetch_latency(vaddr)

    def probe_translation_latency(self, vaddr: int, side: str = "d") -> int:
        """Translation (TLB/page-walk) latency a committed access would
        see now (receiver for the TLB attack variants)."""
        return self.hierarchy.probe_translation_latency(side, vaddr)

    def flush_address(self, vaddr: int) -> None:
        """clflush the line containing ``vaddr`` (attack setup)."""
        translation = self.page_table.lookup(vaddr)
        if translation is None:
            raise KeyError(f"vaddr {vaddr:#x} is not mapped")
        self.hierarchy.clflush(translation.physical(vaddr))
