"""``repro.api`` — the unified public API.

Three layers, each usable on its own:

* :mod:`repro.api.registry` — decorator-based component registries
  (:data:`~repro.api.registry.ATTACKS`,
  :data:`~repro.api.registry.WORKLOADS`,
  :data:`~repro.api.registry.PREDICTORS`); adding a scenario is one
  decorated function in one module.
* :mod:`repro.api.scenario` — declarative :class:`Scenario` specs and
  :class:`Sweep` grids over benchmarks x policies x config variants.
* :mod:`repro.api.session` — the :class:`Session` facade owning
  executor + cache wiring, with ``run`` / ``matrix`` / ``figures`` /
  ``sweep``.

Quickstart::

    from repro.api import Session, Sweep
    from repro import CommitPolicy, CoreConfig

    session = Session(jobs=4)
    print(session.matrix()["meltdown"]["wfb"].closed)   # False: Table III
    result = session.sweep(Sweep(
        benchmarks=["mcf"], policies=[CommitPolicy.WFC],
        variants={f"rob{n}": {"core_config": CoreConfig(rob_entries=n)}
                  for n in (96, 224)}))

The scenario and session layers import lazily so that low-level modules
(attacks, workload profiles, predictors) can register themselves via
``repro.api.registry`` without dragging the whole API — and its
analysis-layer dependencies — into their import graph.
"""

from repro.api.registry import (ATTACKS, PREDICTORS, WORKLOADS, Registry,
                                RegistryEntry, attack_names,
                                expected_closed, register_attack,
                                register_predictor, register_workload)

_LAZY = {
    "Scenario": "repro.api.scenario",
    "Sweep": "repro.api.scenario",
    "SweepPoint": "repro.api.scenario",
    "MATRIX_POLICIES": "repro.api.session",
    "Session": "repro.api.session",
    "SweepResult": "repro.api.session",
}

__all__ = [
    "ATTACKS",
    "MATRIX_POLICIES",
    "PREDICTORS",
    "Registry",
    "RegistryEntry",
    "Scenario",
    "Session",
    "Sweep",
    "SweepPoint",
    "SweepResult",
    "WORKLOADS",
    "attack_names",
    "expected_closed",
    "register_attack",
    "register_predictor",
    "register_workload",
]


def __getattr__(name):
    if name in _LAZY:
        import importlib

        value = getattr(importlib.import_module(_LAZY[name]), name)
        globals()[name] = value
        return value
    raise AttributeError(f"module 'repro.api' has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
