"""The :class:`Session` facade: one object owning execution wiring.

Every entry point used to hand-wire its own cache and executor (the CLI,
:class:`~repro.analysis.experiment.FigureRunner`, the benchmark
harness, the examples) — and ``repro attack`` bypassed the exec layer
entirely.  A session owns that wiring once::

    session = Session(jobs=4, cache_dir="~/.cache/repro")
    matrix = session.matrix()                       # Tables III & IV
    figures = session.figures(benchmarks=["mcf"])   # Figures 6-9, 11-16
    result = session.sweep(Sweep(...))              # ablation grids
    report = session.sample("mcf")                  # sampled simulation
    telem = session.telemetry()                     # trajectory store
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.api.scenario import Scenario, Sweep, SweepPoint
from repro.core.policy import CommitPolicy
from repro.errors import ConfigError
from repro.exec.cache import NullCache, make_cache
from repro.exec.executor import ProgressFn, make_executor
from repro.exec.job import DEFAULT_INSTRUCTION_BUDGET, SimJob, SimResult
from repro.spec import MachineSpec

# The matrix default: the paper's protected variants plus the insecure
# baseline they are compared against.
MATRIX_POLICIES = (CommitPolicy.BASELINE, CommitPolicy.WFB,
                   CommitPolicy.WFC)

Runnable = Union[Scenario, SimJob]


@dataclass
class SweepResult:
    """A completed sweep: grid points and their results, index-aligned."""

    points: List[SweepPoint]
    results: List[SimResult]

    def __iter__(self) -> Iterator[Tuple[SweepPoint, SimResult]]:
        return iter(zip(self.points, self.results))

    def __len__(self) -> int:
        return len(self.results)

    def result(self, benchmark: str, policy: CommitPolicy,
               variant: str = "default",
               spec: str = "default") -> SimResult:
        """The result at one grid cell."""
        for point, result in self:
            if (point.benchmark == benchmark and point.policy == policy
                    and point.variant == variant and point.spec == spec):
                return result
        raise ConfigError(
            f"no sweep point {benchmark}/{policy.value}/{variant}/{spec}")

    @property
    def cached_count(self) -> int:
        """How many cells were served from the result cache."""
        return sum(1 for result in self.results if result.from_cache)


class Session:
    """Owns the executor + cache pair every batch API runs through.

    Arguments:
        jobs: worker processes (``> 1`` fans batches out over a
            ``multiprocessing`` pool with bit-identical results).
        cache: back the session with the persistent result store
            (default); ``False`` simulates everything fresh.
        cache_dir: store location (default ``$REPRO_CACHE_DIR`` or
            ``~/.cache/repro``); for the SQLite store this may also
            name the database file itself.
        store: which result-store backend persists results — ``"dir"``
            (one JSON file per result, the default) or ``"sqlite"``
            (the shared :class:`~repro.serve.store.SQLiteResultStore`
            many clients and workers hit concurrently, the one
            ``repro serve`` uses).  ``None`` reads ``$REPRO_STORE``.
        progress: per-completed-job callback (see
            :data:`~repro.exec.executor.ProgressFn`).
        executor: bring-your-own executor; overrides every other
            argument and supplies its own cache.
    """

    def __init__(self, jobs: int = 1, cache: bool = True,
                 cache_dir: Optional[str] = None,
                 store: Optional[str] = None,
                 progress: Optional[ProgressFn] = None,
                 executor: Any = None) -> None:
        if executor is not None:
            self.executor = executor
            attached = getattr(executor, "cache", None)
            self.cache = attached if attached is not None else NullCache()
        else:
            self.cache = make_cache(store, cache_dir, enabled=cache)
            self.executor = make_executor(workers=jobs, cache=self.cache,
                                          progress=progress)

    # -- generic execution -------------------------------------------------

    def run(self, scenarios: Iterable[Runnable]) -> List[SimResult]:
        """Run a batch of scenarios (or raw jobs), in submission order."""
        jobs = [item.job() if isinstance(item, Scenario) else item
                for item in scenarios]
        return self.executor.run(jobs)

    # -- the batch products ------------------------------------------------

    def matrix(self, attacks: Optional[Sequence[str]] = None,
               policies: Optional[Sequence[CommitPolicy]] = None,
               secret: int = 42,
               spec: Optional["MachineSpec"] = None,
               backend: str = "cycle"
               ) -> Dict[str, Dict[str, Any]]:
        """Every (attack, policy) outcome — the paper's Tables III & IV.

        ``spec`` selects the victim machine's hardware shape and
        ``backend`` the execution backend for every cell.  Returns
        ``{attack_name: {policy_value: AttackResult}}`` in registry
        (table) order.
        """
        from repro.api.registry import ATTACKS
        from repro.attacks.runner import attack_result_from_sim

        names = list(attacks) if attacks is not None else ATTACKS.names()
        chosen = list(policies) if policies else list(MATRIX_POLICIES)
        scenarios = [Scenario.attack(name, policy, secret=secret, spec=spec,
                                     backend=backend)
                     for name in names for policy in chosen]
        results = self.run(scenarios)
        matrix: Dict[str, Dict[str, Any]] = {name: {} for name in names}
        for scenario, result in zip(scenarios, results):
            matrix[scenario.target][scenario.policy.value] = \
                attack_result_from_sim(result)
        return matrix

    def experiment(self, benchmarks: Optional[List[str]] = None,
                   instructions: int = DEFAULT_INSTRUCTION_BUDGET,
                   spec: Optional["MachineSpec"] = None,
                   backend: str = "cycle"):
        """A :class:`~repro.analysis.experiment.FigureRunner` whose
        simulations run through this session."""
        from repro.analysis.experiment import FigureRunner

        return FigureRunner(benchmarks=benchmarks,
                            instructions=instructions, session=self,
                            spec=spec, backend=backend)

    def figures(self, benchmarks: Optional[List[str]] = None,
                instructions: int = DEFAULT_INSTRUCTION_BUDGET,
                spec: Optional["MachineSpec"] = None,
                backend: str = "cycle"
                ) -> Dict[str, Dict[str, Any]]:
        """Every performance figure's series, keyed by figure number.

        Submits the whole (benchmark x policy) grid as one batch, so a
        parallel session fans the full sweep out at once; ``spec``
        selects the hardware shape (and ``backend`` the execution
        backend) for every simulation.
        """
        from repro.analysis.experiment import FIGURE_POLICIES
        from repro.analysis.report import figures_data

        runner = self.experiment(benchmarks, instructions, spec=spec,
                                 backend=backend)
        runner.run_all(FIGURE_POLICIES)
        return figures_data(runner)

    def sweep(self, sweep: Sweep) -> SweepResult:
        """Expand and run a :class:`~repro.api.scenario.Sweep` grid."""
        points = sweep.points()
        results = self.run(sweep.scenarios())
        return SweepResult(points=points, results=results)

    def verify(self, count: int = 10, seed: int = 0,
               policies: Optional[Sequence[CommitPolicy]] = None,
               profile: str = "mixed",
               instructions: int = DEFAULT_INSTRUCTION_BUDGET,
               spec: Optional["MachineSpec"] = None,
               backend: str = "cycle"):
        """Differentially verify ``count`` fuzzed programs (seeds
        ``seed .. seed+count-1``) against the in-order reference oracle
        under every policy, plus the SafeSpec leakage invariants.

        ``backend`` selects which execution backend is held to the
        oracle — ``"fast"`` runs the same cases through the
        fast-functional core (the cross-backend accuracy contract).

        Cases are ordinary jobs: a parallel session fans them out, and
        unchanged (profile, seed, policy, spec, backend) verdicts
        replay from the result cache.  Returns a
        :class:`~repro.verify.harness.VerifyReport`.
        """
        from repro.verify.harness import (VerifyReport, verdict_from_sim,
                                          verify_job)

        if count < 1:
            raise ConfigError("verify needs count >= 1")
        chosen = list(policies) if policies else list(MATRIX_POLICIES)
        jobs = [verify_job(s, policy, profile=profile,
                           instructions=instructions, spec=spec,
                           backend=backend)
                for s in range(seed, seed + count)
                for policy in chosen]
        results = self.executor.run(jobs)
        return VerifyReport(
            verdicts=[verdict_from_sim(result) for result in results])

    def sample(self, workload: str,
               policy: CommitPolicy = CommitPolicy.BASELINE,
               instructions: int = 1_000_000,
               interval: Optional[int] = None,
               warmup: Optional[int] = None,
               windows: Optional[int] = None,
               window: Optional[int] = None,
               seed: int = 0,
               warm: bool = True,
               spec: Optional["MachineSpec"] = None,
               backend: str = "cycle",
               ff_backend: str = "fast"):
        """Sampled (SimPoint-style) simulation of one long workload.

        The run is divided into ``interval``-instruction slices; a
        seeded selection of ``windows`` slices is measured on
        ``backend`` (``window`` instructions each, after ``warmup``
        instructions of cache/predictor warming), with the fast-forward
        between slice boundaries done once on ``ff_backend``.  Each
        window is an independent content-hashed job: a parallel session
        fans them out, and a repeated call is all cache hits.

        Returns a :class:`~repro.sample.driver.SampleReport` with the
        stitched whole-program IPC estimate and per-window error bars.
        """
        from repro.sample.driver import run_sample
        from repro.sample.plan import SamplePlan

        defaults = SamplePlan()
        plan = SamplePlan(
            interval=interval if interval is not None else defaults.interval,
            warmup=warmup if warmup is not None else defaults.warmup,
            windows=windows if windows is not None else defaults.windows,
            window=window if window is not None else defaults.window,
            seed=seed,
        )
        return run_sample(self.executor, workload, policy, plan=plan,
                          total_instructions=instructions, spec=spec,
                          backend=backend, ff_backend=ff_backend,
                          warm=warm)

    # -- telemetry ---------------------------------------------------------

    def telemetry(self, db: Optional[str] = None):
        """A :class:`~repro.telemetry.Telemetry` facade over the
        longitudinal trajectory store.

        ``db`` names the SQLite database (default
        ``$REPRO_TELEMETRY_DB``, else ``telemetry.sqlite`` inside the
        cache directory).  Ingest any artifact the repo emits, then
        render the offline HTML dashboard::

            telem = session.telemetry()
            telem.ingest_file("BENCH_abc1234.json")
            telem.render("dashboard.html")
        """
        from repro.telemetry import Telemetry

        return Telemetry(db)

    # -- cache introspection -----------------------------------------------

    @property
    def cache_stats(self) -> Dict[str, int]:
        return {"hits": self.cache.hits, "misses": self.cache.misses,
                "stores": self.cache.stores}

    def describe_cache(self) -> str:
        return self.cache.describe()
