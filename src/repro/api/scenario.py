"""Declarative scenarios and parameter-sweep grids.

A :class:`Scenario` is the user-facing description of one simulation —
what to run (a registered workload or attack), under which commit
policy, with which config overrides and free-form ``params`` — validated
against the component registries at construction and lowered to a
content-hashable :class:`~repro.exec.job.SimJob` with :meth:`Scenario.job`.

A :class:`Sweep` expands a cartesian grid of benchmarks x policies x
named config variants (e.g. ROB/LDQ/shadow-sizing ablations) into a
deterministic batch of scenarios, making parameter-sweep studies a
first-class, cacheable API instead of bespoke scripts::

    sweep = Sweep(benchmarks=["mcf", "xz"],
                  policies=[CommitPolicy.WFC],
                  variants={f"rob{n}": {"core_config":
                                        CoreConfig(rob_entries=n)}
                            for n in (96, 128, 224)})
    result = Session(jobs=4).sweep(sweep)

Expansion order is benchmark-major, then policy, then variant (all in
the order given), so job batches — and therefore cache keys, progress
lines and result rows — are stable across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Any, Dict, List, Mapping, Optional, Sequence)

from repro.api.registry import ATTACKS, WORKLOADS
from repro.core.policy import CommitPolicy
from repro.core.safespec import SafeSpecConfig
from repro.errors import ConfigError
from repro.exec.job import (ATTACK, DEFAULT_INSTRUCTION_BUDGET, WORKLOAD,
                            SimJob)
from repro.memory.hierarchy import HierarchyConfig
from repro.pipeline.config import CoreConfig

# The config axes a sweep variant may override.
_OVERRIDE_KEYS = ("core_config", "hierarchy_config", "safespec_config")

DEFAULT_VARIANT = "default"


@dataclass(frozen=True)
class Scenario:
    """One declarative simulation spec.

    Prefer the validating constructors :meth:`workload` and
    :meth:`attack`; ``params`` carries scenario-kind-specific knobs (an
    attack's planted ``secret``, future workload parameters) and flows
    into the job hash.  ``label`` is a human-readable tag for sweep
    points and progress reporting; it never affects the job hash.
    """

    kind: str
    target: str
    policy: CommitPolicy = CommitPolicy.BASELINE
    instructions: int = DEFAULT_INSTRUCTION_BUDGET
    # hash=False: a dict value would break the generated __hash__
    # (same treatment as SimJob.params); equality still compares it.
    params: Mapping[str, Any] = field(default_factory=dict, hash=False)
    core_config: Optional[CoreConfig] = None
    hierarchy_config: Optional[HierarchyConfig] = None
    safespec_config: Optional[SafeSpecConfig] = None
    serial_group: Optional[str] = None
    label: str = ""

    @classmethod
    def workload(cls, benchmark: str,
                 policy: CommitPolicy = CommitPolicy.BASELINE, *,
                 instructions: int = DEFAULT_INSTRUCTION_BUDGET,
                 core_config: Optional[CoreConfig] = None,
                 hierarchy_config: Optional[HierarchyConfig] = None,
                 safespec_config: Optional[SafeSpecConfig] = None,
                 label: str = "", **params: Any) -> "Scenario":
        """A scenario running one registered suite benchmark."""
        WORKLOADS.entry(benchmark)      # unknown names fail here, loudly
        return cls(kind=WORKLOAD, target=benchmark, policy=policy,
                   instructions=instructions, params=params,
                   core_config=core_config,
                   hierarchy_config=hierarchy_config,
                   safespec_config=safespec_config, label=label)

    @classmethod
    def attack(cls, name: str,
               policy: CommitPolicy = CommitPolicy.BASELINE, *,
               secret: int = 42,
               instructions: int = DEFAULT_INSTRUCTION_BUDGET,
               serial_group: Optional[str] = None,
               label: str = "", **params: Any) -> "Scenario":
        """A scenario running one registered attack PoC.

        The planted ``secret`` is ordinary scenario data: it lands in
        ``params`` next to any attack-specific extras.
        """
        ATTACKS.entry(name)
        return cls(kind=ATTACK, target=name, policy=policy,
                   instructions=instructions,
                   params={"secret": secret, **params},
                   serial_group=serial_group, label=label)

    def job(self) -> SimJob:
        """Lower this scenario to its content-hashable job."""
        return SimJob(kind=self.kind, target=self.target, policy=self.policy,
                      instructions=self.instructions,
                      params=dict(self.params),
                      core_config=self.core_config,
                      hierarchy_config=self.hierarchy_config,
                      safespec_config=self.safespec_config,
                      serial_group=self.serial_group)

    def describe(self) -> str:
        return self.label or self.job().describe()


@dataclass(frozen=True)
class SweepPoint:
    """The grid coordinates of one sweep cell."""

    benchmark: str
    policy: CommitPolicy
    variant: str

    def describe(self) -> str:
        return f"{self.benchmark}/{self.policy.value}/{self.variant}"


class Sweep:
    """A cartesian grid of benchmarks x policies x config variants.

    ``variants`` maps a variant name to the config overrides defining it
    (any of ``core_config``, ``hierarchy_config``, ``safespec_config``);
    omitted, the sweep has the single unmodified ``"default"`` variant.
    Benchmarks are validated against the workload registry up front so a
    typo fails before any simulation runs.
    """

    def __init__(self, benchmarks: Sequence[str],
                 policies: Sequence[CommitPolicy] = (CommitPolicy.BASELINE,),
                 instructions: int = DEFAULT_INSTRUCTION_BUDGET,
                 variants: Optional[Mapping[str, Mapping[str, Any]]] = None,
                 ) -> None:
        if not benchmarks:
            raise ConfigError("sweep needs at least one benchmark")
        if not policies:
            raise ConfigError("sweep needs at least one policy")
        if variants is not None and not variants:
            # An explicitly empty axis is a degenerate grid, not a
            # request for the default variant — reject it like the
            # other empty axes instead of silently running defaults.
            raise ConfigError("sweep needs at least one variant "
                              "(omit `variants` for the default)")
        for benchmark in benchmarks:
            WORKLOADS.entry(benchmark)
        self.benchmarks = list(benchmarks)
        self.policies = list(policies)
        self.instructions = instructions
        self.variants: Dict[str, Dict[str, Any]] = {}
        if variants is None:
            variants = {DEFAULT_VARIANT: {}}
        for name, overrides in variants.items():
            unknown = set(overrides) - set(_OVERRIDE_KEYS)
            if unknown:
                raise ConfigError(
                    f"variant {name!r} overrides unknown config axes "
                    f"{sorted(unknown)}; allowed: {list(_OVERRIDE_KEYS)}")
            self.variants[name] = dict(overrides)

    def points(self) -> List[SweepPoint]:
        """Grid cells in expansion order (benchmark, policy, variant)."""
        return [SweepPoint(benchmark, policy, variant)
                for benchmark in self.benchmarks
                for policy in self.policies
                for variant in self.variants]

    def scenarios(self) -> List[Scenario]:
        """One workload scenario per grid cell, in :meth:`points` order."""
        return [Scenario.workload(point.benchmark, point.policy,
                                  instructions=self.instructions,
                                  label=point.describe(),
                                  **self.variants[point.variant])
                for point in self.points()]

    def jobs(self) -> List[SimJob]:
        """The deterministic job batch this sweep expands to."""
        return [scenario.job() for scenario in self.scenarios()]

    def __len__(self) -> int:
        return (len(self.benchmarks) * len(self.policies)
                * len(self.variants))
