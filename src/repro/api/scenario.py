"""Declarative scenarios and parameter-sweep grids.

A :class:`Scenario` is the user-facing description of one simulation —
what to run (a registered workload or attack), under which commit
policy, with which config overrides and free-form ``params`` — validated
against the component registries at construction and lowered to a
content-hashable :class:`~repro.exec.job.SimJob` with :meth:`Scenario.job`.

A :class:`Sweep` expands a cartesian grid of benchmarks x policies x
hardware specs x named config variants (e.g. ROB/LDQ/shadow-sizing
ablations) into a deterministic batch of scenarios, making
parameter-sweep studies a first-class, cacheable API instead of bespoke
scripts::

    sweep = Sweep(benchmarks=["mcf", "xz"],
                  policies=[CommitPolicy.WFC],
                  specs=["skylake-table1", "little-core"],
                  variants={f"rob{n}": {"core.rob_entries": n}
                            for n in (96, 128, 224)})
    result = Session(jobs=4).sweep(sweep)

``specs`` is the hardware axis: preset names (or a mapping of label ->
:class:`~repro.spec.MachineSpec`), each a distinct cache key.  Variant
overrides may name the legacy config axes (``core_config`` etc., whole
config objects) or dotted :meth:`MachineSpec.derive` paths; dotted
overrides apply on top of each spec in the grid.

Expansion order is benchmark-major, then policy, then spec, then
variant (all in the order given), so job batches — and therefore cache
keys, progress lines and result rows — are stable across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Any, Dict, List, Mapping, Optional, Sequence, Union)

from repro.api.registry import ATTACKS, WORKLOADS
from repro.backends import BACKENDS
from repro.core.policy import CommitPolicy
from repro.core.safespec import SafeSpecConfig
from repro.errors import ConfigError
from repro.exec.job import (ATTACK, DEFAULT_INSTRUCTION_BUDGET, WORKLOAD,
                            SimJob, ensure_single_config_style,
                            spec_params)
from repro.memory.hierarchy import HierarchyConfig
from repro.pipeline.config import CoreConfig
from repro.spec import MachineSpec, get_spec

# The legacy config axes a sweep variant may override (whole objects);
# any other key must be a MachineSpec.derive dotted path.
_OVERRIDE_KEYS = ("core_config", "hierarchy_config", "safespec_config")

# Legacy override key -> the spec section it replaces.
_OVERRIDE_SECTIONS = {"core_config": "core",
                      "hierarchy_config": "hierarchy",
                      "safespec_config": "safespec"}

DEFAULT_VARIANT = "default"


@dataclass(frozen=True)
class Scenario:
    """One declarative simulation spec.

    Prefer the validating constructors :meth:`workload` and
    :meth:`attack`; ``params`` carries scenario-kind-specific knobs (an
    attack's planted ``secret``, future workload parameters) and flows
    into the job hash.  ``label`` is a human-readable tag for sweep
    points and progress reporting; it never affects the job hash.
    """

    kind: str
    target: str
    policy: CommitPolicy = CommitPolicy.BASELINE
    instructions: int = DEFAULT_INSTRUCTION_BUDGET
    # hash=False: a dict value would break the generated __hash__
    # (same treatment as SimJob.params); equality still compares it.
    params: Mapping[str, Any] = field(default_factory=dict, hash=False)
    core_config: Optional[CoreConfig] = None
    hierarchy_config: Optional[HierarchyConfig] = None
    safespec_config: Optional[SafeSpecConfig] = None
    spec: Optional[MachineSpec] = None
    backend: str = "cycle"
    serial_group: Optional[str] = None
    label: str = ""

    def __post_init__(self) -> None:
        ensure_single_config_style(self.spec, self.core_config,
                                   self.hierarchy_config,
                                   self.safespec_config)
        BACKENDS.entry(self.backend)    # unknown backends fail here

    @classmethod
    def workload(cls, benchmark: str,
                 policy: CommitPolicy = CommitPolicy.BASELINE, *,
                 instructions: int = DEFAULT_INSTRUCTION_BUDGET,
                 core_config: Optional[CoreConfig] = None,
                 hierarchy_config: Optional[HierarchyConfig] = None,
                 safespec_config: Optional[SafeSpecConfig] = None,
                 spec: Optional[MachineSpec] = None,
                 backend: str = "cycle",
                 label: str = "", **params: Any) -> "Scenario":
        """A scenario running one registered suite benchmark."""
        WORKLOADS.entry(benchmark)      # unknown names fail here, loudly
        return cls(kind=WORKLOAD, target=benchmark, policy=policy,
                   instructions=instructions, params=params,
                   core_config=core_config,
                   hierarchy_config=hierarchy_config,
                   safespec_config=safespec_config, spec=spec,
                   backend=backend, label=label)

    @classmethod
    def attack(cls, name: str,
               policy: CommitPolicy = CommitPolicy.BASELINE, *,
               secret: int = 42,
               instructions: int = DEFAULT_INSTRUCTION_BUDGET,
               spec: Optional[MachineSpec] = None,
               backend: str = "cycle",
               serial_group: Optional[str] = None,
               label: str = "", **params: Any) -> "Scenario":
        """A scenario running one registered attack PoC.

        The planted ``secret`` is ordinary scenario data: it lands in
        ``params`` next to any attack-specific extras.
        """
        ATTACKS.entry(name)
        return cls(kind=ATTACK, target=name, policy=policy,
                   instructions=instructions,
                   params={"secret": secret, **params},
                   spec=spec, backend=backend,
                   serial_group=serial_group, label=label)

    def job(self) -> SimJob:
        """Lower this scenario to its content-hashable job.

        A spec-carrying scenario lowers the spec into the job's
        ``params`` (full dict + digest), so the hardware shape flows
        into the content hash and across executor workers; the
        execution backend lands there too.
        """
        params = dict(self.params)
        params["backend"] = self.backend
        params.update(spec_params(self.spec))
        return SimJob(kind=self.kind, target=self.target, policy=self.policy,
                      instructions=self.instructions,
                      params=params,
                      core_config=self.core_config,
                      hierarchy_config=self.hierarchy_config,
                      safespec_config=self.safespec_config,
                      serial_group=self.serial_group)

    def describe(self) -> str:
        return self.label or self.job().describe()


@dataclass(frozen=True)
class SweepPoint:
    """The grid coordinates of one sweep cell."""

    benchmark: str
    policy: CommitPolicy
    variant: str
    spec: str = DEFAULT_VARIANT
    backend: str = "cycle"

    def describe(self) -> str:
        base = f"{self.benchmark}/{self.policy.value}/{self.variant}"
        if self.spec != DEFAULT_VARIANT:
            base = f"{base}/{self.spec}"
        if self.backend != "cycle":
            base = f"{base}@{self.backend}"
        return base


class Sweep:
    """A cartesian grid of benchmarks x policies x specs x variants.

    ``specs`` is the hardware axis: a sequence of preset names (looked
    up in :data:`repro.spec.SPECS`) or a mapping of label ->
    :class:`~repro.spec.MachineSpec`; omitted, every cell runs the
    unmodified default machine.  ``variants`` maps a variant name to
    the overrides defining it — whole config objects under the legacy
    keys (``core_config``, ``hierarchy_config``, ``safespec_config``)
    or dotted :meth:`MachineSpec.derive` paths (``"core.rob_entries"``),
    which apply on top of each spec in the grid.  ``backends`` is the
    execution-backend axis (:data:`repro.backends.BACKENDS` names, e.g.
    ``("cycle", "fast")``) — one grid cell per backend, each with its
    own cache identity.  Benchmarks, preset names, backend names and
    override paths are validated up front so a typo fails before any
    simulation runs.
    """

    def __init__(self, benchmarks: Sequence[str],
                 policies: Sequence[CommitPolicy] = (CommitPolicy.BASELINE,),
                 instructions: int = DEFAULT_INSTRUCTION_BUDGET,
                 variants: Optional[Mapping[str, Mapping[str, Any]]] = None,
                 specs: Optional[Union[Sequence[str],
                                       Mapping[str, MachineSpec]]] = None,
                 backends: Sequence[str] = ("cycle",),
                 ) -> None:
        if not benchmarks:
            raise ConfigError("sweep needs at least one benchmark")
        if not policies:
            raise ConfigError("sweep needs at least one policy")
        if not backends:
            raise ConfigError("sweep needs at least one backend "
                              "(omit `backends` for the cycle core)")
        if variants is not None and not variants:
            # An explicitly empty axis is a degenerate grid, not a
            # request for the default variant — reject it like the
            # other empty axes instead of silently running defaults.
            raise ConfigError("sweep needs at least one variant "
                              "(omit `variants` for the default)")
        if specs is not None and not specs:
            raise ConfigError("sweep needs at least one spec "
                              "(omit `specs` for the default machine)")
        for benchmark in benchmarks:
            WORKLOADS.entry(benchmark)
        for backend in backends:
            BACKENDS.entry(backend)
        self.benchmarks = list(benchmarks)
        self.policies = list(policies)
        self.backends = list(backends)
        self.instructions = instructions
        # None marks "no spec attached": the cell runs exactly the
        # legacy default-machine job (same cache key as before specs
        # existed).
        self.specs: Dict[str, Optional[MachineSpec]] = {}
        if specs is None:
            self.specs[DEFAULT_VARIANT] = None
        elif isinstance(specs, Mapping):
            for label, spec in specs.items():
                if not isinstance(spec, MachineSpec):
                    raise ConfigError(
                        f"spec {label!r} must be a MachineSpec, "
                        f"got {type(spec).__name__}")
                self.specs[label] = spec
        else:
            for name in specs:
                if not isinstance(name, str):
                    raise ConfigError(
                        "the specs sequence takes preset names; pass a "
                        "mapping of label -> MachineSpec for ad-hoc specs")
                self.specs[name] = get_spec(name)
        self.variants: Dict[str, Dict[str, Any]] = {}
        if variants is None:
            variants = {DEFAULT_VARIANT: {}}
        for name, overrides in variants.items():
            for key in overrides:
                if key not in _OVERRIDE_KEYS:
                    # Dotted derive paths validate structurally here;
                    # value errors surface when scenarios are built.
                    MachineSpec.resolve_path(key)
            self.variants[name] = dict(overrides)

    def points(self) -> List[SweepPoint]:
        """Grid cells in expansion order (benchmark, policy, spec,
        variant, backend)."""
        return [SweepPoint(benchmark, policy, variant, spec, backend)
                for benchmark in self.benchmarks
                for policy in self.policies
                for spec in self.specs
                for variant in self.variants
                for backend in self.backends]

    def _scenario_for(self, point: SweepPoint) -> Scenario:
        base = self.specs[point.spec]
        overrides = self.variants[point.variant]
        legacy = {key: overrides[key] for key in _OVERRIDE_KEYS
                  if key in overrides}
        derived = {key: value for key, value in overrides.items()
                   if key not in _OVERRIDE_KEYS}
        if base is None and not derived:
            # Pure-legacy cell: identical job (and cache key) to a
            # pre-spec sweep.
            return Scenario.workload(point.benchmark, point.policy,
                                     instructions=self.instructions,
                                     backend=point.backend,
                                     label=point.describe(), **legacy)
        spec = base if base is not None else MachineSpec()
        merged = {_OVERRIDE_SECTIONS[key]: value
                  for key, value in legacy.items()}
        merged.update(derived)
        if merged:
            spec = spec.derive(**merged)
        return Scenario.workload(point.benchmark, point.policy,
                                 instructions=self.instructions,
                                 backend=point.backend,
                                 label=point.describe(), spec=spec)

    def scenarios(self) -> List[Scenario]:
        """One workload scenario per grid cell, in :meth:`points` order."""
        return [self._scenario_for(point) for point in self.points()]

    def jobs(self) -> List[SimJob]:
        """The deterministic job batch this sweep expands to."""
        return [scenario.job() for scenario in self.scenarios()]

    def __len__(self) -> int:
        return (len(self.benchmarks) * len(self.policies)
                * len(self.specs) * len(self.variants)
                * len(self.backends))
