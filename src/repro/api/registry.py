"""Component registries: one place where scenarios plug in.

Attacks, workloads and branch predictors used to live in parallel
hand-maintained tables (a dict plus an ``ALL_ATTACKS`` tuple in
``attacks/runner``, ``SUITE_PROFILES`` plus a ``_BY_NAME`` index in
``workloads/profiles``, an if/elif inside :class:`~repro.machine.Machine`).
Adding one scenario meant touching every one of them.  Each component
kind now has a single decorator-based :class:`Registry`:

* :data:`ATTACKS` — ``name -> attack function`` (``(policy, secret) ->
  AttackResult``), with the paper's expected-closed metadata attached at
  registration (``branch_free=True`` marks Meltdown-style leaks that
  need no branch misprediction, which WFB does *not* close).
* :data:`WORKLOADS` — ``name -> WorkloadProfile`` in the paper's
  plotting order.
* :data:`PREDICTORS` — ``name -> predictor class``.

Registries populate lazily: the first lookup imports the built-in
modules, whose registration decorators run as a side effect of the
import.  Registering a new component is therefore one decorated
function/profile in one module — the CLI choices,
:meth:`~repro.api.session.Session.matrix` rows, suite order and
:class:`~repro.machine.Machine` dispatch all derive from the registry.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, NamedTuple, Optional

from repro.errors import ConfigError


class RegistryEntry(NamedTuple):
    """One registered component: its name, value, and free-form metadata."""

    name: str
    value: Any
    metadata: Dict[str, Any]


class Registry:
    """An ordered name -> component mapping with decorator registration.

    ``loader`` is a zero-argument callable importing the modules whose
    registrations populate this registry; it runs (once) before the
    first lookup, so merely importing :mod:`repro.api` stays cheap.
    """

    def __init__(self, kind: str,
                 loader: Optional[Callable[[], None]] = None) -> None:
        self.kind = kind
        self._loader = loader
        self._loaded = loader is None
        self._entries: Dict[str, RegistryEntry] = {}
        # Names registered during the loader run in progress (None
        # outside one); see add() for the retry semantics it enables.
        self._loading_round: Optional[set] = None

    # -- registration ------------------------------------------------------

    def register(self, name: str, **metadata: Any) -> Callable[[Any], Any]:
        """Decorator: register the decorated object under ``name``."""
        def decorator(value: Any) -> Any:
            self.add(name, value, **metadata)
            return value
        return decorator

    def add(self, name: str, value: Any, **metadata: Any) -> Any:
        """Register ``value`` directly (non-decorator form).

        Re-using a name is an error — except when a loader *retry*
        re-executes a module whose earlier registrations survived a
        failed load (Python evicts only the failed module from
        ``sys.modules``): those re-adds replace the stale entry in
        place, keeping its original (table) position.
        """
        if name in self._entries:
            retrying = (self._loading_round is not None
                        and name not in self._loading_round)
            if not retrying:
                raise ConfigError(
                    f"duplicate {self.kind} registration: {name!r} is "
                    f"already registered")
        self._entries[name] = RegistryEntry(name, value, metadata)
        if self._loading_round is not None:
            self._loading_round.add(name)
        return value

    # -- lookup ------------------------------------------------------------

    def _ensure_loaded(self) -> None:
        if not self._loaded:
            # Flag first: the loader's imports re-enter via add().  A
            # failed load rolls the flag back so the registry is never
            # silently stuck half-populated — the next lookup retries
            # (and re-raises) instead of returning a partial catalogue.
            self._loaded = True
            self._loading_round = set()
            try:
                self._loader()
            except BaseException:
                self._loaded = False
                raise
            finally:
                self._loading_round = None

    def entry(self, name: str) -> RegistryEntry:
        """The full entry for ``name`` (value plus metadata)."""
        self._ensure_loaded()
        if name not in self._entries:
            known = ", ".join(self._entries) or "(none)"
            raise ConfigError(
                f"unknown {self.kind} {name!r}; registered: {known}")
        return self._entries[name]

    def get(self, name: str) -> Any:
        """The registered value for ``name``."""
        return self.entry(name).value

    def metadata(self, name: str) -> Dict[str, Any]:
        """The metadata recorded when ``name`` was registered."""
        return dict(self.entry(name).metadata)

    def create(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Instantiate the registered class/factory for ``name``."""
        return self.get(name)(*args, **kwargs)

    def names(self) -> List[str]:
        """Registered names, in registration order."""
        self._ensure_loaded()
        return list(self._entries)

    def __contains__(self, name: object) -> bool:
        self._ensure_loaded()
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._entries)


# ---------------------------------------------------------------------------
# the built-in registries
# ---------------------------------------------------------------------------

def _load_attacks() -> None:
    # The attacks package __init__ is the single place that imports the
    # attack modules, in the paper's Tables III/IV row order — whether
    # the first importer is the API (this loader) or ``repro.attacks``
    # itself, registration order is identical.
    import repro.attacks               # noqa: F401


def _load_workloads() -> None:
    import repro.workloads.profiles    # noqa: F401


def _load_predictors() -> None:
    import repro.frontend.predictors   # noqa: F401


ATTACKS = Registry("attack", loader=_load_attacks)
WORKLOADS = Registry("workload", loader=_load_workloads)
PREDICTORS = Registry("predictor", loader=_load_predictors)


def register_attack(name: str, *,
                    branch_free: bool = False) -> Callable[[Any], Any]:
    """Register an attack entry point (``(policy, secret) -> AttackResult``).

    ``branch_free=True`` marks attacks whose leak needs only a faulting
    load with no unresolved older branch (Meltdown), so WFB promotes the
    transmitting line before the fault is seen at commit; every other
    attack rides a branch misprediction and is closed by WFB and WFC
    alike (paper Table III).
    """
    return ATTACKS.register(name, branch_free=branch_free)


def register_workload(profile: Any) -> Any:
    """Register a workload profile under its own ``name`` attribute."""
    return WORKLOADS.add(profile.name, profile)


def register_predictor(name: str) -> Callable[[Any], Any]:
    """Register a branch-direction predictor class."""
    return PREDICTORS.register(name)


def attack_names() -> List[str]:
    """Registered attack names, in the paper's table order."""
    return ATTACKS.names()


def expected_closed(attack: str, policy: Any) -> bool:
    """Whether the paper says ``policy`` closes ``attack`` (Table III)."""
    if ATTACKS.entry(attack).metadata.get("branch_free"):
        return policy.stops_meltdown
    return policy.stops_spectre
