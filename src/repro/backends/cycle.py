"""The cycle-accurate backend: a thin adapter over ``pipeline.Core``.

Each run builds a fresh single-use :class:`~repro.pipeline.core.Core`
over the machine's persistent state (hierarchy, predictor, BTB,
SafeSpec engine) — exactly what ``Machine.run`` always did before
backends became selectable.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.backends import register_backend
from repro.isa.program import Program
from repro.memory.paging import PrivilegeLevel
from repro.pipeline.core import Core, RunResult


@register_backend("cycle")
class CycleBackend:
    """Full out-of-order, per-cycle simulation (the reference model)."""

    def run(self, machine, program: Program, *,
            max_instructions: Optional[int] = None,
            privilege: PrivilegeLevel = PrivilegeLevel.USER,
            fault_handler_pc: Optional[int] = None,
            initial_registers: Optional[Dict[int, int]] = None,
            start_pc: Optional[int] = None
            ) -> RunResult:
        core = Core(
            program, machine.hierarchy,
            config=machine.core_config,
            predictor=machine.predictor,
            btb=machine.btb,
            rsb=machine.rsb,
            engine=machine.engine,
            privilege=privilege,
            fault_handler_pc=fault_handler_pc,
            initial_registers=initial_registers,
            start_pc=start_pc,
        )
        return core.run(max_instructions=max_instructions)
