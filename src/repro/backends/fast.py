"""The fast-functional backend: lowered closures + windowed speculation.

Instead of simulating every pipeline event, each decoded
:class:`~repro.isa.program.Program` is lowered once into one specialized
Python closure per static instruction (register indices, immediates,
branch targets and memory callbacks pre-resolved) dispatched through a
dense list.  Committed, correctly-predicted code therefore runs at
functional-interpreter speed.

The micro-architecture is engaged exactly where the paper's experiments
need it:

* **Committed memory accesses** go through the real
  :class:`~repro.memory.hierarchy.MemoryHierarchy` (TLBs, caches, page
  walker) — on the SafeSpec policies via a per-access shadow sink whose
  fills are promoted immediately, mirroring what the cycle core's
  access-at-execute + promote-at-commit sequence leaves behind.
* **Branches** consult and train the real direction predictor and BTB
  (property P3), and a misprediction *emulates the wrong path*: the
  predicted-path instructions are interpreted against a scratch register
  file, their cache/TLB fills routed through the policy's fill sink and
  annulled at resolution (property P2).
* **Faults** are raised at commit with the younger window emulated the
  same way; under WFB the faulting access's shadow state is promoted
  before the squash — the paper's Meltdown hole — while WFC annuls it.

Timing is a dataflow scoreboard, not a cycle loop: per-register ready
times, a fetch cursor (fetch width, front-end depth, i-miss stalls), a
commit cursor (commit width), real hierarchy latencies for loads, and
the mispredict penalty.  Cycle counts track the cycle core within the
tolerance documented in the README; architectural state is bit-exact.

Shadow-occupancy histograms are *not* sampled (there is no per-cycle
loop), so Table 5 / occupancy figures require the cycle backend.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.backends import register_backend
from repro.core.policy import CommitPolicy
from repro.errors import SimulationError
from repro.frontend.predictors import BimodalPredictor
from repro.isa.instructions import AluOp, BranchCond, Opcode
from repro.isa.program import Program
from repro.isa.registers import NUM_REGISTERS, to_unsigned
from repro.memory.hierarchy import AccessResult
from repro.memory.paging import PrivilegeLevel
from repro.pipeline.core import FaultEvent, RunResult

_M = (1 << 64) - 1
_T63 = 1 << 63
_T64 = 1 << 64

# counters-list indices, in the cycle core's historical key order
_R, _SQ, _BR, _MIS, _FLT = 0, 1, 2, 3, 4
_DA, _DM, _DL1, _DSH = 5, 6, 7, 8
_IA, _IM, _IL1, _ISH = 9, 10, 11, 12
_FW = 13
_NCOUNTERS = 14
_COUNTER_KEYS = (
    "committed", "squashed", "branches", "mispredicts", "faults",
    "dcache_read_accesses", "dcache_read_misses", "dcache_l1_hits",
    "dcache_shadow_hits", "icache_accesses", "icache_misses",
    "icache_l1_hits", "icache_shadow_hits", "store_forwards",
)

# window-interpreter record opcodes
_W_ALU, _W_LOADIMM, _W_LOAD, _W_STORE = 0, 1, 2, 3
_W_BRANCH, _W_JMP, _W_JMPI, _W_CLFLUSH = 4, 5, 6, 7
_W_STOP, _W_NOP = 8, 9
_W_CALL, _W_RET = 10, 11

_ALU_FN = {
    AluOp.ADD: lambda x, y: x + y,
    AluOp.SUB: lambda x, y: x - y,
    AluOp.MUL: lambda x, y: x * y,
    AluOp.AND: lambda x, y: x & y,
    AluOp.OR: lambda x, y: x | y,
    AluOp.XOR: lambda x, y: x ^ y,
    AluOp.SHL: lambda x, y: x << (y & 63),
    AluOp.SHR: lambda x, y: x >> (y & 63),
}


def _compile_alu_steps():
    """Step factories with the ALU operator inlined, one per (op, form).

    Compiled once at import.  Each factory builds the same closure as the
    generic ALU arm of ``_lower_one`` — identical scoreboard math and
    result masking — with the operator expression substituted in place of
    the ``_ALU_FN`` lambda call, and every captured name bound as a
    default argument.  On ALU-dense workloads that one dynamic call per
    committed instruction is a measurable share of the dispatch loop.

    MUL stays on the generic arm (different latency, rare), as does any
    op without an entry here.  ``rhs`` doubles as the second register
    index in the register form; shift immediates arrive pre-masked.
    """
    exprs = {
        AluOp.ADD: ("regs[a] + regs[rhs]", "regs[a] + rhs"),
        AluOp.SUB: ("regs[a] - regs[rhs]", "regs[a] - rhs"),
        AluOp.AND: ("regs[a] & regs[rhs]", "regs[a] & rhs"),
        AluOp.OR: ("regs[a] | regs[rhs]", "regs[a] | rhs"),
        AluOp.XOR: ("regs[a] ^ regs[rhs]", "regs[a] ^ rhs"),
        AluOp.SHL: ("regs[a] << (regs[rhs] & 63)", "regs[a] << rhs"),
        AluOp.SHR: ("regs[a] >> (regs[rhs] & 63)", "regs[a] >> rhs"),
    }
    reg_dep = ("        t = rt[rhs]\n"
               "        if t > s:\n"
               "            s = t\n")
    template = """\
def factory(backend, rd, a, rhs, lat, LN, PC, nxt):
    def step(rd=rd, a=a, rhs=rhs, lat=lat, LN=LN, PC=PC, nxt=nxt,
             regs=backend.regs, rt=backend.rt, tm=backend.tm,
             cn=backend.cn, il=backend.il, ifetch=backend._ifetch,
             fs=backend._fs, cs=backend._cs, depth=backend._depth):
        if il[0] != LN:
            ifetch(LN, PC)
        regs[rd] = ({expr}) & _M
        f = tm[0] + fs
        tm[0] = f
        s = f + depth
        t = rt[a]
        if t > s:
            s = t
{dep}        d = s + lat
        rt[rd] = d
        c = tm[1] + cs
        if d + 1.0 > c:
            c = d + 1.0
        tm[1] = c
        cn[0] += 1
        return nxt
    return step
"""
    factories = {}
    for alu_op, (reg_expr, imm_expr) in exprs.items():
        for is_reg, expr, dep in ((True, reg_expr, reg_dep),
                                  (False, imm_expr, "")):
            namespace = {"_M": _M}
            exec(template.format(expr=expr, dep=dep), namespace)
            factories[alu_op, is_reg] = namespace["factory"]
    return factories


_ALU_STEPS = _compile_alu_steps()


class _Standin:
    """Minimal micro-op stand-in for the SafeSpec engine's hooks."""

    __slots__ = ("seq", "promoted")

    def __init__(self, seq: int) -> None:
        self.seq = seq
        self.promoted = False


@register_backend("fast")
class FastBackend:
    """Lowered-closure functional core with windowed speculation."""

    _CACHE_CAP = 8   # lowered programs kept per backend instance

    def __init__(self) -> None:
        self._machine = None
        self._cache: Dict[int, tuple] = {}
        self._seq = 0
        # Mutable cells shared with the lowered closures (reset per run).
        self.regs: List[int] = [0] * NUM_REGISTERS
        self.rt: List[float] = [0.0] * NUM_REGISTERS
        self.tm: List[float] = [0.0, 0.0]        # fetch cursor, commit cursor
        self.cn: List[int] = [0] * _NCOUNTERS
        # [last committed i-line, its vpn, its physical page base].  The
        # vpn/page pair caches the committed-path i-translation: i-side
        # TLB state only moves on a page change, a fault redirect or a
        # speculative window, each of which resets il[1] to -1.
        self.il: List[int] = [-1, -1, 0]
        self.privilege = PrivilegeLevel.USER
        self.reason = ""
        self.fault_events: List[FaultEvent] = []
        self._handler_idx: Optional[int] = None

    # ------------------------------------------------------------------
    # machine binding
    # ------------------------------------------------------------------

    def _bind(self, machine) -> None:
        if machine is self._machine:
            return
        self._machine = machine
        self._cache.clear()
        cfg = machine.core_config
        self.hier = machine.hierarchy
        self.predictor = machine.predictor
        self.btb = machine.btb
        self.engine = machine.engine
        self.policy = machine.policy
        self._wfb = machine.policy is CommitPolicy.WFB
        self.rsb = machine.rsb
        self._mds = cfg.mem_dep_speculation
        # BHB off (the default) → a static branch's BTB index never
        # changes and the branch closures may inline raw target-dict
        # accesses at a precomputed index.  BHB on → every index folds
        # in the run-time global history, so the closures fall back to
        # the BranchTargetBuffer methods.
        self._plain_btb = machine.btb.config.history_bits == 0
        self._fs = 1.0 / cfg.fetch_width
        self._cs = 1.0 / cfg.commit_width
        self._depth = float(cfg.front_end_depth)
        self._alat = float(cfg.alu_latency)
        self._mlat = float(cfg.mul_latency)
        self._pen = float(cfg.mispredict_penalty)
        self._fwid = cfg.fetch_width
        self._rob = cfg.rob_entries
        self._maxc = float(cfg.max_cycles)
        self._i_hit = float(self.hier.config.l1i.hit_latency)
        self._d_hit = self.hier.config.l1d.hit_latency
        self._l2_lat = float(self.hier.config.l2.hit_latency)
        self._tlb_hit = self.hier.config.dtlb.hit_latency
        # Pre-bound hot-path methods (one attribute walk instead of three
        # on every committed fetch/load).
        hier = self.hier
        self._itlb_lookup = hier.itlb.lookup
        self._itlb_peek = hier.itlb.peek
        self._itlb_refresh = hier.itlb.refresh
        self._l1i_touch = hier.l1i.touch
        self._l1i_refresh = hier.l1i.refresh
        self._l2_refresh = hier.l2.refresh
        self._l3_refresh = hier.l3.refresh
        self._fetch_access = hier.fetch_access
        # Raw structure views for the committed hit paths.  The recency
        # refreshes there reduce to "if present, move to MRU" on the
        # underlying per-set OrderedDicts; going through Cache.refresh /
        # Tlb.refresh costs a call per level per access, which dominates
        # the closures' own work.  Geometry is frozen at bind time (the
        # hierarchy cannot be reshaped mid-run).
        self._itlb_entries = hier.itlb._entries
        self._dtlb_entries = hier.dtlb._entries
        self._l1i_geo = (hier.l1i._sets, hier.l1i._line_mask,
                         hier.l1i._set_shift, hier.l1i._set_mask)
        self._l1d_geo = (hier.l1d._sets, hier.l1d._line_mask,
                         hier.l1d._set_shift, hier.l1d._set_mask)
        self._l2_geo = (hier.l2._sets, hier.l2._line_mask,
                        hier.l2._set_shift, hier.l2._set_mask)
        self._l3_geo = (hier.l3._sets, hier.l3._line_mask,
                        hier.l3._set_shift, hier.l3._set_mask)

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # ------------------------------------------------------------------
    # run
    # ------------------------------------------------------------------

    def run(self, machine, program: Program, *,
            max_instructions: Optional[int] = None,
            privilege: PrivilegeLevel = PrivilegeLevel.USER,
            fault_handler_pc: Optional[int] = None,
            initial_registers: Optional[Dict[int, int]] = None,
            start_pc: Optional[int] = None
            ) -> RunResult:
        self._bind(machine)
        steps, _ = self._lowered(program)
        n = len(steps)
        self._program = program
        regs = self.regs
        rt = self.rt
        for i in range(NUM_REGISTERS):
            regs[i] = 0
            rt[i] = 0.0
        for reg, value in (initial_registers or {}).items():
            regs[reg] = to_unsigned(value)
        tm = self.tm
        tm[0] = 0.0
        tm[1] = 0.0
        cn = self.cn
        for i in range(_NCOUNTERS):
            cn[i] = 0
        self.il[0] = -1
        self.il[1] = -1
        self.privilege = privilege
        self.reason = ""
        self.fault_events = []
        self._handler_idx = self._index_or_end(program, fault_handler_pc)
        budget = max_instructions if max_instructions is not None \
            else float("inf")

        start = self._index_or_end(program, start_pc)
        i = 0 if start is None else start
        while True:
            if i >= n:
                self.reason = "ran_off_code"
                break
            i = steps[i]()
            if i < 0:
                break
            if cn[_R] >= budget:
                self.reason = "budget"
                break

        # On a budget stop ``i`` already indexes the next instruction
        # (every committed step retires exactly one), which is the
        # resume point checkpointing records.
        next_pc = (program.code_base + (i << 4)
                   if self.reason == "budget" else None)
        counters = dict(zip(_COUNTER_KEYS, cn))
        cycles = int(tm[1]) + 1
        counters["cycles"] = cycles
        return RunResult(
            cycles=cycles,
            instructions=cn[_R],
            registers=tuple(regs),
            halted_reason=self.reason,
            fault_events=list(self.fault_events),
            counters=counters,
            next_pc=next_pc,
        )

    def _index_or_end(self, program: Program,
                      pc: Optional[int]) -> Optional[int]:
        """Instruction index for a redirect PC; past-the-end (→ the main
        loop's ran_off_code) when the PC leaves the code image."""
        if pc is None:
            return None
        off = pc - program.code_base
        size = len(program.instructions) << 4
        if 0 <= off < size and not off & 15:
            return off >> 4
        return len(program.instructions)

    # ------------------------------------------------------------------
    # lowering
    # ------------------------------------------------------------------

    def _lowered(self, program: Program):
        """The per-program dispatch lists, built lazily.

        ``steps`` starts as self-replacing trampolines: an instruction is
        lowered to its specialized closure the first time it executes —
        code-heavy programs commit only a fraction of their static
        instructions, so eager lowering would dominate short runs.
        ``win`` records fill in on first speculative-window visit.
        """
        key = id(program)
        hit = self._cache.get(key)
        if hit is not None and hit[0] is program:
            return hit[1], hit[2]
        if len(self._cache) >= self._CACHE_CAP:
            self._cache.pop(next(iter(self._cache)))
        instructions = program.instructions
        n = len(instructions)
        steps: list = [None] * n
        win: list = [None] * n
        lower_one = self._lower_one
        for idx in range(n):
            def tramp(idx=idx):
                step = lower_one(program, idx, instructions[idx])
                steps[idx] = step
                return step()
            steps[idx] = tramp
        self._cache[key] = (program, steps, win)
        return steps, win

    def _win_record(self, program: Program, idx: int, inst):
        op = inst.opcode
        imm_u = to_unsigned(inst.imm) if inst.imm is not None else 0
        imm_raw = inst.imm or 0
        if op is Opcode.ALU:
            return (_W_ALU, inst.rd, inst.rs1, inst.rs2, imm_u,
                    0, _ALU_FN[inst.alu_op])
        if op is Opcode.LOADIMM:
            return (_W_LOADIMM, inst.rd, 0, None, imm_u, 0, None)
        if op is Opcode.LOAD:
            return (_W_LOAD, inst.rd, inst.rs1, None, imm_raw, 0, None)
        if op is Opcode.STORE:
            return (_W_STORE, 0, inst.rs1, inst.rs2, imm_raw, 0, None)
        if op is Opcode.BRANCH:
            return (_W_BRANCH, 0, inst.rs1, inst.rs2, 0,
                    inst.target, inst.cond)
        if op is Opcode.JMP:
            return (_W_JMP, 0, 0, None, 0, inst.target, None)
        if op is Opcode.JMPI:
            return (_W_JMPI, 0, inst.rs1, None, 0, 0, None)
        if op is Opcode.CALL:
            return (_W_CALL, inst.rd, 0, None, 0, inst.target, None)
        if op is Opcode.RET:
            return (_W_RET, 0, inst.rs1, None, 0, 0, None)
        if op is Opcode.CLFLUSH:
            return (_W_CLFLUSH, 0, inst.rs1, None, imm_raw, 0, None)
        if op is Opcode.NOP:
            return (_W_NOP, 0, 0, None, 0, 0, None)
        return (_W_STOP, 0, 0, None, 0, 0, None)   # RDTSC/FENCE/HALT

    def _lower_one(self, program: Program, idx: int, inst):
        """Build the committed-path closure for one static instruction."""
        pc = program.code_base + (idx << 4)
        line = pc & ~63
        nxt = idx + 1
        regs, rt, tm, cn, il = self.regs, self.rt, self.tm, self.cn, self.il
        fs, cs, depth = self._fs, self._cs, self._depth
        ifetch = self._ifetch
        op = inst.opcode

        if op is Opcode.ALU:
            rd, a, b = inst.rd, inst.rs1, inst.rs2
            factory = _ALU_STEPS.get((inst.alu_op, b is not None))
            if factory is not None:
                rhs = b if b is not None else to_unsigned(inst.imm)
                if b is None and inst.alu_op in (AluOp.SHL, AluOp.SHR):
                    rhs &= 63
                return factory(self, rd, a, rhs, self._alat, line, pc, nxt)
            fn = _ALU_FN[inst.alu_op]
            lat = self._mlat if inst.alu_op is AluOp.MUL else self._alat
            if b is not None:
                def step(rd=rd, a=a, b=b, fn=fn, lat=lat, LN=line, PC=pc):
                    if il[0] != LN:
                        ifetch(LN, PC)
                    regs[rd] = fn(regs[a], regs[b]) & _M
                    f = tm[0] + fs
                    tm[0] = f
                    s = f + depth
                    t = rt[a]
                    if t > s:
                        s = t
                    t = rt[b]
                    if t > s:
                        s = t
                    d = s + lat
                    rt[rd] = d
                    c = tm[1] + cs
                    if d + 1.0 > c:
                        c = d + 1.0
                    tm[1] = c
                    cn[0] += 1
                    return nxt
            else:
                rhs = to_unsigned(inst.imm)
                def step(rd=rd, a=a, rhs=rhs, fn=fn, lat=lat, LN=line, PC=pc):
                    if il[0] != LN:
                        ifetch(LN, PC)
                    regs[rd] = fn(regs[a], rhs) & _M
                    f = tm[0] + fs
                    tm[0] = f
                    s = f + depth
                    t = rt[a]
                    if t > s:
                        s = t
                    d = s + lat
                    rt[rd] = d
                    c = tm[1] + cs
                    if d + 1.0 > c:
                        c = d + 1.0
                    tm[1] = c
                    cn[0] += 1
                    return nxt
            return step

        if op is Opcode.LOADIMM:
            rd = inst.rd
            value = to_unsigned(inst.imm)
            lat = self._alat
            def step(rd=rd, value=value, lat=lat, LN=line, PC=pc):
                if il[0] != LN:
                    ifetch(LN, PC)
                regs[rd] = value
                f = tm[0] + fs
                tm[0] = f
                d = f + depth + lat
                rt[rd] = d
                c = tm[1] + cs
                if d + 1.0 > c:
                    c = d + 1.0
                tm[1] = c
                cn[0] += 1
                return nxt
            return step

        if op is Opcode.LOAD:
            return self._lower_load(inst, idx, pc, line, nxt)
        if op is Opcode.STORE:
            return self._lower_store(inst, idx, pc, line, nxt)
        if op in (Opcode.BRANCH, Opcode.JMP, Opcode.JMPI,
                  Opcode.CALL, Opcode.RET):
            return self._lower_branch(program, inst, idx, pc, line, nxt)

        if op is Opcode.CLFLUSH:
            a = inst.rs1
            imm = inst.imm or 0
            flush = self._commit_clflush
            def step(a=a, imm=imm, LN=line, PC=pc):
                if il[0] != LN:
                    ifetch(LN, PC)
                va = (regs[a] + imm) & _M
                flush(va)
                f = tm[0] + fs
                tm[0] = f
                s = f + depth
                t = rt[a]
                if t > s:
                    s = t
                d = s + 1.0
                c = tm[1] + cs
                if d + 1.0 > c:
                    c = d + 1.0
                tm[1] = c
                cn[0] += 1
                return nxt
            return step

        if op is Opcode.RDTSC:
            rd = inst.rd
            def step(rd=rd, LN=line, PC=pc):
                if il[0] != LN:
                    ifetch(LN, PC)
                f = tm[0] + fs
                tm[0] = f
                s = f + depth
                if tm[1] > s:           # serialising: waits for ROB head
                    s = tm[1]
                regs[rd] = int(s) & _M
                d = s + 1.0
                rt[rd] = d
                c = tm[1] + cs
                if d + 1.0 > c:
                    c = d + 1.0
                tm[1] = c
                cn[0] += 1
                return nxt
            return step

        if op is Opcode.FENCE:
            def step(LN=line, PC=pc):
                if il[0] != LN:
                    ifetch(LN, PC)
                f = tm[0] + fs
                tm[0] = f
                s = f + depth
                if tm[1] > s:           # issue barrier + serialising
                    s = tm[1]
                d = s + 1.0
                if d > tm[0]:
                    tm[0] = d
                c = tm[1] + cs
                if d + 1.0 > c:
                    c = d + 1.0
                tm[1] = c
                cn[0] += 1
                return nxt
            return step

        if op is Opcode.HALT:
            backend = self
            def step(LN=line, PC=pc):
                if il[0] != LN:
                    ifetch(LN, PC)
                f = tm[0] + fs
                tm[0] = f
                d = f + depth + 1.0
                c = tm[1] + cs
                if d + 1.0 > c:
                    c = d + 1.0
                tm[1] = c
                cn[0] += 1
                backend.reason = "halt"
                return -1
            return step

        # NOP
        def step(LN=line, PC=pc):
            if il[0] != LN:
                ifetch(LN, PC)
            f = tm[0] + fs
            tm[0] = f
            c = tm[1] + cs
            d = f + depth + 1.0
            if d + 1.0 > c:
                c = d + 1.0
            tm[1] = c
            cn[0] += 1
            return nxt
        return step

    # ------------------------------------------------------------------
    # memory closures
    # ------------------------------------------------------------------

    def _lower_load(self, inst, idx, pc, line, nxt):
        regs, rt, tm, cn, il = self.regs, self.rt, self.tm, self.cn, self.il
        fs, cs, depth = self._fs, self._cs, self._depth
        ifetch = self._ifetch
        rd, a = inst.rd, inst.rs1
        imm = inst.imm or 0
        hier = self.hier
        mem_read = hier.memory.read_word
        l1d = hier.l1d
        lat_hit = float(self._tlb_hit + self._d_hit)
        slow = self._load_slow
        if self.engine is None:
            # Inlined dtlb.lookup + l1d.touch: identical LRU updates and
            # hit/miss statistics, one call each fewer per load.
            dtlb = self._dtlb_entries
            tlb_hits = hier.dtlb._hits
            tlb_misses = hier.dtlb._misses
            s1, m1, h1, k1 = self._l1d_geo
            l1_hits = l1d._hits
            l1_misses = l1d._misses
            words = hier.memory._words
            def step(rd=rd, a=a, imm=imm, LN=line, PC=pc):
                if il[0] != LN:
                    ifetch(LN, PC)
                va = (regs[a] + imm) & _M
                f = tm[0] + fs
                tm[0] = f
                s = f + depth
                t = rt[a]
                if t > s:
                    s = t
                vpn = va >> 12
                trans = dtlb.get(vpn)
                if trans is not None:
                    dtlb.move_to_end(vpn)
                    tlb_hits.value += 1
                    p = trans.permissions
                    if p.readable and not p.supervisor_only:
                        paddr = (trans.ppn << 12) | (va & 4095)
                        ln = paddr & m1
                        st = s1[(paddr >> h1) & k1]
                        if ln in st:
                            st.move_to_end(ln)
                            l1_hits.value += 1
                            cn[5] += 1
                            cn[7] += 1
                            regs[rd] = words.get(paddr >> 3, 0) \
                                if not paddr & 7 else mem_read(paddr)
                            d = s + lat_hit
                            rt[rd] = d
                            c = tm[1] + cs
                            if d + 1.0 > c:
                                c = d + 1.0
                            tm[1] = c
                            cn[0] += 1
                            return nxt
                        l1_misses.value += 1
                else:
                    tlb_misses.value += 1
                return slow(nxt, PC, rd, va, s)
            return step

        # The committed L1-hit path inlines the peek/refresh chain onto
        # the raw cache sets — same state transitions as
        # dtlb.peek/refresh + Cache.refresh, without five calls per load.
        dtlb = self._dtlb_entries
        s1, m1, h1, k1 = self._l1d_geo
        s2, m2, h2, k2 = self._l2_geo
        s3, m3, h3, k3 = self._l3_geo
        words = hier.memory._words
        def step(rd=rd, a=a, imm=imm, LN=line, PC=pc):
            if il[0] != LN:
                ifetch(LN, PC)
            va = (regs[a] + imm) & _M
            f = tm[0] + fs
            tm[0] = f
            s = f + depth
            t = rt[a]
            if t > s:
                s = t
            vpn = va >> 12
            trans = dtlb.get(vpn)
            if trans is not None:
                p = trans.permissions
                if p.readable and not p.supervisor_only:
                    paddr = (trans.ppn << 12) | (va & 4095)
                    ln = paddr & m1
                    st = s1[(paddr >> h1) & k1]
                    if ln in st:
                        st.move_to_end(ln)
                        cn[5] += 1
                        cn[7] += 1
                        dtlb.move_to_end(vpn)
                        ln = paddr & m2
                        st = s2[(paddr >> h2) & k2]
                        if ln in st:
                            st.move_to_end(ln)
                        ln = paddr & m3
                        st = s3[(paddr >> h3) & k3]
                        if ln in st:
                            st.move_to_end(ln)
                        regs[rd] = words.get(paddr >> 3, 0) \
                            if not paddr & 7 else mem_read(paddr)
                        d = s + lat_hit
                        rt[rd] = d
                        c = tm[1] + cs
                        if d + 1.0 > c:
                            c = d + 1.0
                        tm[1] = c
                        cn[0] += 1
                        return nxt
            return slow(nxt, PC, rd, va, s)
        return step

    def _lower_store(self, inst, idx, pc, line, nxt):
        if self._mds:
            return self._lower_store_memdep(inst, idx, pc, line, nxt)
        regs, rt, tm, cn, il = self.regs, self.rt, self.tm, self.cn, self.il
        fs, cs, depth = self._fs, self._cs, self._depth
        ifetch = self._ifetch
        a, b = inst.rs1, inst.rs2
        imm = inst.imm or 0
        hier = self.hier
        commit_store = hier.commit_store
        slow = self._store_slow
        if self.engine is None:
            # Inlined dtlb.lookup + permissions.allows(write, USER).
            dtlb = self._dtlb_entries
            tlb_hits = hier.dtlb._hits
            tlb_misses = hier.dtlb._misses
            def step(a=a, b=b, imm=imm, LN=line, PC=pc):
                if il[0] != LN:
                    ifetch(LN, PC)
                va = (regs[a] + imm) & _M
                f = tm[0] + fs
                tm[0] = f
                s = f + depth
                t = rt[a]
                if t > s:
                    s = t
                t = rt[b]
                if t > s:
                    s = t
                vpn = va >> 12
                trans = dtlb.get(vpn)
                if trans is not None:
                    dtlb.move_to_end(vpn)
                    tlb_hits.value += 1
                    p = trans.permissions
                    if p.writable and not p.supervisor_only:
                        commit_store((trans.ppn << 12) | (va & 4095),
                                     regs[b])
                        d = s + 1.0
                        c = tm[1] + cs
                        if d + 1.0 > c:
                            c = d + 1.0
                        tm[1] = c
                        cn[0] += 1
                        return nxt
                else:
                    tlb_misses.value += 1
                return slow(nxt, PC, va, regs[b], s)
            return step

        # Inlined dtlb.peek/refresh + permissions.allows(write, USER).
        dtlb = self._dtlb_entries
        def step(a=a, b=b, imm=imm, LN=line, PC=pc):
            if il[0] != LN:
                ifetch(LN, PC)
            va = (regs[a] + imm) & _M
            f = tm[0] + fs
            tm[0] = f
            s = f + depth
            t = rt[a]
            if t > s:
                s = t
            t = rt[b]
            if t > s:
                s = t
            vpn = va >> 12
            trans = dtlb.get(vpn)
            if trans is not None:
                p = trans.permissions
                if p.writable and not p.supervisor_only:
                    commit_store((trans.ppn << 12) | (va & 4095), regs[b])
                    dtlb.move_to_end(vpn)
                    d = s + 1.0
                    c = tm[1] + cs
                    if d + 1.0 > c:
                        c = d + 1.0
                    tm[1] = c
                    cn[0] += 1
                    return nxt
            return slow(nxt, PC, va, regs[b], s)
        return step

    def _lower_store_memdep(self, inst, idx, pc, line, nxt):
        """Store under memory-dependence speculation (Spectre v4).

        When the address operand resolves late (slower than an L2 hit),
        the cycle core's speculating LSQ lets younger loads issue past
        the unresolved store and consume *pre-store* memory before the
        squash-on-conflict replay corrects them.  Here that bypass runs
        as a speculative window over the following committed stream
        against the stale memory image, then the store commits and the
        real stream re-executes — architectural state matches the
        replayed cycle run, the window's fills are the v4 transmission.
        Under WFB the in-flight loads carry no branch dependence, so
        their shadow state promotes (the window is a *fault-style*
        promote window); WFC annuls it.
        """
        regs, rt, tm, cn, il = self.regs, self.rt, self.tm, self.cn, self.il
        fs, cs, depth = self._fs, self._cs, self._depth
        pen, fwid, rob, maxc = self._pen, self._fwid, self._rob, self._maxc
        ifetch = self._ifetch
        a, b = inst.rs1, inst.rs2
        imm = inst.imm or 0
        slow = self._store_slow
        backend = self
        l2_lat = self._l2_lat
        def step(a=a, b=b, imm=imm, LN=line, PC=pc):
            if il[0] != LN:
                ifetch(LN, PC)
            va = (regs[a] + imm) & _M
            f = tm[0] + fs
            tm[0] = f
            s = f + depth
            t = rt[a]
            if t > s:
                s = t
            t = rt[b]
            if t > s:
                s = t
            late = rt[a] - (f + depth)
            if late > l2_lat:
                bud = int(late * fwid)
                if bud > rob:
                    bud = rob
                backend._spec_run(nxt, list(regs), bud,
                                  promote=backend._wfb)
                # Squash-on-conflict replay: redirect penalty, i-side
                # state perturbed by the window.
                tm[0] = s + 1.0 + pen
                il[0] = -1
                il[1] = -1
            r = slow(nxt, PC, va, regs[b], s)
            if tm[1] > maxc:
                raise SimulationError(f"exceeded max_cycles={int(maxc)}")
            return r
        return step

    # ------------------------------------------------------------------
    # branch closures
    # ------------------------------------------------------------------

    def _lower_branch(self, program, inst, idx, pc, line, nxt):
        regs, rt, tm, cn, il = self.regs, self.rt, self.tm, self.cn, self.il
        fs, cs, depth = self._fs, self._cs, self._depth
        pen, fwid, rob, maxc = self._pen, self._fwid, self._rob, self._maxc
        ifetch = self._ifetch
        window = self._window
        backend = self
        op = inst.opcode

        # The BTB index of a static branch never changes, so every
        # lookup/update below is inlined onto the raw target dict with
        # a precomputed index — same state transitions and statistics as
        # BranchTargetBuffer.predict_target/update, without a method
        # call per committed branch.
        btb = self.btb
        btb_targets = btb._targets
        btb_index = (pc >> btb.config.shift) & (btb.config.entries - 1)
        btb_lookups, btb_hits = btb._lookups, btb._hits
        btb_updates = btb._updates

        if op is Opcode.JMP:
            tgt_idx = inst.target
            tgt_pc = program.pc_of(tgt_idx)
            if not self._plain_btb:
                btb_update = btb.update
                def step(LN=line, PC=pc, tgt_pc=tgt_pc, tgt_idx=tgt_idx,
                         btb_update=btb_update):
                    if il[0] != LN:
                        ifetch(LN, PC)
                    cn[2] += 1
                    btb_update(PC, tgt_pc)
                    f = tm[0] + fs
                    tm[0] = f
                    d = f + depth + 1.0
                    c = tm[1] + cs
                    if d + 1.0 > c:
                        c = d + 1.0
                    tm[1] = c
                    cn[0] += 1
                    if tm[1] > maxc:
                        raise SimulationError(
                            f"exceeded max_cycles={int(maxc)}")
                    return tgt_idx
                return step
            def step(LN=line, PC=pc, tgt_pc=tgt_pc, tgt_idx=tgt_idx,
                     TI=btb_index):
                if il[0] != LN:
                    ifetch(LN, PC)
                cn[2] += 1
                btb_updates.value += 1
                btb_targets[TI] = tgt_pc
                f = tm[0] + fs
                tm[0] = f
                d = f + depth + 1.0
                c = tm[1] + cs
                if d + 1.0 > c:
                    c = d + 1.0
                tm[1] = c
                cn[0] += 1
                # No il reset: a cross-line target differs from il[0] and
                # refetches via the target's own prologue; a same-line
                # target needs no refetch (the cycle core's commit-time
                # refresh is gated per distinct line, so it would not
                # touch recency again either).
                if tm[1] > maxc:
                    raise SimulationError(
                        f"exceeded max_cycles={int(maxc)}")
                return tgt_idx
            return step

        if op is Opcode.JMPI:
            a = inst.rs1
            code_base = program.code_base
            size = len(program.instructions) << 4
            if not self._plain_btb:
                btb_predict = btb.predict_target
                btb_update = btb.update
                def step(a=a, LN=line, PC=pc,
                         btb_predict=btb_predict, btb_update=btb_update):
                    if il[0] != LN:
                        ifetch(LN, PC)
                    tgt = regs[a]
                    pred = btb_predict(PC)
                    cn[2] += 1
                    btb_update(PC, tgt)
                    f = tm[0] + fs
                    tm[0] = f
                    s = f + depth
                    t = rt[a]
                    if t > s:
                        s = t
                    d = s + 1.0
                    c = tm[1] + cs
                    if d + 1.0 > c:
                        c = d + 1.0
                    tm[1] = c
                    cn[0] += 1
                    if pred != tgt:
                        cn[3] += 1
                        bud = int((d - f - depth) * fwid) + fwid
                        if bud > rob:
                            bud = rob
                        if pred is None:
                            window(nxt, bud)
                        else:
                            poff = pred - code_base
                            if 0 <= poff < size and not poff & 15:
                                window(poff >> 4, bud)
                        tm[0] = d + pen
                        # The window may have perturbed i-side state.
                        il[0] = -1
                        il[1] = -1
                    if tm[1] > maxc:
                        raise SimulationError(
                            f"exceeded max_cycles={int(maxc)}")
                    off = tgt - code_base
                    if 0 <= off < size and not off & 15:
                        return off >> 4
                    backend.reason = "ran_off_code"
                    return -1
                return step
            def step(a=a, LN=line, PC=pc, TI=btb_index):
                if il[0] != LN:
                    ifetch(LN, PC)
                tgt = regs[a]
                btb_lookups.value += 1
                pred = btb_targets.get(TI)
                if pred is not None:
                    btb_hits.value += 1
                cn[2] += 1
                btb_updates.value += 1
                btb_targets[TI] = tgt
                f = tm[0] + fs
                tm[0] = f
                s = f + depth
                t = rt[a]
                if t > s:
                    s = t
                d = s + 1.0
                c = tm[1] + cs
                if d + 1.0 > c:
                    c = d + 1.0
                tm[1] = c
                cn[0] += 1
                if pred != tgt:
                    cn[3] += 1
                    bud = int((d - f - depth) * fwid) + fwid
                    if bud > rob:
                        bud = rob
                    if pred is None:
                        window(nxt, bud)
                    else:
                        poff = pred - code_base
                        if 0 <= poff < size and not poff & 15:
                            window(poff >> 4, bud)
                    tm[0] = d + pen
                    # The window may have perturbed i-side state.
                    il[0] = -1
                    il[1] = -1
                if tm[1] > maxc:
                    raise SimulationError(
                        f"exceeded max_cycles={int(maxc)}")
                off = tgt - code_base
                if 0 <= off < size and not off & 15:
                    return off >> 4
                backend.reason = "ran_off_code"
                return -1
            return step

        if op is Opcode.CALL:
            # Direct target: never mispredicts (pred == actual by
            # construction, as in the cycle core).  Pushes the return
            # address onto the RSB and installs the target in the BTB.
            rd = inst.rd
            tgt_idx = inst.target
            tgt_pc = program.pc_of(tgt_idx)
            link = pc + 16
            rsb_push = self.rsb.push
            plain = self._plain_btb
            btb_update = btb.update
            def step(rd=rd, LN=line, PC=pc, link=link, tgt_pc=tgt_pc,
                     tgt_idx=tgt_idx, TI=btb_index, rsb_push=rsb_push,
                     plain=plain, btb_update=btb_update):
                if il[0] != LN:
                    ifetch(LN, PC)
                cn[2] += 1
                rsb_push(link)
                if plain:
                    btb_updates.value += 1
                    btb_targets[TI] = tgt_pc
                else:
                    btb_update(PC, tgt_pc)
                regs[rd] = link
                f = tm[0] + fs
                tm[0] = f
                d = f + depth + 1.0
                rt[rd] = d
                c = tm[1] + cs
                if d + 1.0 > c:
                    c = d + 1.0
                tm[1] = c
                cn[0] += 1
                if tm[1] > maxc:
                    raise SimulationError(
                        f"exceeded max_cycles={int(maxc)}")
                return tgt_idx
            return step

        if op is Opcode.RET:
            # Predicted by the RSB, never installed in the BTB.  An
            # empty RSB predicts fall-through and is *always* a
            # mispredict (actual-taken vs predicted-not-taken), matching
            # the cycle core's resolve rule — the ret2spec underflow.
            a = inst.rs1
            code_base = program.code_base
            size = len(program.instructions) << 4
            rsb_pop = self.rsb.pop
            def step(a=a, LN=line, PC=pc, rsb_pop=rsb_pop):
                if il[0] != LN:
                    ifetch(LN, PC)
                pred = rsb_pop()
                tgt = regs[a]
                cn[2] += 1
                f = tm[0] + fs
                tm[0] = f
                s = f + depth
                t = rt[a]
                if t > s:
                    s = t
                d = s + 1.0
                c = tm[1] + cs
                if d + 1.0 > c:
                    c = d + 1.0
                tm[1] = c
                cn[0] += 1
                if pred == 0 or pred != tgt:
                    cn[3] += 1
                    bud = int((d - f - depth) * fwid) + fwid
                    if bud > rob:
                        bud = rob
                    if pred == 0:
                        window(nxt, bud)
                    else:
                        poff = pred - code_base
                        if 0 <= poff < size and not poff & 15:
                            window(poff >> 4, bud)
                    tm[0] = d + pen
                    # The window may have perturbed i-side state.
                    il[0] = -1
                    il[1] = -1
                if tm[1] > maxc:
                    raise SimulationError(
                        f"exceeded max_cycles={int(maxc)}")
                off = tgt - code_base
                if 0 <= off < size and not off & 15:
                    return off >> 4
                backend.reason = "ran_off_code"
                return -1
            return step

        # conditional BRANCH
        a, b = inst.rs1, inst.rs2
        cond = inst.cond
        tgt_idx = inst.target
        tgt_pc = program.pc_of(tgt_idx)
        predictor = self.predictor
        if type(predictor) is BimodalPredictor and self._plain_btb:
            # Same specialization as the BTB above: the 2-bit counter a
            # static branch trains never moves, so predict/update become
            # a read and a saturating write at a precomputed index —
            # state transitions and statistics identical to
            # BimodalPredictor.predict/update.
            counters = predictor._counters
            pred_index = (pc >> predictor._shift) & (predictor._entries - 1)
            predictions = predictor._predictions
            mispredictions = predictor._mispredictions
            def step(a=a, b=b, cond=cond, LN=line, PC=pc,
                     tgt_pc=tgt_pc, tgt_idx=tgt_idx,
                     PI=pred_index, TI=btb_index):
                if il[0] != LN:
                    ifetch(LN, PC)
                predictions.value += 1
                ctr = counters[PI]
                pred = ctr >= 2
                lv = regs[a]
                rv = regs[b]
                if lv >= _T63:
                    lv -= _T64
                if rv >= _T63:
                    rv -= _T64
                if cond is BranchCond.EQ:
                    taken = lv == rv
                elif cond is BranchCond.NE:
                    taken = lv != rv
                elif cond is BranchCond.LT:
                    taken = lv < rv
                else:
                    taken = lv >= rv
                cn[2] += 1
                if taken:
                    if not pred:
                        mispredictions.value += 1
                    if ctr < 3:
                        counters[PI] = ctr + 1
                    btb_updates.value += 1
                    btb_targets[TI] = tgt_pc
                else:
                    if pred:
                        mispredictions.value += 1
                    if ctr > 0:
                        counters[PI] = ctr - 1
                f = tm[0] + fs
                tm[0] = f
                s = f + depth
                t = rt[a]
                if t > s:
                    s = t
                t = rt[b]
                if t > s:
                    s = t
                d = s + 1.0
                c = tm[1] + cs
                if d + 1.0 > c:
                    c = d + 1.0
                tm[1] = c
                cn[0] += 1
                if taken != pred:
                    cn[3] += 1
                    bud = int((d - f - depth) * fwid) + fwid
                    if bud > rob:
                        bud = rob
                    window(tgt_idx if pred else nxt, bud)
                    tm[0] = d + pen
                    # The window may have perturbed i-side state.
                    il[0] = -1
                    il[1] = -1
                    if tm[1] > maxc:
                        raise SimulationError(
                            f"exceeded max_cycles={int(maxc)}")
                    return tgt_idx if taken else nxt
                if taken:
                    # No il reset (see the JMP closure).
                    if tm[1] > maxc:
                        raise SimulationError(
                            f"exceeded max_cycles={int(maxc)}")
                    return tgt_idx
                return nxt
            return step

        predict = predictor.predict
        update = predictor.update
        btb_update = btb.update
        note_branch = btb.note_branch
        def step(a=a, b=b, cond=cond, LN=line, PC=pc,
                 tgt_pc=tgt_pc, tgt_idx=tgt_idx):
            if il[0] != LN:
                ifetch(LN, PC)
            pred = predict(PC)
            # Fetch-time BHB shift (predicted direction, as in the cycle
            # core); a no-op when history is disabled.
            note_branch(pred)
            lv = regs[a]
            rv = regs[b]
            if lv >= _T63:
                lv -= _T64
            if rv >= _T63:
                rv -= _T64
            if cond is BranchCond.EQ:
                taken = lv == rv
            elif cond is BranchCond.NE:
                taken = lv != rv
            elif cond is BranchCond.LT:
                taken = lv < rv
            else:
                taken = lv >= rv
            cn[2] += 1
            update(PC, taken, pred)
            if taken:
                btb_update(PC, tgt_pc)
            f = tm[0] + fs
            tm[0] = f
            s = f + depth
            t = rt[a]
            if t > s:
                s = t
            t = rt[b]
            if t > s:
                s = t
            d = s + 1.0
            c = tm[1] + cs
            if d + 1.0 > c:
                c = d + 1.0
            tm[1] = c
            cn[0] += 1
            if taken != pred:
                cn[3] += 1
                bud = int((d - f - depth) * fwid) + fwid
                if bud > rob:
                    bud = rob
                window(tgt_idx if pred else nxt, bud)
                tm[0] = d + pen
                # The window may have perturbed i-side state.
                il[0] = -1
                il[1] = -1
                if tm[1] > maxc:
                    raise SimulationError(
                        f"exceeded max_cycles={int(maxc)}")
                return tgt_idx if taken else nxt
            if taken:
                # No il reset (see the JMP closure).
                if tm[1] > maxc:
                    raise SimulationError(
                        f"exceeded max_cycles={int(maxc)}")
                return tgt_idx
            return nxt
        return step

    # ------------------------------------------------------------------
    # committed i-side access
    # ------------------------------------------------------------------

    def _ifetch(self, line: int, pc: int) -> None:
        """Committed-path i-cache/iTLB access for a new fetch line."""
        il = self.il
        il[0] = line
        cn = self.cn
        cn[_IA] += 1
        hier = self.hier
        engine = self.engine
        vpn = pc >> 12
        if engine is None:
            trans = self._itlb_lookup(vpn)
            if trans is not None and self._l1i_touch(trans.physical(pc)):
                cn[_IL1] += 1
                return
            result = self._fetch_access(pc, privilege=self.privilege,
                                        sink=None)
        else:
            # Same page as the last committed fetch: the translation is
            # the cached one, and the cycle core's commit-time iTLB
            # refresh is gated per page — only the line recency remains.
            if il[1] == vpn:
                paddr = il[2] | (pc & 4095)
                hit = True
            else:
                trans = self._itlb_entries.get(vpn)
                if trans is not None:
                    paddr = (trans.ppn << 12) | (pc & 4095)
                    hit = True
                else:
                    paddr = 0
                    hit = False
            if hit:
                sets, lmask, shift, smask = self._l1i_geo
                ln = paddr & lmask
                st = sets[(paddr >> shift) & smask]
                if ln in st:
                    st.move_to_end(ln)
                    cn[_IL1] += 1
                    if il[1] != vpn:
                        self._itlb_refresh(vpn)
                        il[1] = vpn
                        il[2] = paddr & ~4095
                    sets, lmask, shift, smask = self._l2_geo
                    ln = paddr & lmask
                    st = sets[(paddr >> shift) & smask]
                    if ln in st:
                        st.move_to_end(ln)
                    sets, lmask, shift, smask = self._l3_geo
                    ln = paddr & lmask
                    st = sets[(paddr >> shift) & smask]
                    if ln in st:
                        st.move_to_end(ln)
                    return
            il[1] = -1
            std = _Standin(self._next_seq())
            result = self._fetch_access(pc, privilege=self.privilege,
                                        sink=engine.sink_for(std))
            engine.on_commit(std)
            hier.refresh_committed_translation("i", pc)
            if not result.tlb_hit:
                hier.refresh_walk_lines(pc)
            if result.hit_level in ("L1", "L2", "L3"):
                hier.refresh_line_recency("i", line)
        if result.hit_level == "shadow":
            cn[_ISH] += 1
        elif result.hit_level == "L1":
            cn[_IL1] += 1
        else:
            cn[_IM] += 1
        extra = result.latency - self._i_hit
        if extra > 0:
            self.tm[0] += extra     # fetch stalls for the miss

    # ------------------------------------------------------------------
    # committed d-side slow paths
    # ------------------------------------------------------------------

    def _load_slow(self, nxt: int, pc: int, rd: int, va: int,
                   s: float) -> int:
        hier = self.hier
        engine = self.engine
        cn = self.cn
        std = None
        if engine is None:
            result = hier.data_access(va, is_write=False,
                                      privilege=self.privilege, sink=None)
        else:
            std = _Standin(self._next_seq())
            result = hier.data_access(va, is_write=False,
                                      privilege=self.privilege,
                                      sink=engine.sink_for(std))
        cn[_DA] += 1
        if result.hit_level == "shadow":
            cn[_DSH] += 1
        elif result.hit_level == "L1":
            cn[_DL1] += 1
        else:
            cn[_DM] += 1
        if result.fault is not None:
            p1 = 0 if result.fault == "unmapped" \
                else hier.memory.read_word(result.paddr)
            return self._raise_fault(nxt, pc, va, result.fault, std,
                                     rd, p1, s + max(result.latency, 1))
        if engine is not None:
            engine.on_commit(std)
            hier.refresh_committed_translation("d", va)
            if not result.tlb_hit:
                hier.refresh_walk_lines(va)
            if result.hit_level in ("L1", "L2", "L3"):
                hier.refresh_line_recency(
                    "d", hier.l1d.line_address(result.paddr))
        self.regs[rd] = hier.memory.read_word(result.paddr)
        d = s + max(result.latency, 1)
        self.rt[rd] = d
        tm = self.tm
        c = tm[1] + self._cs
        if d + 1.0 > c:
            c = d + 1.0
        tm[1] = c
        cn[_R] += 1
        return nxt

    def _store_slow(self, nxt: int, pc: int, va: int, value: int,
                    s: float) -> int:
        hier = self.hier
        engine = self.engine
        result = AccessResult(latency=0)
        std = None
        if engine is None:
            sink = hier.default_sink()
        else:
            std = _Standin(self._next_seq())
            sink = engine.sink_for(std)
        trans = hier.translate("d", va, sink, result)
        fault = None
        if trans is None:
            fault = "unmapped"
        elif not trans.permissions.allows(write=True, execute=False,
                                          privilege=self.privilege):
            fault = "permission"
        if fault is not None:
            return self._raise_fault(nxt, pc, va, fault, std,
                                     None, 0, s + max(result.latency, 1))
        if engine is not None:
            engine.on_commit(std)
            hier.refresh_committed_translation("d", va)
            if not result.tlb_hit:
                hier.refresh_walk_lines(va)
        hier.commit_store(trans.physical(va), value)
        d = s + max(result.latency, 1)
        tm = self.tm
        c = tm[1] + self._cs
        if d + 1.0 > c:
            c = d + 1.0
        tm[1] = c
        self.cn[_R] += 1
        return nxt

    def _commit_clflush(self, va: int) -> None:
        trans = self.hier.page_table.lookup(va)
        if trans is not None:
            self.hier.clflush(trans.physical(va))

    # ------------------------------------------------------------------
    # faults
    # ------------------------------------------------------------------

    def _raise_fault(self, nxt: int, pc: int, va: int, kind: str,
                     std: Optional[_Standin], rd: Optional[int],
                     p1_value: int, d: float) -> int:
        """Commit-time fault: emulate the younger speculative window,
        squash it, record the event, redirect to the handler."""
        engine = self.engine
        if engine is not None and self._wfb and std is not None:
            # WFB promotes once branch dependences clear — for a fault
            # window there are none, so the faulting access's own shadow
            # state reaches the committed structures (the Meltdown hole).
            engine.on_branch_resolved(std)
        wregs = list(self.regs)
        if rd is not None:
            wregs[rd] = p1_value       # P1: the speculatively returned data
        self._spec_run(nxt, wregs, self._rob, promote=True)
        if engine is not None and std is not None:
            engine.on_squash(std)
            self.cn[_SQ] += 1
        cn = self.cn
        cn[_FLT] += 1
        tm = self.tm
        c = tm[1] + self._cs
        if d > c:
            c = d
        tm[1] = c
        self.fault_events.append(FaultEvent(
            cycle=int(tm[1]), pc=pc, vaddr=va, kind=kind))
        if self._handler_idx is None:
            self.reason = "fault"
            return -1
        tm[0] = d + 1.0
        self.il[0] = -1
        self.il[1] = -1
        return self._handler_idx

    # ------------------------------------------------------------------
    # speculative windows
    # ------------------------------------------------------------------

    def _window(self, idx: int, budget: int) -> None:
        """Wrong-path window after a mispredicted branch: the predicted
        path runs against scratch registers, fills annulled at the end."""
        if budget < self._fwid:
            budget = self._fwid
        self._spec_run(idx, list(self.regs), budget, promote=False)

    def _spec_run(self, idx: int, regs: List[int], budget: int,
                  promote: bool) -> None:
        """Interpret a speculative region (P2): real sinks, real predictor
        and BTB training (P3), no architectural effects.

        ``promote`` marks a *fault* window: the in-flight micro-ops have
        no unresolved branch dependences, so under WFB each one's shadow
        state promotes as it executes — and is then counted
        ``promoted_then_squashed`` when the fault squashes the window.
        Mispredict windows never promote (the mispredicted branch is an
        unresolved dependence until it squashes them).
        """
        program = self._program
        _, win = self._lowered(program)
        n = len(win)
        if not 0 <= idx < n:
            return
        hier = self.hier
        engine = self.engine
        cn = self.cn
        prv = self.privilege
        mem_read = hier.memory.read_word
        code_base = program.code_base
        stds: List[_Standin] = []
        direct = hier.default_sink()
        fwd: Dict[int, int] = {}
        iline = -1
        executed = 0
        while 0 <= idx < n and executed < budget:
            pc = code_base + (idx << 4)
            line = pc & ~63
            if line != iline:
                iline = line
                cn[_IA] += 1
                if engine is None:
                    res = hier.fetch_access(pc, privilege=prv, sink=None)
                else:
                    std = _Standin(self._next_seq())
                    stds.append(std)
                    res = hier.fetch_access(pc, privilege=prv,
                                            sink=engine.sink_for(std))
                    if promote:
                        engine.on_branch_resolved(std)
                if res.hit_level == "shadow":
                    cn[_ISH] += 1
                elif res.hit_level == "L1":
                    cn[_IL1] += 1
                else:
                    cn[_IM] += 1
            rec = win[idx]
            if rec is None:
                rec = win[idx] = self._win_record(
                    program, idx, program.instructions[idx])
            kind = rec[0]
            if kind == _W_ALU:
                regs[rec[1]] = rec[6](regs[rec[2]], regs[rec[3]]
                                      if rec[3] is not None
                                      else rec[4]) & _M
            elif kind == _W_LOADIMM:
                regs[rec[1]] = rec[4]
            elif kind == _W_LOAD:
                if engine is not None \
                        and not engine.can_accept_data_access():
                    break               # BLOCK full-policy stall
                va = (regs[rec[2]] + rec[4]) & _M
                if va in fwd:
                    regs[rec[1]] = fwd[va]
                    cn[_FW] += 1
                else:
                    if engine is None:
                        res = hier.data_access(va, is_write=False,
                                               privilege=prv, sink=None)
                    else:
                        std = _Standin(self._next_seq())
                        stds.append(std)
                        res = hier.data_access(
                            va, is_write=False, privilege=prv,
                            sink=engine.sink_for(std))
                        if promote:
                            engine.on_branch_resolved(std)
                    cn[_DA] += 1
                    if res.hit_level == "shadow":
                        cn[_DSH] += 1
                    elif res.hit_level == "L1":
                        cn[_DL1] += 1
                    else:
                        cn[_DM] += 1
                    regs[rec[1]] = 0 if res.fault == "unmapped" \
                        else mem_read(res.paddr)
            elif kind == _W_STORE:
                if engine is not None \
                        and not engine.can_accept_data_access():
                    break
                va = (regs[rec[2]] + rec[4]) & _M
                res = AccessResult(latency=0)
                if engine is None:
                    hier.translate("d", va, direct, res)
                else:
                    std = _Standin(self._next_seq())
                    stds.append(std)
                    hier.translate("d", va, engine.sink_for(std), res)
                    if promote:
                        engine.on_branch_resolved(std)
                fwd[va] = regs[rec[3]]
            elif kind == _W_BRANCH:
                pred = self.predictor.predict(pc)
                self.btb.note_branch(pred)
                lv = regs[rec[2]]
                rv = regs[rec[3]]
                if lv >= _T63:
                    lv -= _T64
                if rv >= _T63:
                    rv -= _T64
                cond = rec[6]
                if cond is BranchCond.EQ:
                    taken = lv == rv
                elif cond is BranchCond.NE:
                    taken = lv != rv
                elif cond is BranchCond.LT:
                    taken = lv < rv
                else:
                    taken = lv >= rv
                self.predictor.update(pc, taken, pred)
                if taken:
                    self.btb.update(pc, program.pc_of(rec[5]))
                executed += 1
                cn[_SQ] += 1
                idx = rec[5] if taken else idx + 1
                continue
            elif kind == _W_JMP:
                self.btb.update(pc, program.pc_of(rec[5]))
                executed += 1
                cn[_SQ] += 1
                idx = rec[5]
                continue
            elif kind == _W_JMPI:
                tgt = regs[rec[2]]
                self.btb.update(pc, tgt)
                executed += 1
                cn[_SQ] += 1
                off = tgt - code_base
                if 0 <= off < (n << 4) and not off & 15:
                    idx = off >> 4
                    continue
                break
            elif kind == _W_CALL:
                # Wrong-path calls pollute the real RSB (the ret2spec
                # surface) and train the BTB, exactly like wrong-path
                # fetch/execute in the cycle core.
                link = code_base + ((idx + 1) << 4)
                regs[rec[1]] = link
                self.rsb.push(link)
                self.btb.update(pc, code_base + (rec[5] << 4))
                executed += 1
                cn[_SQ] += 1
                idx = rec[5]
                continue
            elif kind == _W_RET:
                # Wrong-path fetch follows the RSB prediction (not the
                # register, which may be unresolved); an empty RSB falls
                # through.  The pop itself is real pollution.
                pred = self.rsb.pop()
                executed += 1
                cn[_SQ] += 1
                if pred:
                    off = pred - code_base
                    if 0 <= off < (n << 4) and not off & 15:
                        idx = off >> 4
                        continue
                    break
                idx += 1
                continue
            elif kind == _W_STOP:
                break       # RDTSC/FENCE/HALT never issue off the head
            # _W_CLFLUSH (effect only at commit) and _W_NOP fall through
            executed += 1
            cn[_SQ] += 1
            idx += 1
        if engine is not None:
            for std in stds:
                engine.on_squash(std)
