"""Execution backends: interchangeable cores behind one ``Machine``.

A backend turns (program, machine state) into a
:class:`~repro.pipeline.core.RunResult`.  Two are built in:

* ``"cycle"`` — the cycle-accurate out-of-order core
  (:mod:`repro.pipeline.core`), simulating every fetch/issue/commit
  event.  This is the reference micro-architectural model the paper's
  figures are defined against.
* ``"fast"`` — a fast-functional core (:mod:`repro.backends.fast`) that
  lowers each decoded :class:`~repro.isa.program.Program` into
  specialized per-instruction closures and executes straight-line
  regions at interpreter speed, engaging the real branch predictor,
  BTB, cache hierarchy and SafeSpec shadow engine only where timing
  and leakage matter (committed memory accesses, mispredicted-branch
  and fault speculation windows).

The registry follows the same decorator pattern as
:data:`~repro.api.registry.ATTACKS` /
:data:`~repro.api.registry.PREDICTORS`: backends register lazily on
first lookup, and :meth:`Registry.create` instantiates one per
:class:`~repro.machine.Machine`.

Accuracy contract (held by ``repro verify --backend fast``): both
backends must produce bit-identical *architectural* state (registers,
memory, retire count, fault events — ``rdtsc`` excepted, which is
architecturally timing-tainted), identical leak/no-leak verdicts for
every registered attack under every policy, and cycle counts that
agree within the tolerance documented in the README's Backends
section.  Micro-architectural counters (cache hit/miss splits, shadow
occupancy histograms) are backend-specific detail and are *not* part
of the contract.
"""

from __future__ import annotations

from typing import Any, Callable, List

from repro.api.registry import Registry

DEFAULT_BACKEND = "cycle"


def _load_backends() -> None:
    # Import order is presentation order: the reference model first.
    import repro.backends.cycle        # noqa: F401
    import repro.backends.fast         # noqa: F401


BACKENDS = Registry("backend", loader=_load_backends)


def register_backend(name: str, **metadata: Any) -> Callable[[Any], Any]:
    """Register an execution-backend class.

    The class is instantiated once per :class:`~repro.machine.Machine`
    with no arguments and must provide
    ``run(machine, program, *, max_instructions, privilege,
    fault_handler_pc, initial_registers) -> RunResult``.
    """
    return BACKENDS.register(name, **metadata)


def backend_names() -> List[str]:
    """Registered backend names, in registration order."""
    return BACKENDS.names()


def create_backend(name: str) -> Any:
    """Instantiate one backend by name (unknown names fail loudly)."""
    return BACKENDS.create(name)
