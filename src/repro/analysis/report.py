"""Text rendering of the reproduced figures and tables.

The paper's figures are bar charts over the benchmark suite; in a
terminal reproduction each becomes an aligned table with one row per
benchmark plus the average, optionally with an ASCII bar.
"""

from __future__ import annotations

from typing import Dict, Optional

_BAR_WIDTH = 40


def render_figure_series(title: str, series: Dict[str, float],
                         unit: str = "", bars: bool = True,
                         scale_max: Optional[float] = None) -> str:
    """Render one benchmark series as an aligned text table."""
    lines = [title, "=" * len(title)]
    if not series:
        return "\n".join(lines + ["(empty)"])
    peak = scale_max if scale_max else max(series.values()) or 1.0
    for name, value in series.items():
        row = f"{name:10s} {value:10.4f}{unit}"
        if bars and peak > 0:
            filled = int(round(min(value / peak, 1.0) * _BAR_WIDTH))
            row += "  |" + "#" * filled
        lines.append(row)
    return "\n".join(lines)


def render_sizing_figure(figure_id: str, structure: str,
                         wfc: Dict[str, float],
                         wfb: Dict[str, float]) -> str:
    """Render a Figures 6-9 style two-policy sizing comparison."""
    title = (f"Figure {figure_id}: {structure} size covering 99.99% of "
             f"cycles (entries)")
    lines = [title, "=" * len(title),
             f"{'benchmark':10s} {'WFC':>8s} {'WFB':>8s}"]
    for name in wfc:
        lines.append(
            f"{name:10s} {wfc[name]:8.1f} {wfb.get(name, 0.0):8.1f}")
    return "\n".join(lines)


def render_ipc_figure(series: Dict[str, float]) -> str:
    """Render the Figure 11 style normalized-IPC table."""
    title = "Figure 11: IPC normalized to the insecure baseline"
    lines = [title, "=" * len(title)]
    for name, value in series.items():
        delta = (value - 1.0) * 100.0
        lines.append(f"{name:10s} {value:7.4f}  ({delta:+5.1f}%)")
    return "\n".join(lines)


def render_two_series(title: str, left_name: str,
                      left: Dict[str, float], right_name: str,
                      right: Dict[str, float]) -> str:
    """Render a two-series comparison (e.g. WFC vs baseline miss rates)."""
    lines = [title, "=" * len(title),
             f"{'benchmark':10s} {left_name:>10s} {right_name:>10s}"]
    for name in left:
        lines.append(f"{name:10s} {left[name]:10.4f} "
                     f"{right.get(name, 0.0):10.4f}")
    return "\n".join(lines)
