"""Figure series extraction and text rendering.

:func:`figures_data` derives every per-figure series from one
:class:`~repro.analysis.experiment.FigureRunner` — the single source
both output formats (JSON export and the text tables below) render
from, so ``--format json`` exports exactly the series the text shows.

The paper's figures are bar charts over the benchmark suite; in a
terminal reproduction each becomes an aligned table with one row per
benchmark plus the average, optionally with an ASCII bar.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.policy import CommitPolicy

_BAR_WIDTH = 40

# (figure id, shadow structure) for the Figures 6-9 sizing studies.
SIZING_FIGURES = [("6", "shadow_icache"), ("7", "shadow_dcache"),
                  ("8", "shadow_itlb"), ("9", "shadow_dtlb")]


def figures_data(runner) -> Dict[str, Dict[str, object]]:
    """Every figure's series, keyed by figure number."""
    wfc, wfb = CommitPolicy.WFC, CommitPolicy.WFB
    base = CommitPolicy.BASELINE
    figures: Dict[str, Dict[str, object]] = {}
    for figure_id, structure in SIZING_FIGURES:
        figures[figure_id] = {
            "title": f"{structure} size covering 99.99% of cycles",
            "structure": structure,
            "series": {"wfc": runner.shadow_sizing(structure, wfc),
                       "wfb": runner.shadow_sizing(structure, wfb)},
        }
    figures["11"] = {
        "title": "IPC normalized to the insecure baseline",
        "series": {"wfc": runner.normalized_ipc(wfc)},
    }
    figures["12"] = {
        "title": "d-cache read miss rate",
        "series": {"wfc": runner.dcache_miss_rates(wfc),
                   "baseline": runner.dcache_miss_rates(base)},
    }
    figures["13"] = {
        "title": "hits on shadow d-cache",
        "series": {"wfc": runner.shadow_dcache_hits(wfc)},
    }
    figures["14"] = {
        "title": "i-cache miss rate",
        "series": {"wfc": runner.icache_miss_rates(wfc),
                   "baseline": runner.icache_miss_rates(base)},
    }
    figures["15"] = {
        "title": "hits on shadow i-cache",
        "series": {"wfc": runner.shadow_icache_hits(wfc)},
    }
    figures["16"] = {
        "title": "commit rate of shadow state",
        "series": {
            "shadow_icache": runner.shadow_commit_rates("shadow_icache",
                                                        wfc),
            "shadow_dcache": runner.shadow_commit_rates("shadow_dcache",
                                                        wfc)},
    }
    return figures


def render_figures_text(figures: Dict[str, Dict[str, object]]) -> str:
    """All figure tables as one text block, in figure-number order."""
    blocks = []
    for figure_id, _structure in SIZING_FIGURES:
        data = figures[figure_id]
        blocks.append(render_sizing_figure(
            figure_id, data["structure"],
            data["series"]["wfc"], data["series"]["wfb"]))

    def heading(figure_id: str) -> str:
        return f"Figure {figure_id}: {figures[figure_id]['title']}"

    blocks.append(render_ipc_figure(figures["11"]["series"]["wfc"]))
    blocks.append(render_two_series(
        heading("12"),
        "WFC", figures["12"]["series"]["wfc"],
        "baseline", figures["12"]["series"]["baseline"]))
    blocks.append(render_figure_series(
        heading("13"), figures["13"]["series"]["wfc"], scale_max=1.0))
    blocks.append(render_two_series(
        heading("14"),
        "WFC", figures["14"]["series"]["wfc"],
        "baseline", figures["14"]["series"]["baseline"]))
    blocks.append(render_figure_series(
        heading("15"), figures["15"]["series"]["wfc"], scale_max=1.0))
    blocks.append(render_two_series(
        heading("16"),
        "i-cache", figures["16"]["series"]["shadow_icache"],
        "d-cache", figures["16"]["series"]["shadow_dcache"]))
    return "\n\n".join(blocks)


def render_figure_series(title: str, series: Dict[str, float],
                         unit: str = "", bars: bool = True,
                         scale_max: Optional[float] = None) -> str:
    """Render one benchmark series as an aligned text table."""
    lines = [title, "=" * len(title)]
    if not series:
        return "\n".join(lines + ["(empty)"])
    peak = scale_max if scale_max else max(series.values()) or 1.0
    for name, value in series.items():
        row = f"{name:10s} {value:10.4f}{unit}"
        if bars and peak > 0:
            filled = int(round(min(value / peak, 1.0) * _BAR_WIDTH))
            row += "  |" + "#" * filled
        lines.append(row)
    return "\n".join(lines)


def render_sizing_figure(figure_id: str, structure: str,
                         wfc: Dict[str, float],
                         wfb: Dict[str, float]) -> str:
    """Render a Figures 6-9 style two-policy sizing comparison."""
    title = (f"Figure {figure_id}: {structure} size covering 99.99% of "
             f"cycles (entries)")
    lines = [title, "=" * len(title),
             f"{'benchmark':10s} {'WFC':>8s} {'WFB':>8s}"]
    for name in wfc:
        lines.append(
            f"{name:10s} {wfc[name]:8.1f} {wfb.get(name, 0.0):8.1f}")
    return "\n".join(lines)


def render_ipc_figure(series: Dict[str, float]) -> str:
    """Render the Figure 11 style normalized-IPC table."""
    title = "Figure 11: IPC normalized to the insecure baseline"
    lines = [title, "=" * len(title)]
    for name, value in series.items():
        delta = (value - 1.0) * 100.0
        lines.append(f"{name:10s} {value:7.4f}  ({delta:+5.1f}%)")
    return "\n".join(lines)


def render_two_series(title: str, left_name: str,
                      left: Dict[str, float], right_name: str,
                      right: Dict[str, float]) -> str:
    """Render a two-series comparison (e.g. WFC vs baseline miss rates)."""
    lines = [title, "=" * len(title),
             f"{'benchmark':10s} {left_name:>10s} {right_name:>10s}"]
    for name in left:
        lines.append(f"{name:10s} {left[name]:10.4f} "
                     f"{right.get(name, 0.0):10.4f}")
    return "\n".join(lines)
