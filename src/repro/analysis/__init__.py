"""Experiment orchestration and figure/table reproduction."""

from repro.analysis.experiment import FigureRunner
from repro.analysis.report import (render_figure_series, render_ipc_figure,
                                   render_sizing_figure)

__all__ = [
    "FigureRunner",
    "render_figure_series",
    "render_ipc_figure",
    "render_sizing_figure",
]
