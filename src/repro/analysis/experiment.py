"""FigureRunner: one simulation per (workload, policy), shared by all
figures.

Every performance figure in the paper (Figures 6-9 and 11-16) is a
per-benchmark series derived from the same simulations, so the runner
describes each (workload, policy) pair as a
:class:`~repro.exec.job.SimJob`, submits it through an executor (serial
or ``multiprocessing``-parallel, optionally backed by the persistent
on-disk result cache), and memoizes the resulting
:class:`~repro.exec.job.SimResult` for the figure derivations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.policy import CommitPolicy
from repro.exec.cache import ResultCache
from repro.exec.executor import make_executor
from repro.exec.job import SimJob, SimResult, workload_job
from repro.spec import MachineSpec
from repro.statistics import geometric_mean
from repro.workloads.profiles import suite_names
from repro.workloads.suite import DEFAULT_INSTRUCTION_BUDGET

AVERAGE = "Average"

# Policies every full figure regeneration needs: the protected variants
# plus the insecure baseline Figures 11/12/14 normalize against.
FIGURE_POLICIES = (CommitPolicy.BASELINE, CommitPolicy.WFB,
                   CommitPolicy.WFC)


class FigureRunner:
    """Runs the suite under each policy and derives the figure series.

    Each figure method returns an ordered ``{benchmark: value}`` dict,
    with an ``Average`` entry appended (arithmetic mean for rates/sizes,
    geometric mean for normalized IPC — matching the paper).

    Simulations run through a :class:`~repro.api.session.Session`
    (prefer :meth:`Session.experiment` to construct a runner).
    ``session`` supplies the wiring directly; ``executor`` overrides the
    execution strategy; otherwise ``jobs``/``cache``/``progress`` pick
    one (``jobs > 1`` fans simulations out over a process pool,
    ``cache`` persists results across invocations).
    """

    def __init__(self, benchmarks: Optional[List[str]] = None,
                 instructions: int = DEFAULT_INSTRUCTION_BUDGET,
                 executor=None, jobs: int = 1,
                 cache: Optional[ResultCache] = None,
                 progress=None, session=None,
                 spec: Optional[MachineSpec] = None,
                 backend: str = "cycle") -> None:
        # Imported here: repro.api.session itself builds runners.
        from repro.api.session import Session

        self.benchmarks = benchmarks or suite_names()
        self.instructions = instructions
        self.spec = spec
        self.backend = backend
        if session is None:
            if executor is None:
                executor = make_executor(workers=jobs, cache=cache,
                                         progress=progress)
            session = Session(executor=executor)
        self.session = session
        self.executor = session.executor
        self._memo: Dict[Tuple[str, CommitPolicy], SimResult] = {}

    def job_for(self, benchmark: str, policy: CommitPolicy) -> SimJob:
        """The job spec describing one (benchmark, policy) simulation."""
        return workload_job(benchmark, policy,
                            instructions=self.instructions,
                            spec=self.spec, backend=self.backend)

    def run(self, benchmark: str, policy: CommitPolicy) -> SimResult:
        """Run (or fetch from cache) one benchmark under one policy."""
        key = (benchmark, policy)
        if key not in self._memo:
            job = self.job_for(benchmark, policy)
            self._memo[key] = self.executor.run([job])[0]
        return self._memo[key]

    def _ensure(self, policies: Sequence[CommitPolicy]) -> None:
        """Memoize every (benchmark, policy) pair, as one executor batch.

        Every figure method calls this before deriving its series, so a
        parallel executor always sees the figure's whole sweep at once
        instead of one job at a time.
        """
        missing = [(name, policy) for policy in policies
                   for name in self.benchmarks
                   if (name, policy) not in self._memo]
        if not missing:
            return
        jobs = [self.job_for(name, policy) for name, policy in missing]
        for key, result in zip(missing, self.executor.run(jobs)):
            self._memo[key] = result

    def run_all(self, policies: Sequence[CommitPolicy] = FIGURE_POLICIES
                ) -> List[SimResult]:
        """Submit every outstanding (benchmark, policy) pair as one batch.

        The figure methods batch their own sweeps; this prefetches a
        multi-policy matrix up front (the CLI regenerating every figure,
        the benchmark harness) so even the first figure pays for nothing
        beyond its own derivation.
        """
        self._ensure(policies)
        return [self._memo[(name, policy)] for policy in policies
                for name in self.benchmarks]

    # ------------------------------------------------------------------
    # Figures 6-9: shadow-structure sizing (p99.99 occupancy)
    # ------------------------------------------------------------------

    def shadow_sizing(self, structure: str, policy: CommitPolicy,
                      fraction: float = 0.9999) -> Dict[str, float]:
        """Shadow size covering ``fraction`` of cycles for each benchmark.

        ``structure`` is one of ``shadow_icache`` (Fig. 6),
        ``shadow_dcache`` (Fig. 7), ``shadow_itlb`` (Fig. 8),
        ``shadow_dtlb`` (Fig. 9).
        """
        self._ensure([policy])
        series = {}
        for name in self.benchmarks:
            run = self.run(name, policy)
            series[name] = float(
                run.shadow_size_percentile(structure, fraction))
        series[AVERAGE] = _mean(series)
        return series

    # ------------------------------------------------------------------
    # Figure 11: normalized IPC
    # ------------------------------------------------------------------

    def normalized_ipc(self, policy: CommitPolicy = CommitPolicy.WFC
                       ) -> Dict[str, float]:
        """IPC under ``policy`` normalized to the insecure baseline."""
        self._ensure([CommitPolicy.BASELINE, policy])
        series = {}
        for name in self.benchmarks:
            baseline = self.run(name, CommitPolicy.BASELINE)
            protected = self.run(name, policy)
            series[name] = (protected.ipc / baseline.ipc
                            if baseline.ipc else 0.0)
        series[AVERAGE] = geometric_mean(
            [v for k, v in series.items() if k != AVERAGE and v > 0])
        return series

    # ------------------------------------------------------------------
    # Figures 12-15: miss rates and shadow hit fractions
    # ------------------------------------------------------------------

    def _series(self, policy: CommitPolicy, metric) -> Dict[str, float]:
        """A per-benchmark series of ``metric`` with its Average row."""
        self._ensure([policy])
        series = {name: metric(self.run(name, policy))
                  for name in self.benchmarks}
        series[AVERAGE] = _mean(series)
        return series

    def dcache_miss_rates(self, policy: CommitPolicy) -> Dict[str, float]:
        """Figure 12 series: d-cache read miss rate (shadow-inclusive)."""
        return self._series(policy, lambda run: run.dcache_read_miss_rate)

    def shadow_dcache_hits(self, policy: CommitPolicy = CommitPolicy.WFC
                           ) -> Dict[str, float]:
        """Figure 13 series: fraction of read hits on the shadow d-cache."""
        return self._series(policy,
                            lambda run: run.dcache_shadow_hit_fraction)

    def icache_miss_rates(self, policy: CommitPolicy) -> Dict[str, float]:
        """Figure 14 series: i-cache miss rate (shadow-inclusive)."""
        return self._series(policy, lambda run: run.icache_miss_rate)

    def shadow_icache_hits(self, policy: CommitPolicy = CommitPolicy.WFC
                           ) -> Dict[str, float]:
        """Figure 15 series: fraction of fetch hits on the shadow i-cache."""
        return self._series(policy,
                            lambda run: run.icache_shadow_hit_fraction)

    # ------------------------------------------------------------------
    # Figure 16: shadow commit rate
    # ------------------------------------------------------------------

    def shadow_commit_rates(self, structure: str,
                            policy: CommitPolicy = CommitPolicy.WFC
                            ) -> Dict[str, float]:
        """Figure 16 series: committed fraction of retired shadow entries."""
        return self._series(
            policy, lambda run: run.shadow_commit_rate(structure))


def _mean(series: Dict[str, float]) -> float:
    values = [v for k, v in series.items() if k != AVERAGE]
    return sum(values) / len(values) if values else 0.0
