"""ExperimentRunner: one simulation per (workload, policy), shared by all
figures.

Every performance figure in the paper (Figures 6-9 and 11-16) is a
per-benchmark series derived from the same simulations, so the runner
executes each (workload, policy) pair once and caches the
:class:`~repro.workloads.suite.WorkloadRun`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.policy import CommitPolicy
from repro.statistics import geometric_mean
from repro.workloads.profiles import suite_names
from repro.workloads.suite import (DEFAULT_INSTRUCTION_BUDGET, WorkloadRun,
                                   run_workload)

AVERAGE = "Average"


class ExperimentRunner:
    """Runs the suite under each policy and derives the figure series.

    Each figure method returns an ordered ``{benchmark: value}`` dict,
    with an ``Average`` entry appended (arithmetic mean for rates/sizes,
    geometric mean for normalized IPC — matching the paper).
    """

    def __init__(self, benchmarks: Optional[List[str]] = None,
                 instructions: int = DEFAULT_INSTRUCTION_BUDGET) -> None:
        self.benchmarks = benchmarks or suite_names()
        self.instructions = instructions
        self._cache: Dict[Tuple[str, CommitPolicy], WorkloadRun] = {}

    def run(self, benchmark: str, policy: CommitPolicy) -> WorkloadRun:
        """Run (or fetch from cache) one benchmark under one policy."""
        key = (benchmark, policy)
        if key not in self._cache:
            self._cache[key] = run_workload(
                benchmark, policy, instructions=self.instructions)
        return self._cache[key]

    # ------------------------------------------------------------------
    # Figures 6-9: shadow-structure sizing (p99.99 occupancy)
    # ------------------------------------------------------------------

    def shadow_sizing(self, structure: str, policy: CommitPolicy,
                      fraction: float = 0.9999) -> Dict[str, float]:
        """Shadow size covering ``fraction`` of cycles for each benchmark.

        ``structure`` is one of ``shadow_icache`` (Fig. 6),
        ``shadow_dcache`` (Fig. 7), ``shadow_itlb`` (Fig. 8),
        ``shadow_dtlb`` (Fig. 9).
        """
        series = {}
        for name in self.benchmarks:
            run = self.run(name, policy)
            series[name] = float(
                run.shadow_size_percentile(structure, fraction))
        series[AVERAGE] = _mean(series)
        return series

    # ------------------------------------------------------------------
    # Figure 11: normalized IPC
    # ------------------------------------------------------------------

    def normalized_ipc(self, policy: CommitPolicy = CommitPolicy.WFC
                       ) -> Dict[str, float]:
        """IPC under ``policy`` normalized to the insecure baseline."""
        series = {}
        for name in self.benchmarks:
            baseline = self.run(name, CommitPolicy.BASELINE)
            protected = self.run(name, policy)
            series[name] = (protected.ipc / baseline.ipc
                            if baseline.ipc else 0.0)
        series[AVERAGE] = geometric_mean(
            [v for k, v in series.items() if k != AVERAGE and v > 0])
        return series

    # ------------------------------------------------------------------
    # Figures 12-15: miss rates and shadow hit fractions
    # ------------------------------------------------------------------

    def dcache_miss_rates(self, policy: CommitPolicy) -> Dict[str, float]:
        """Figure 12 series: d-cache read miss rate (shadow-inclusive)."""
        series = {name: self.run(name, policy).dcache_read_miss_rate
                  for name in self.benchmarks}
        series[AVERAGE] = _mean(series)
        return series

    def shadow_dcache_hits(self, policy: CommitPolicy = CommitPolicy.WFC
                           ) -> Dict[str, float]:
        """Figure 13 series: fraction of read hits on the shadow d-cache."""
        series = {name: self.run(name, policy).dcache_shadow_hit_fraction
                  for name in self.benchmarks}
        series[AVERAGE] = _mean(series)
        return series

    def icache_miss_rates(self, policy: CommitPolicy) -> Dict[str, float]:
        """Figure 14 series: i-cache miss rate (shadow-inclusive)."""
        series = {name: self.run(name, policy).icache_miss_rate
                  for name in self.benchmarks}
        series[AVERAGE] = _mean(series)
        return series

    def shadow_icache_hits(self, policy: CommitPolicy = CommitPolicy.WFC
                           ) -> Dict[str, float]:
        """Figure 15 series: fraction of fetch hits on the shadow i-cache."""
        series = {name: self.run(name, policy).icache_shadow_hit_fraction
                  for name in self.benchmarks}
        series[AVERAGE] = _mean(series)
        return series

    # ------------------------------------------------------------------
    # Figure 16: shadow commit rate
    # ------------------------------------------------------------------

    def shadow_commit_rates(self, structure: str,
                            policy: CommitPolicy = CommitPolicy.WFC
                            ) -> Dict[str, float]:
        """Figure 16 series: committed fraction of retired shadow entries."""
        series = {name: self.run(name, policy).shadow_commit_rate(structure)
                  for name in self.benchmarks}
        series[AVERAGE] = _mean(series)
        return series


def _mean(series: Dict[str, float]) -> float:
    values = [v for k, v in series.items() if k != AVERAGE]
    return sum(values) / len(values) if values else 0.0
