"""SpectreRSB: return-address injection through the shared RSB.

The return stack buffer predicts ``ret`` targets and — like the BTB —
is untagged and shared across execution contexts.  The attacker:

a) executes a ``call`` whose *fall-through address aliases the victim's
   gadget* — the call pushes that address onto the shared RSB and
   returns harmlessly inside the attacker's own code;
b) flushes the memory word holding the victim's return pointer so the
   victim's ``ret`` resolves late, opening the speculation window;
c) triggers the victim: its ``ret`` pops the stale attacker-planted
   entry and speculative fetch dives into the gadget, which reads the
   secret and transmits it through the probe array, while the
   architectural return goes to the benign target.

This is the cross-context variant of Koruyeh et al.'s "Spectre Returns"
— same transient window as Spectre v2, different injection structure
(no BTB involvement: returns are never BTB-installed).
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.channels import FlushReloadChannel
from repro.attacks.gadgets import AttackLayout, warm_lines
from repro.api.registry import register_attack
from repro.attacks.runner import AttackResult
from repro.core.policy import CommitPolicy
from repro.isa.assembler import ProgramBuilder
from repro.isa.instructions import INSTRUCTION_BYTES
from repro.isa.program import Program
from repro.machine import Machine
from repro.spec import MachineSpec

_RETPTR_ADDR_OFFSET = 0x808  # return pointer lives in the size page


def build_victim(layout: AttackLayout) -> Program:
    """Victim: loads a return pointer and returns through it.

    The gadget exists in the victim's code but is never architecturally
    reached — the legitimate return target is ``benign``, which is also
    the ``ret``'s fall-through, so an *unpoisoned* (empty-RSB) run
    speculates harmlessly.
    """
    b = ProgramBuilder(code_base=layout.victim_code)
    b.li("r2", layout.size_addr + _RETPTR_ADDR_OFFSET)
    b.load("r7", "r2", 0)              # return pointer (flushed)
    b.li("r9", layout.probe)
    b.li("r10", layout.secret_addr)
    b.ret("r7")                        # RSB-predicted, attacker-steered
    b.label("benign")
    b.halt()
    b.label("gadget")
    b.load("r4", "r10", 0)             # secret
    b.alu("shl", "r5", "r4", imm=6)
    b.add("r11", "r9", "r5")
    b.load("r6", "r11", 0)             # transmit
    b.halt()
    return b.build()


def build_pusher(gadget_pc: int) -> Program:
    """Attacker program whose ``call`` plants ``gadget_pc`` in the RSB.

    A call at ``gadget_pc - 16`` pushes its fall-through — exactly the
    victim's gadget address — then returns into the attacker's own halt.
    The attacker never touches victim code or data; the RSB entry is the
    whole exploit.
    """
    b = ProgramBuilder(code_base=gadget_pc - INSTRUCTION_BYTES)
    b.call("r1", "after")
    b.label("after")
    b.halt()
    return b.build()


@register_attack("spectre_rsb")
def run_spectre_rsb(policy: CommitPolicy, secret: int = 42,
                    spec: Optional[MachineSpec] = None,
                    backend: str = "cycle") -> AttackResult:
    """Run the full SpectreRSB attack under the given commit policy."""
    if not 0 <= secret <= 255:
        raise ValueError(f"secret must be a byte, got {secret}")
    layout = AttackLayout()
    machine = Machine.from_spec(spec, policy=policy, backend=backend)
    layout.map_user_memory(machine)
    machine.write_word(layout.secret_addr, secret)

    victim = build_victim(layout)
    retptr_addr = layout.size_addr + _RETPTR_ADDR_OFFSET
    machine.write_word(retptr_addr, victim.label_pc("benign"))
    channel = FlushReloadChannel(machine, layout.probe)

    # Victim working set is warm (it uses its secret and pointer).
    warm_lines(machine, [layout.secret_addr, retptr_addr],
               code_base=layout.helper_code)

    # Warm victim code and translations with legitimate executions.
    for _ in range(2):
        machine.run(victim)

    # a) plant: the attacker's call pushes the gadget address.
    gadget_pc = victim.label_pc("gadget")
    machine.run(build_pusher(gadget_pc))
    planted = machine.rsb.peek()

    # b) flush the return pointer and the probe array.
    machine.flush_address(retptr_addr)
    channel.flush()

    # c) trigger the victim.
    run = machine.run(victim)

    outcome = channel.reload()
    return AttackResult(
        attack="spectre_rsb",
        policy=policy,
        secret=secret,
        leaked=outcome.value,
        details={
            "hot_slots": outcome.hot_slots,
            "planted_return": planted,
            "gadget_pc": gadget_pc,
            "victim_cycles": run.cycles,
        },
    )
