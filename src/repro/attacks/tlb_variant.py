"""TLB variants of Spectre (paper Section IV-A, "TLBs").

The data-dependent access targets a *page* rather than a cache line: the
secret selects which TLB entry gets speculatively installed.  The
receiver times the translation of each candidate page — a 1-cycle TLB hit
versus a multi-access page walk.

* **dTLB variant** — the transmitting instruction is a load whose address
  strides by the page size.
* **iTLB variant** — the transmitting instruction is a data-dependent
  indirect jump into a page-strided function table (the I-cache gadget
  with page-sized slots), installing an iTLB entry for the selected code
  page.

Both use 64 slots (one secret value per page); the iTLB variant's slot 0
is the architectural training pad, so its secrets live in 1..63.
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.channels import TlbProbeChannel
from repro.attacks.gadgets import AttackLayout, PAGE, warm_lines
from repro.api.registry import register_attack
from repro.attacks.runner import AttackResult
from repro.core.policy import CommitPolicy
from repro.isa.assembler import ProgramBuilder
from repro.isa.instructions import INSTRUCTION_BYTES, Instruction, Opcode
from repro.isa.program import Program
from repro.machine import Machine
from repro.spec import MachineSpec

_SLOTS = 64
_TLB_PROBE_BASE = 0x1_00_0000          # 64 user pages, never touched
_SLOT_INSTRUCTIONS = PAGE // INSTRUCTION_BYTES
_TRAINING_RUNS = 6


# ---------------------------------------------------------------------------
# dTLB variant
# ---------------------------------------------------------------------------

def build_dtlb_victim(layout: AttackLayout) -> Program:
    """Bounds-check-bypass gadget whose transmit load strides by pages."""
    b = ProgramBuilder(code_base=layout.victim_code)
    b.li("r2", layout.size_addr)
    b.load("r3", "r2", 0)                  # flushed bound
    b.li("r8", layout.array1)
    b.li("r9", _TLB_PROBE_BASE)
    b.branch("ge", "r1", "r3", "skip")
    b.add("r10", "r8", "r1")
    b.load("r4", "r10", 0)                 # secret
    b.alu("shl", "r5", "r4", imm=12)       # * PAGE
    b.add("r11", "r9", "r5")
    b.load("r6", "r11", 0)                 # transmit: fills one dTLB entry
    b.label("skip")
    b.halt()
    return b.build()


def run_dtlb_variant(policy: CommitPolicy, secret: int = 42,
                     spec: Optional[MachineSpec] = None,
                     backend: str = "cycle") -> AttackResult:
    """Run the dTLB Spectre variant under the given commit policy.

    Training runs architecturally execute the transmit with
    ``array1[1] == 0``, warming probe page 0's translation, so the
    receiver excludes slot 0 and secrets live in 1..63.
    """
    secret = secret % _SLOTS
    if secret == 0:
        secret = 1
    layout = AttackLayout()
    machine = Machine.from_spec(spec, policy=policy, backend=backend)
    layout.map_user_memory(machine)
    machine.map_user_range(_TLB_PROBE_BASE, _SLOTS * PAGE)
    machine.write_word(layout.size_addr, 16)
    machine.write_word(layout.secret_addr, secret)

    victim = build_dtlb_victim(layout)
    channel = TlbProbeChannel(machine, _TLB_PROBE_BASE, slots=_SLOTS,
                              side="d")

    warm_lines(machine, [layout.secret_addr], code_base=layout.helper_code)
    for _ in range(_TRAINING_RUNS):
        machine.run(victim, initial_registers={1: 1})

    machine.flush_address(layout.size_addr)
    malicious_offset = layout.secret_addr - layout.array1
    run = machine.run(victim, initial_registers={1: malicious_offset})

    outcome = channel.reload()
    hot = [slot for slot in outcome.hot_slots if slot != 0]
    leaked = hot[0] if len(hot) == 1 else None
    return AttackResult(
        attack="dtlb",
        policy=policy,
        secret=secret,
        leaked=leaked,
        details={
            "hot_slots": outcome.hot_slots,
            "victim_cycles": run.cycles,
        },
    )


# ---------------------------------------------------------------------------
# iTLB variant
# ---------------------------------------------------------------------------

def build_itlb_victim(layout: AttackLayout) -> Program:
    """Gadget with a page-strided function table (iTLB transmitter)."""
    b = ProgramBuilder(code_base=layout.victim_code)
    b.li("r2", layout.size_addr)
    b.load("r3", "r2", 0)
    b.li("r8", layout.array1)
    b.branch("ge", "r1", "r3", "skip")
    b.add("r10", "r8", "r1")
    b.load("r4", "r10", 0)                 # secret
    b.alu("shl", "r5", "r4", imm=12)       # * PAGE per slot
    b.li("r9", 0)                          # patched to fn_table below
    b.add("r11", "r9", "r5")
    b.jmpi("r11")
    b.label("skip")
    b.halt()
    while (b.here() * INSTRUCTION_BYTES + layout.victim_code) % PAGE:
        b.nop()
    b.label("fn_table")
    for slot in range(_SLOTS):
        b.label(f"fn{slot}")
        if slot == 0:
            b.halt()
        else:
            b.jmp(f"fn{slot}")
        b.nop(_SLOT_INSTRUCTIONS - 1)
    b.halt()
    return b.build()


def _patch_fn_base(victim: Program) -> Program:
    fn_base = victim.label_pc("fn_table")
    instructions = list(victim.instructions)
    for index, inst in enumerate(instructions):
        if inst.opcode is Opcode.LOADIMM and inst.rd == 9:
            instructions[index] = Instruction(Opcode.LOADIMM, rd=9,
                                              imm=fn_base)
            break
    return Program(instructions, code_base=victim.code_base,
                   labels=dict(victim.labels))


@register_attack("itlb")
def run_itlb_variant(policy: CommitPolicy, secret: int = 42,
                     spec: Optional[MachineSpec] = None,
                     backend: str = "cycle") -> AttackResult:
    """Run the iTLB Spectre variant under the given commit policy."""
    secret = secret % _SLOTS
    if secret == 0:
        secret = 1  # slot 0 is the training pad
    layout = AttackLayout()
    machine = Machine.from_spec(spec, policy=policy, backend=backend)
    layout.map_user_memory(machine)
    machine.write_word(layout.size_addr, 16)
    machine.write_word(layout.secret_addr, secret)
    machine.write_word(layout.array1 + 1, 0)   # training lands in slot 0

    victim = _patch_fn_base(build_itlb_victim(layout))
    fn_base = victim.label_pc("fn_table")
    channel = TlbProbeChannel(machine, fn_base, slots=_SLOTS, side="i")

    warm_lines(machine, [layout.secret_addr], code_base=layout.helper_code)
    for _ in range(_TRAINING_RUNS):
        machine.run(victim, initial_registers={1: 1})

    machine.flush_address(layout.size_addr)
    malicious_offset = layout.secret_addr - layout.array1
    run = machine.run(victim, initial_registers={1: malicious_offset})

    outcome = channel.reload()
    hot = [slot for slot in outcome.hot_slots if slot != 0]
    leaked = hot[0] if len(hot) == 1 else None
    return AttackResult(
        attack="itlb",
        policy=policy,
        secret=secret,
        leaked=leaked,
        details={
            "hot_slots": outcome.hot_slots,
            "fn_base": fn_base,
            "victim_cycles": run.cycles,
        },
    )


# Registered after the iTLB variant (despite being defined first) so the
# registry preserves the paper's Table IV row order: itlb, then dtlb.
register_attack("dtlb")(run_dtlb_variant)
