"""ret2spec: RSB underflow through deep call nesting.

The RSB is a fixed-depth circular stack: a call chain deeper than the
RSB evicts the oldest return addresses, and the matching outer ``ret``
later pops an *empty* RSB.  With no prediction the front end falls
through — straight into whatever the attacker (or unlucky code layout)
placed after the ``ret``.  Maurice et al.'s ret2spec turns this into a
speculative gadget dispatch entirely within one victim program:

a) the machine's RSB is sized below the victim's call depth
   (``rsb.depth=4`` against a 5-deep nest), so the outermost frame's
   return address is evicted by the innermost call;
b) the outer frame's return register is data-dependent on a flushed
   load, so the underflowing ``ret`` resolves late — a long window;
c) the ``ret``'s fall-through is the gadget: speculative fetch runs it,
   reading the secret and transmitting through the probe array, while
   the architectural return unwinds correctly to the caller.
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.channels import FlushReloadChannel
from repro.attacks.gadgets import AttackLayout, warm_lines
from repro.api.registry import register_attack
from repro.attacks.runner import AttackResult
from repro.core.policy import CommitPolicy
from repro.isa.assembler import ProgramBuilder
from repro.isa.program import Program
from repro.machine import Machine
from repro.spec import MachineSpec

_RSB_DEPTH = 4          # the victim's call nest is 5 deep


def build_victim(layout: AttackLayout) -> Program:
    """One program: a 5-deep call nest whose outermost return underflows.

    Call chain main -> f1 -> f2 -> f3 -> f4 -> f5 pushes five return
    addresses through a depth-4 RSB, evicting main's.  The inner frames
    pop their own (correctly predicted) entries; f1's ``ret`` pops
    empty and speculates into its fall-through — the gadget.  ``r4``
    (f1's return address) is rebuilt through a flushed-load dependence
    so the ret resolves late.
    """
    b = ProgramBuilder(code_base=layout.victim_code)
    b.li("r9", layout.probe)
    b.li("r10", layout.secret_addr)
    b.li("r2", layout.delay1)
    b.call("r4", "f1")
    b.halt()                           # main's return target
    b.label("f1")
    b.load("r3", "r2", 0)              # flushed delay word (slow)
    b.alu("and", "r12", "r3", "r0")    # r12 = r3 & 0 = 0, dep on r3
    b.call("r5", "f2")
    b.add("r4", "r4", "r12")           # r4 unchanged, now resolves late
    b.ret("r4")                        # pops EMPTY -> falls through
    b.label("gadget")                  # the ret's fall-through
    b.load("r13", "r10", 0)            # secret
    b.alu("shl", "r14", "r13", imm=6)
    b.add("r11", "r9", "r14")
    b.load("r15", "r11", 0)            # transmit
    b.halt()
    b.label("f2")
    b.call("r6", "f3")
    b.ret("r5")
    b.label("f3")
    b.call("r7", "f4")
    b.ret("r6")
    b.label("f4")
    b.call("r8", "f5")
    b.ret("r7")
    b.label("f5")
    b.ret("r8")
    return b.build()


@register_attack("ret2spec")
def run_ret2spec(policy: CommitPolicy, secret: int = 42,
                 spec: Optional[MachineSpec] = None,
                 backend: str = "cycle") -> AttackResult:
    """Run the full ret2spec attack under the given commit policy."""
    if not 0 <= secret <= 255:
        raise ValueError(f"secret must be a byte, got {secret}")
    base = spec if spec is not None else MachineSpec()
    spec = base.derive(**{"rsb.depth": _RSB_DEPTH})
    layout = AttackLayout()
    machine = Machine.from_spec(spec, policy=policy, backend=backend)
    layout.map_user_memory(machine)
    machine.write_word(layout.secret_addr, secret)

    victim = build_victim(layout)
    channel = FlushReloadChannel(machine, layout.probe)

    # The victim has touched its secret and delay word recently.
    warm_lines(machine, [layout.secret_addr, layout.delay1],
               code_base=layout.helper_code)

    # Warm victim code and translations (the call nest is balanced, so
    # every run leaves the RSB empty again).
    for _ in range(2):
        machine.run(victim)

    # Flush the delay word (stretches the underflowing ret's window)
    # and the probe array.
    machine.flush_address(layout.delay1)
    channel.flush()

    run = machine.run(victim)

    outcome = channel.reload()
    return AttackResult(
        attack="ret2spec",
        policy=policy,
        secret=secret,
        leaked=outcome.value,
        details={
            "hot_slots": outcome.hot_slots,
            "rsb_depth": _RSB_DEPTH,
            "gadget_pc": victim.label_pc("gadget"),
            "victim_cycles": run.cycles,
        },
    )
