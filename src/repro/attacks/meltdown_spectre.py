"""Meltdown combined with Spectre v1 (paper Section II-B.4).

"Alternatively, if the attacker can arbitrarily control the exploit
code, she can also avoid the exception by putting the gadget behind a
mispredicted branch, i.e., combining Spectre V1 with Meltdown to read
memory across privilege domains in the same virtual address space."

The kernel read and the transmit sit on the *wrong path* of a mistrained
bounds check, so the permission fault never reaches commit — no signal
handler gymnastics needed.  The flip side of avoiding the fault is that
the attack now depends on a branch misprediction, so (unlike plain
Meltdown) it is closed by **WFB as well as WFC** — a nice confirmation
of the paper's taxonomy: WFB stops everything that needs a mispredicted
branch, WFC additionally stops fault-deferred leaks.
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.channels import FlushReloadChannel
from repro.attacks.gadgets import AttackLayout, warm_lines
from repro.api.registry import register_attack
from repro.attacks.runner import AttackResult
from repro.core.policy import CommitPolicy
from repro.isa.assembler import ProgramBuilder
from repro.isa.program import Program
from repro.machine import Machine
from repro.spec import MachineSpec
from repro.memory.paging import PrivilegeLevel

_TRAINING_RUNS = 6


def build_attacker(layout: AttackLayout) -> Program:
    """Bounds-check-guarded kernel read (offset arrives in r1)."""
    b = ProgramBuilder(code_base=layout.attacker_code)
    b.li("r2", layout.size_addr)
    b.load("r3", "r2", 0)              # flushed bound -> window
    b.li("r9", layout.probe)
    b.branch("ge", "r1", "r3", "skip")
    # wrong path in the attack run: the illegal read + transmit
    b.li("r8", layout.kernel)
    b.load("r4", "r8", 0)              # kernel secret, never commits
    b.alu("shl", "r5", "r4", imm=6)
    b.add("r10", "r9", "r5")
    b.load("r6", "r10", 0)             # transmit
    b.label("skip")
    b.halt()
    return b.build()


@register_attack("meltdown_spectre")
def run_meltdown_spectre(policy: CommitPolicy, secret: int = 42,
                         spec: Optional[MachineSpec] = None,
                         backend: str = "cycle") -> AttackResult:
    """Run the combined Meltdown+Spectre attack under ``policy``."""
    if not 0 <= secret <= 255:
        raise ValueError(f"secret must be a byte, got {secret}")
    layout = AttackLayout()
    machine = Machine.from_spec(spec, policy=policy, backend=backend)
    layout.map_user_memory(machine)
    layout.map_kernel_memory(machine)
    machine.write_word(layout.size_addr, 16)
    machine.hierarchy.memory.write_word(layout.kernel, secret)

    attacker = build_attacker(layout)
    channel = FlushReloadChannel(machine, layout.probe)

    # The kernel recently used the secret (supervisor access warms it).
    warm_lines(machine, [layout.kernel], code_base=layout.helper_code,
               privilege=PrivilegeLevel.SUPERVISOR)

    # Mistrain the bounds check toward not-taken.  With an in-bounds
    # offset the gadget body executes architecturally, so each training
    # run faults on the kernel read and recovers through the handler —
    # exactly how real Meltdown attack loops behave (and also how the
    # attacker's code lines get warm).
    for _ in range(_TRAINING_RUNS):
        machine.run(attacker, initial_registers={1: 0},
                    fault_handler_pc=attacker.label_pc("skip"))

    machine.flush_address(layout.size_addr)
    channel.flush()

    # Attack run: offset >= bound, so the branch is *actually* taken and
    # the gadget runs purely speculatively; the stale not-taken
    # prediction opens the window, the squash swallows the fault.
    run = machine.run(attacker, initial_registers={1: 64},
                      fault_handler_pc=attacker.label_pc("skip"))

    outcome = channel.reload()
    return AttackResult(
        attack="meltdown_spectre",
        policy=policy,
        secret=secret,
        leaked=outcome.value,
        details={
            "hot_slots": outcome.hot_slots,
            "attack_run_faults": [e.kind for e in run.fault_events],
            "victim_cycles": run.cycles,
        },
    )
