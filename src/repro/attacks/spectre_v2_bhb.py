"""Spectre v2 through a history-indexed BTB (the BHB variant).

With ``btb.history_bits > 0`` the BTB index folds in a branch-history
register (the BHB), as in real front ends — the defense-by-obscurity
claim being that an attacker cannot poison an entry without also
reproducing the victim's branch history.  This attack shows the sharing
survives: the attacker *replays the victim's history* before its own
aliased indirect branch, steering the poisoned entry to the exact
history-dependent index the victim's jump will consult.

a) the victim executes eight always-taken branches before its indirect
   jump, so its fetch-time BHB is a deterministic all-ones pattern;
b) the attacker's poisoner replays eight always-taken branches of its
   own (trained over a few runs until they predict taken) and then
   executes an indirect jump at a BTB-index-aliased PC with the gadget
   as target — installing the gadget under the victim's history;
c) function pointer flushed, victim triggered: the history-indexed BTB
   lookup hits the poisoned entry and speculation dives into the gadget.
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.channels import FlushReloadChannel
from repro.attacks.gadgets import AttackLayout, warm_lines
from repro.api.registry import register_attack
from repro.attacks.runner import AttackResult
from repro.core.policy import CommitPolicy
from repro.errors import SimulationError
from repro.isa.assembler import ProgramBuilder
from repro.isa.instructions import INSTRUCTION_BYTES
from repro.isa.program import Program
from repro.machine import Machine
from repro.spec import MachineSpec

_FNPTR_PTR_OFFSET = 0x810   # cell A: address of cell B (distinct line)
_FNPTR_ADDR_OFFSET = 0x880  # cell B: the function pointer itself
_HISTORY_BITS = 8
_POISON_RUNS = 4            # trains the poisoner's priming branches
_WARM_RUNS = 3              # trains the victim's priming branches


def _prime_history(b: ProgramBuilder, prefix: str) -> None:
    """Eight always-taken branches: a deterministic all-ones BHB."""
    for k in range(_HISTORY_BITS):
        b.branch("eq", "r0", "r0", f"{prefix}{k}")
        b.label(f"{prefix}{k}")


def build_victim(layout: AttackLayout) -> Program:
    """Victim: primes its history, then jumps through a function pointer."""
    b = ProgramBuilder(code_base=layout.victim_code)
    # Pointer chase through two flushed cells: the jmpi target resolves
    # only after two serialized DRAM round trips, so the speculation
    # window covers the gadget's own cold instruction fetch (its tail
    # line is never architecturally executed, hence never warm).
    b.li("r2", layout.size_addr + _FNPTR_PTR_OFFSET)
    b.load("r3", "r2", 0)              # cell A -> address of cell B
    b.load("r1", "r3", 0)              # cell B -> function pointer
    b.li("r9", layout.probe)
    b.li("r10", layout.secret_addr)
    _prime_history(b, "p")
    b.jmpi("r1")                       # history-indexed BTB lookup
    b.label("benign")
    b.halt()
    b.label("gadget")
    b.load("r4", "r10", 0)             # secret
    b.alu("shl", "r5", "r4", imm=6)
    b.add("r11", "r9", "r5")
    b.load("r6", "r11", 0)             # transmit
    b.halt()
    return b.build()


def _victim_jmpi_pc(victim: Program) -> int:
    for index, inst in enumerate(victim.instructions):
        if inst.is_indirect:
            return victim.pc_of(index)
    raise SimulationError("victim has no indirect jump")


def build_poisoner(layout: AttackLayout, victim: Program,
                   btb_entries: int, btb_shift: int) -> Program:
    """Attacker: replays the victim's history, then poisons the alias.

    As in plain v2 the poisoner's ``jmpi`` lands at the victim's
    offset-within-period so the base indices collide; the eight priming
    branches directly before it reproduce the victim's all-ones BHB so
    the *folded* indices collide too.
    """
    victim_pc = _victim_jmpi_pc(victim)
    period = btb_entries << btb_shift
    base = layout.attacker_code - (layout.attacker_code % period)
    base += victim_pc - (victim_pc % period)
    while base <= layout.victim_code + victim.code_bytes:
        base += period
    jmpi_pc = base + (victim_pc % period)
    b = ProgramBuilder(code_base=base)
    pad_instructions = ((jmpi_pc - base) // INSTRUCTION_BYTES
                        - 1 - _HISTORY_BITS)
    if pad_instructions < 0:
        raise SimulationError("poisoner priming sequence does not fit")
    b.li("r1", victim.label_pc("gadget"))  # poisoned target
    b.nop(pad_instructions)
    _prime_history(b, "q")
    b.jmpi("r1")
    b.halt()
    program = b.build()
    if program.pc_of(pad_instructions + 1 + _HISTORY_BITS) != jmpi_pc:
        raise SimulationError("poisoner jmpi misaligned")
    return program


@register_attack("spectre_v2_bhb")
def run_spectre_v2_bhb(policy: CommitPolicy, secret: int = 42,
                       spec: Optional[MachineSpec] = None,
                       backend: str = "cycle") -> AttackResult:
    """Run the BHB-steered Spectre v2 attack under the given policy."""
    if not 0 <= secret <= 255:
        raise ValueError(f"secret must be a byte, got {secret}")
    base = spec if spec is not None else MachineSpec()
    spec = base.derive(**{"btb.history_bits": _HISTORY_BITS})
    layout = AttackLayout()
    machine = Machine.from_spec(spec, policy=policy, backend=backend)
    layout.map_user_memory(machine)
    machine.write_word(layout.secret_addr, secret)

    victim = build_victim(layout)
    fnptr_ptr = layout.size_addr + _FNPTR_PTR_OFFSET
    fnptr_addr = layout.size_addr + _FNPTR_ADDR_OFFSET
    machine.write_word(fnptr_ptr, fnptr_addr)
    machine.write_word(fnptr_addr, victim.label_pc("benign"))
    channel = FlushReloadChannel(machine, layout.probe)

    warm_lines(machine, [layout.secret_addr, fnptr_ptr, fnptr_addr],
               code_base=layout.helper_code)

    # Warm the victim until its priming branches predict taken (the
    # attack run then fetches the jmpi under the all-ones history).
    for _ in range(_WARM_RUNS):
        machine.run(victim)

    # b) poison under the replayed history.  Early runs train the
    # poisoner's own priming branches; the last installs the gadget at
    # the history-folded aliased index.
    poisoner = build_poisoner(layout, victim,
                              machine.btb.config.entries,
                              machine.btb.config.shift)
    for _ in range(_POISON_RUNS):
        machine.run(poisoner)

    # c) flush both chain cells and the probe array.
    machine.flush_address(fnptr_ptr)
    machine.flush_address(fnptr_addr)
    channel.flush()

    # d) trigger the victim.
    run = machine.run(victim)

    outcome = channel.reload()
    return AttackResult(
        attack="spectre_v2_bhb",
        policy=policy,
        secret=secret,
        leaked=outcome.value,
        details={
            "hot_slots": outcome.hot_slots,
            "history_bits": _HISTORY_BITS,
            "gadget_pc": victim.label_pc("gadget"),
            "victim_cycles": run.cycles,
        },
    )
