"""Side-channel receivers: flush+reload and prime+probe.

The receivers model the attacker's *committed* measurement loop
(``rdtsc; access; rdtsc``) using the machine's non-perturbing probe
interface, which returns exactly the latency such a timed access would
observe against current committed state.  Speculative/shadow state is
invisible to them by construction — which is the point of SafeSpec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.machine import Machine

# A committed L1/L2 hit is < ~60 cycles in the Table II configuration; a
# miss to memory is >= 191.  Anything under this threshold counts as
# "present".
DEFAULT_HIT_THRESHOLD = 100

# TLB receiver: a TLB hit costs 1 cycle; the cheapest possible walk is
# walk_levels (4) L1 hits = 16 cycles.
DEFAULT_TLB_THRESHOLD = 8


@dataclass
class ProbeOutcome:
    """Result of scanning all probe slots."""

    latencies: List[int]
    hot_slots: List[int]

    @property
    def value(self) -> Optional[int]:
        """The leaked value: the unique hot slot, else None."""
        if len(self.hot_slots) == 1:
            return self.hot_slots[0]
        return None


class FlushReloadChannel:
    """Classic flush+reload over an attacker-controlled probe array.

    The probe array has ``slots`` cache-line-aligned entries spaced
    ``stride`` bytes apart; the victim's secret-dependent access touches
    slot ``secret`` and the receiver finds the hot line.
    """

    def __init__(self, machine: Machine, base: int, slots: int = 256,
                 stride: int = 64,
                 threshold: int = DEFAULT_HIT_THRESHOLD) -> None:
        self.machine = machine
        self.base = base
        self.slots = slots
        self.stride = stride
        self.threshold = threshold

    def slot_address(self, slot: int) -> int:
        return self.base + slot * self.stride

    def map(self) -> None:
        """Map the probe array into the attacker's address space."""
        self.machine.map_user_range(self.base, self.slots * self.stride)

    def flush(self) -> None:
        """Flush every probe slot (the attack's setup step)."""
        for slot in range(self.slots):
            self.machine.flush_address(self.slot_address(slot))

    def reload(self) -> ProbeOutcome:
        """Time a committed load of every slot; hot slots are hits."""
        return _scan(self.slots, self.threshold,
                     lambda s: self.machine.probe_latency(
                         self.slot_address(s)))


class IcacheReloadChannel:
    """Flush+reload against the instruction cache: the receiver times a
    committed fetch of each probe slot (the paper's I-cache variant)."""

    def __init__(self, machine: Machine, base: int, slots: int = 256,
                 stride: int = 256,
                 threshold: int = DEFAULT_HIT_THRESHOLD) -> None:
        self.machine = machine
        self.base = base
        self.slots = slots
        self.stride = stride
        self.threshold = threshold

    def slot_address(self, slot: int) -> int:
        return self.base + slot * self.stride

    def flush(self) -> None:
        for slot in range(self.slots):
            addr = self.slot_address(slot)
            translation = self.machine.page_table.lookup(addr)
            if translation is not None:
                self.machine.hierarchy.clflush(translation.physical(addr))

    def reload(self) -> ProbeOutcome:
        return _scan(self.slots, self.threshold,
                     lambda s: self.machine.probe_fetch_latency(
                         self.slot_address(s)))


class TlbProbeChannel:
    """Receiver for the TLB variants: times the *translation* of one page
    per probe slot.  A speculatively installed TLB entry makes the
    translation a 1-cycle hit; otherwise a multi-access page walk runs."""

    def __init__(self, machine: Machine, base: int, slots: int = 256,
                 side: str = "d",
                 threshold: int = DEFAULT_TLB_THRESHOLD) -> None:
        self.machine = machine
        self.base = base
        self.slots = slots
        self.side = side
        self.threshold = threshold
        self.page_stride = 4096

    def slot_address(self, slot: int) -> int:
        return self.base + slot * self.page_stride

    def reload(self) -> ProbeOutcome:
        return _scan(self.slots, self.threshold,
                     lambda s: self.machine.probe_translation_latency(
                         self.slot_address(s), side=self.side))


class PrimeProbeChannel:
    """Prime+Probe against the L1 data cache (the paper's reference [21]).

    Where flush+reload needs ``clflush`` and shared memory, prime+probe
    needs neither: the attacker fills ("primes") every way of the
    monitored L1 sets with its own lines, lets the victim run, then
    re-times its lines — a slow line means the victim's secret-dependent
    access landed in (and evicted from) that set.

    The victim's unrelated accesses evict attacker lines too, so the
    receiver works differentially: :meth:`calibrate` records the noise
    sets left by a benign victim run, and :meth:`probe` reports only the
    sets that newly became hot.
    """

    def __init__(self, machine: Machine, prime_base: int = 0x300_0000,
                 l1_hit_threshold: int = 10) -> None:
        self.machine = machine
        self.prime_base = prime_base
        self.threshold = l1_hit_threshold
        config = machine.hierarchy.l1d.config
        self.num_sets = config.num_sets
        self.ways = config.associativity
        self.line_bytes = config.line_bytes
        self._way_stride = self.num_sets * self.line_bytes
        self._noise_sets: set = set()
        machine.map_user_range(prime_base,
                               self.ways * self._way_stride)

    def line_address(self, set_index: int, way: int) -> int:
        """Attacker line mapping to ``set_index`` (one per way)."""
        return (self.prime_base + set_index * self.line_bytes
                + way * self._way_stride)

    def set_of(self, vaddr: int) -> int:
        """The L1 set a victim address maps to."""
        return self.machine.hierarchy.l1d.set_index(vaddr)

    def prime(self) -> None:
        """Architecturally load every way of every set."""
        from repro.attacks.gadgets import warm_lines

        addresses = [self.line_address(s, w)
                     for w in range(self.ways)
                     for s in range(self.num_sets)]
        warm_lines(self.machine, addresses, code_base=0x74_000)

    def _evicted_sets(self) -> set:
        evicted = set()
        for set_index in range(self.num_sets):
            for way in range(self.ways):
                addr = self.line_address(set_index, way)
                if self.machine.probe_latency(addr) > self.threshold:
                    evicted.add(set_index)
                    break
        return evicted

    def calibrate(self) -> set:
        """Record the sets a benign victim run perturbs (call after
        prime + benign run)."""
        self._noise_sets = self._evicted_sets()
        return set(self._noise_sets)

    def probe(self) -> ProbeOutcome:
        """Sets newly evicted relative to the calibration run."""
        signal = sorted(self._evicted_sets() - self._noise_sets)
        return ProbeOutcome(latencies=[], hot_slots=signal)


def _scan(slots: int, threshold: int,
          measure: Callable[[int], int]) -> ProbeOutcome:
    latencies = [measure(slot) for slot in range(slots)]
    hot = [slot for slot, lat in enumerate(latencies) if lat < threshold]
    return ProbeOutcome(latencies=latencies, hot_slots=hot)


def classify_hit(latency: int,
                 threshold: int = DEFAULT_HIT_THRESHOLD) -> bool:
    """Whether a measured latency indicates a cache hit."""
    return latency < threshold
