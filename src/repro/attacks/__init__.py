"""Proof-of-concept speculation attacks run against the simulated CPU.

Each attack module exposes one entry point that takes a commit policy
and returns an :class:`~repro.attacks.runner.AttackResult` saying what was
leaked.  Together they regenerate Tables III and IV of the paper:

==============  =====================  ========  =====  =====
Attack          Module                 BASELINE  WFB    WFC
==============  =====================  ========  =====  =====
Spectre v1      ``spectre_v1``         leaks     safe   safe
Spectre v2      ``spectre_v2``         leaks     safe   safe
Meltdown        ``meltdown``           leaks     LEAKS  safe
I-cache         ``icache_variant``     leaks     safe   safe
iTLB            ``tlb_variant``        leaks     safe   safe
dTLB            ``tlb_variant``        leaks     safe   safe
Transient       ``tsa``                n/a       (small shadow leaks;
                                                 SECURE sizing safe)
ret2spec        ``ret2spec``           leaks     safe   safe
SpectreRSB      ``spectre_rsb``        leaks     safe   safe
Spectre v2 BHB  ``spectre_v2_bhb``     leaks     safe   safe
Spectre v4      ``ssb_v4``             leaks     LEAKS  safe
==============  =====================  ========  =====  =====

Each entry point registers itself with
:data:`repro.api.registry.ATTACKS` (``@register_attack``), which is
where the catalogue — ``ALL_ATTACKS``, CLI choices, matrix rows and the
expected-closed metadata — derives from.  This ``__init__`` is the one
place the attack modules are imported, so registration (and hence
table) order is fixed here no matter which entry point touches the
package first.
"""

from repro.attacks.runner import (AttackResult, expected_closed,
                                  run_attack_by_name)
# Import order below IS the registry order: the paper's Tables III/IV
# row order (spectre_v1, spectre_v1_pp, spectre_v2, meltdown,
# meltdown_spectre, icache, itlb, dtlb, transient), then the extended
# scenario families (ret2spec, spectre_rsb, spectre_v2_bhb, ssb_v4).
from repro.attacks.spectre_v1 import run_spectre_v1
from repro.attacks.spectre_pp import run_spectre_v1_prime_probe
from repro.attacks.spectre_v2 import run_spectre_v2
from repro.attacks.meltdown import run_meltdown
from repro.attacks.meltdown_spectre import run_meltdown_spectre
from repro.attacks.icache_variant import run_icache_variant
from repro.attacks.tlb_variant import run_dtlb_variant, run_itlb_variant
from repro.attacks.tsa import run_tsa
from repro.attacks.ret2spec import run_ret2spec
from repro.attacks.spectre_rsb import run_spectre_rsb
from repro.attacks.spectre_v2_bhb import run_spectre_v2_bhb
from repro.attacks.ssb_v4 import run_ssb_v4


def __getattr__(name):
    # Resolved lazily (after every registration above has run) so the
    # legacy tuple always reflects the fully-populated registry.
    if name == "ALL_ATTACKS":
        from repro.attacks import runner

        return runner.ALL_ATTACKS
    raise AttributeError(
        f"module 'repro.attacks' has no attribute {name!r}")

__all__ = [
    "ALL_ATTACKS",
    "AttackResult",
    "expected_closed",
    "run_attack_by_name",
    "run_dtlb_variant",
    "run_icache_variant",
    "run_itlb_variant",
    "run_meltdown",
    "run_meltdown_spectre",
    "run_ret2spec",
    "run_spectre_rsb",
    "run_spectre_v1",
    "run_spectre_v1_prime_probe",
    "run_spectre_v2",
    "run_spectre_v2_bhb",
    "run_ssb_v4",
    "run_tsa",
]
