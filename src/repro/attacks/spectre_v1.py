"""Spectre variant 1: bounds-check bypass (paper Section II-B.2).

The victim gadget is the classic two-load sequence::

    if (offset < array1_size)
        y = array2[array1[offset] * 64];

The attack proceeds exactly as the paper describes:

a) train the branch predictor with in-bounds offsets so the bounds check
   predicts "in bounds";
b) flush ``array1_size`` so the check's resolution is delayed, opening a
   large speculation window;
c) call the victim with a malicious out-of-bounds offset that makes
   ``array1[offset]`` alias the secret; the transmitting load deposits a
   secret-indexed line in the cache (baseline) or the shadow (SafeSpec);
d) flush+reload the probe array to recover the secret.
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.channels import FlushReloadChannel
from repro.attacks.gadgets import AttackLayout, warm_lines
from repro.api.registry import register_attack
from repro.attacks.runner import AttackResult
from repro.core.policy import CommitPolicy
from repro.isa.assembler import ProgramBuilder
from repro.isa.program import Program
from repro.machine import Machine
from repro.spec import MachineSpec

_TRAINING_RUNS = 6
_IN_BOUNDS_OFFSET = 1


def build_victim(layout: AttackLayout) -> Program:
    """The victim program.  The offset arrives in r1 (attacker input)."""
    b = ProgramBuilder(code_base=layout.victim_code)
    b.li("r2", layout.size_addr)
    b.load("r3", "r2", 0)                 # array1_size (flushed by attacker)
    b.li("r8", layout.array1)
    b.li("r9", layout.probe)
    b.branch("ge", "r1", "r3", "skip")    # the bounds check
    b.add("r10", "r8", "r1")
    b.load("r4", "r10", 0)                # array1[offset] -> secret when OOB
    b.alu("shl", "r5", "r4", imm=6)       # * 64 (one cache line per value)
    b.add("r11", "r9", "r5")
    b.load("r6", "r11", 0)                # transmit
    b.label("skip")
    b.halt()
    return b.build()


@register_attack("spectre_v1")
def run_spectre_v1(policy: CommitPolicy, secret: int = 42,
                   spec: Optional[MachineSpec] = None,
                   backend: str = "cycle") -> AttackResult:
    """Run the full Spectre v1 attack under the given commit policy."""
    if not 0 <= secret <= 255:
        raise ValueError(f"secret must be a byte, got {secret}")
    layout = AttackLayout()
    machine = Machine.from_spec(spec, policy=policy, backend=backend)
    layout.map_user_memory(machine)
    machine.write_word(layout.size_addr, 16)
    machine.write_word(layout.secret_addr, secret)

    victim = build_victim(layout)
    channel = FlushReloadChannel(machine, layout.probe)

    # The victim has touched its own secret recently (it is the victim's
    # working data), so the in-window secret read is an L1 hit.
    warm_lines(machine, [layout.secret_addr], code_base=layout.helper_code)

    # a) mistrain the bounds check
    for _ in range(_TRAINING_RUNS):
        machine.run(victim,
                    initial_registers={1: _IN_BOUNDS_OFFSET})

    # b) flush the bound and the probe array
    machine.flush_address(layout.size_addr)
    channel.flush()

    # c) malicious call: offset aliases array1[offset] onto the secret
    malicious_offset = layout.secret_addr - layout.array1
    run = machine.run(victim, initial_registers={1: malicious_offset})

    # d) receive
    outcome = channel.reload()
    return AttackResult(
        attack="spectre_v1",
        policy=policy,
        secret=secret,
        leaked=outcome.value,
        details={
            "hot_slots": outcome.hot_slots,
            "victim_cycles": run.cycles,
            "mispredicts": run.counters.get("core.mispredicts", 0),
        },
    )
