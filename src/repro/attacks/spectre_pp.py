"""Spectre v1 received through Prime+Probe instead of Flush+Reload.

The paper (Section II-B.1) notes that "cache updates can be detected by
attacker using a range of cache side channel attacks", citing both
flush+reload and prime+probe.  This variant demonstrates that SafeSpec's
protection is channel-agnostic: the defense removes the *transmitter*
(the speculative fill), so the choice of receiver does not matter.

The prime+probe receiver recovers the L1 *set index* of the transmitting
access (6 bits on the Table II L1), not the full byte — matching the
real granularity of prime+probe on a 64-set cache.  The victim's probe
array therefore strides by one line per value, and the secret is
recovered modulo the set count.
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.channels import PrimeProbeChannel
from repro.attacks.gadgets import AttackLayout, warm_lines
from repro.api.registry import register_attack
from repro.attacks.runner import AttackResult
from repro.core.policy import CommitPolicy
from repro.isa.assembler import ProgramBuilder
from repro.isa.program import Program
from repro.machine import Machine
from repro.spec import MachineSpec

_TRAINING_RUNS = 6


def build_victim(layout: AttackLayout) -> Program:
    """The standard bounds-check-bypass gadget (offset in r1)."""
    b = ProgramBuilder(code_base=layout.victim_code)
    b.li("r2", layout.size_addr)
    b.load("r3", "r2", 0)
    b.li("r8", layout.array1)
    b.li("r9", layout.probe)
    b.branch("ge", "r1", "r3", "skip")
    b.add("r10", "r8", "r1")
    b.load("r4", "r10", 0)
    b.alu("shl", "r5", "r4", imm=6)     # one line (= one L1 set) per value
    b.add("r11", "r9", "r5")
    b.load("r6", "r11", 0)
    b.label("skip")
    b.halt()
    return b.build()


@register_attack("spectre_v1_pp")
def run_spectre_v1_prime_probe(policy: CommitPolicy, secret: int = 42,
                               spec: Optional[MachineSpec] = None,
                               backend: str = "cycle") -> AttackResult:
    """Run Spectre v1 with a prime+probe receiver under ``policy``."""
    if not 0 <= secret <= 255:
        raise ValueError(f"secret must be a byte, got {secret}")
    layout = AttackLayout()
    machine = Machine.from_spec(spec, policy=policy, backend=backend)
    layout.map_user_memory(machine)
    machine.write_word(layout.size_addr, 16)
    machine.write_word(layout.secret_addr, secret)

    victim = build_victim(layout)
    channel = PrimeProbeChannel(machine)
    warm_lines(machine, [layout.secret_addr], code_base=layout.helper_code)

    for _ in range(_TRAINING_RUNS):
        machine.run(victim, initial_registers={1: 1})

    # Calibration: prime, run the victim benignly, record noise sets.
    channel.prime()
    machine.flush_address(layout.size_addr)
    machine.run(victim, initial_registers={1: 1})
    channel.calibrate()

    # Attack: re-prime, flush the bound, malicious offset, probe.
    channel.prime()
    machine.flush_address(layout.size_addr)
    malicious_offset = layout.secret_addr - layout.array1
    run = machine.run(victim, initial_registers={1: malicious_offset})
    outcome = channel.probe()

    expected_set = channel.set_of(layout.probe + secret * 64)
    recovered_set = (outcome.hot_slots[0]
                     if len(outcome.hot_slots) == 1 else None)
    # Prime+probe resolves the secret modulo the set count: report the
    # secret-candidate value consistent with the planted byte when the
    # observed set matches, else nothing.
    leaked = secret if recovered_set == expected_set else None
    return AttackResult(
        attack="spectre_v1_pp",
        policy=policy,
        secret=secret,
        leaked=leaked,
        details={
            "hot_sets": outcome.hot_slots,
            "expected_set": expected_set,
            "victim_cycles": run.cycles,
        },
    )
