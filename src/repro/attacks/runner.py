"""Attack orchestration: results, job plumbing, and the security matrix.

The attack catalogue itself lives in the component registry
(:data:`repro.api.registry.ATTACKS`): each attack module registers its
entry point with ``@register_attack``, carrying the paper's
expected-closed metadata.  This module keeps the classic
:class:`AttackResult` type, the job-spec worker entry point, the matrix
renderer, and the ``ALL_ATTACKS`` registry view.  Batch runs go through
:meth:`repro.api.session.Session.matrix`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.api import registry as api_registry
from repro.core.policy import CommitPolicy
from repro.exec.job import SimJob, SimResult, json_clean_details
from repro.spec import MachineSpec, machine_spec_from_params


@dataclass
class AttackResult:
    """Outcome of one attack attempt.

    ``leaked`` is the value the receiver recovered (None when nothing
    leaked); ``success`` is True when the recovered value equals the
    planted secret — the attacker learned something they should not have.
    """

    attack: str
    policy: CommitPolicy
    secret: int
    leaked: Optional[int]
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def success(self) -> bool:
        return self.leaked is not None and self.leaked == self.secret

    @property
    def closed(self) -> bool:
        """Whether the defense closed the channel (attack failed)."""
        return not self.success

    def __str__(self) -> str:
        verdict = "LEAKED" if self.success else "closed"
        return (f"{self.attack:12s} under {self.policy.value:8s}: {verdict} "
                f"(secret={self.secret}, recovered={self.leaked})")


def expected_closed(attack: str, policy: CommitPolicy) -> bool:
    """Whether the paper says ``policy`` closes ``attack`` (Table III).

    Derived from the attack registry's ``branch_free`` metadata:
    Meltdown-style branch-free leaks are only closed by WFC, everything
    else rides a branch misprediction and is closed by WFB and WFC.
    """
    return api_registry.expected_closed(attack, policy)


def run_attack_by_name(name: str, policy: CommitPolicy,
                       secret: int = 42,
                       spec: Optional[MachineSpec] = None,
                       backend: str = "cycle") -> AttackResult:
    """Run one registered attack by name.

    ``spec`` selects the victim machine's hardware shape and ``backend``
    the execution backend; each is only forwarded when non-default, so
    externally registered attacks with the classic ``(policy, secret)``
    signature keep working spec-less.
    """
    attack = api_registry.ATTACKS.get(name)
    kwargs = {}
    if spec is not None:
        kwargs["spec"] = spec
    if backend != "cycle":
        kwargs["backend"] = backend
    return attack(policy, secret, **kwargs)


def run_attack_job(job: SimJob) -> SimResult:
    """Execute one attack job from scratch — the executor worker entry.

    The attack function builds (and mistrains) its own machines, so the
    whole run is reconstructed from the job spec; the outcome is folded
    into a serializable :class:`~repro.exec.job.SimResult`.
    """
    secret = int(job.params.get("secret", 42))
    backend = str(job.params.get("backend", "cycle"))
    outcome = run_attack_by_name(job.target, job.policy, secret,
                                 spec=machine_spec_from_params(job.params),
                                 backend=backend)
    return SimResult(
        job_key=job.key(),
        kind=job.kind,
        target=job.target,
        policy=job.policy,
        secret=outcome.secret,
        leaked=outcome.leaked,
        details=json_clean_details(outcome.details),
    )


def attack_result_from_sim(result: SimResult) -> AttackResult:
    """Rehydrate the classic :class:`AttackResult` view of a job result."""
    return AttackResult(
        attack=result.target,
        policy=result.policy,
        secret=result.secret if result.secret is not None else 0,
        leaked=result.leaked,
        details=dict(result.details),
    )


def render_matrix(matrix: Dict[str, Dict[str, AttackResult]]) -> str:
    """Pretty-print a security matrix as the paper's check/cross table."""
    policies = sorted({p for row in matrix.values() for p in row})
    header = f"{'attack':12s} " + " ".join(f"{p:>9s}" for p in policies)
    lines = [header, "-" * len(header)]
    for attack, row in matrix.items():
        cells = []
        for policy in policies:
            result = row.get(policy)
            if result is None:
                cells.append(f"{'-':>9s}")
            else:
                cells.append(f"{'closed' if result.closed else 'LEAKED':>9s}")
        lines.append(f"{attack:12s} " + " ".join(cells))
    return "\n".join(lines)


def __getattr__(name):
    # Legacy alias: the hand-maintained tuple is now derived from the
    # registry (computed on first access so importing this module does
    # not force-load every attack module).
    if name == "ALL_ATTACKS":
        return tuple(api_registry.attack_names())
    raise AttributeError(
        f"module 'repro.attacks.runner' has no attribute {name!r}")
