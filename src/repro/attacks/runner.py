"""Attack orchestration: results, registry, and the security matrix.

``security_matrix`` regenerates Tables III and IV of the paper: it runs
every attack under BASELINE, WFB and WFC and reports which policies close
which attacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.policy import CommitPolicy
from repro.errors import ConfigError
from repro.exec.executor import SerialExecutor
from repro.exec.job import SimJob, SimResult, attack_job, json_clean_details


@dataclass
class AttackResult:
    """Outcome of one attack attempt.

    ``leaked`` is the value the receiver recovered (None when nothing
    leaked); ``success`` is True when the recovered value equals the
    planted secret — the attacker learned something they should not have.
    """

    attack: str
    policy: CommitPolicy
    secret: int
    leaked: Optional[int]
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def success(self) -> bool:
        return self.leaked is not None and self.leaked == self.secret

    @property
    def closed(self) -> bool:
        """Whether the defense closed the channel (attack failed)."""
        return not self.success

    def __str__(self) -> str:
        verdict = "LEAKED" if self.success else "closed"
        return (f"{self.attack:12s} under {self.policy.value:8s}: {verdict} "
                f"(secret={self.secret}, recovered={self.leaked})")


def _registry() -> Dict[str, Callable[[CommitPolicy, int], AttackResult]]:
    # Imported lazily to avoid import cycles with the attack modules.
    from repro.attacks.icache_variant import run_icache_variant
    from repro.attacks.meltdown import run_meltdown
    from repro.attacks.meltdown_spectre import run_meltdown_spectre
    from repro.attacks.spectre_pp import run_spectre_v1_prime_probe
    from repro.attacks.spectre_v1 import run_spectre_v1
    from repro.attacks.spectre_v2 import run_spectre_v2
    from repro.attacks.tlb_variant import run_dtlb_variant, run_itlb_variant
    from repro.attacks.tsa import run_tsa

    return {
        "spectre_v1": run_spectre_v1,
        "spectre_v1_pp": run_spectre_v1_prime_probe,
        "spectre_v2": run_spectre_v2,
        "meltdown": run_meltdown,
        "meltdown_spectre": run_meltdown_spectre,
        "icache": run_icache_variant,
        "itlb": run_itlb_variant,
        "dtlb": run_dtlb_variant,
        "transient": run_tsa,
    }


ALL_ATTACKS = ("spectre_v1", "spectre_v1_pp", "spectre_v2", "meltdown",
               "meltdown_spectre", "icache", "itlb", "dtlb", "transient")

# Attacks whose leak needs only a faulting load with no unresolved older
# branch, so WFB promotes the line before the fault is seen at commit;
# every other registered attack rides a branch misprediction (paper
# Table III: closed by WFB and WFC alike).
_MELTDOWN_ONLY = frozenset({"meltdown"})


def expected_closed(attack: str, policy: CommitPolicy) -> bool:
    """Whether the paper says ``policy`` closes ``attack`` (Table III)."""
    if attack in _MELTDOWN_ONLY:
        return policy.stops_meltdown
    return policy.stops_spectre


def run_attack_by_name(name: str, policy: CommitPolicy,
                       secret: int = 42) -> AttackResult:
    """Run one registered attack by name."""
    registry = _registry()
    if name not in registry:
        raise ConfigError(
            f"unknown attack {name!r}; choose from {sorted(registry)}")
    return registry[name](policy, secret)


def run_attack_job(job: SimJob) -> SimResult:
    """Execute one attack job from scratch — the executor worker entry.

    The attack function builds (and mistrains) its own machines, so the
    whole run is reconstructed from the job spec; the outcome is folded
    into a serializable :class:`~repro.exec.job.SimResult`.
    """
    outcome = run_attack_by_name(job.target, job.policy, job.secret)
    return SimResult(
        job_key=job.key(),
        kind=job.kind,
        target=job.target,
        policy=job.policy,
        secret=outcome.secret,
        leaked=outcome.leaked,
        details=json_clean_details(outcome.details),
    )


def attack_result_from_sim(result: SimResult) -> AttackResult:
    """Rehydrate the classic :class:`AttackResult` view of a job result."""
    return AttackResult(
        attack=result.target,
        policy=result.policy,
        secret=result.secret if result.secret is not None else 0,
        leaked=result.leaked,
        details=dict(result.details),
    )


def security_matrix(attacks: Optional[List[str]] = None,
                    policies: Optional[List[CommitPolicy]] = None,
                    secret: int = 42,
                    executor=None) -> Dict[str, Dict[str, AttackResult]]:
    """Run every (attack, policy) pair — Tables III and IV.

    The pairs are submitted as one batch through ``executor`` (default: a
    cacheless :class:`~repro.exec.executor.SerialExecutor`), so callers
    can fan the matrix out over workers and/or back it with the on-disk
    result cache.  Returns ``{attack_name: {policy_value: AttackResult}}``.
    """
    registry = _registry()
    attacks = list(attacks) if attacks is not None else list(ALL_ATTACKS)
    policies = policies or [CommitPolicy.BASELINE, CommitPolicy.WFB,
                            CommitPolicy.WFC]
    for name in attacks:
        if name not in registry:
            raise ConfigError(f"unknown attack {name!r}")
    executor = executor if executor is not None else SerialExecutor()
    jobs = [attack_job(name, policy, secret)
            for name in attacks for policy in policies]
    results = executor.run(jobs)
    matrix: Dict[str, Dict[str, AttackResult]] = {name: {}
                                                  for name in attacks}
    for job, result in zip(jobs, results):
        matrix[job.target][job.policy.value] = attack_result_from_sim(result)
    return matrix


def render_matrix(matrix: Dict[str, Dict[str, AttackResult]]) -> str:
    """Pretty-print a security matrix as the paper's check/cross table."""
    policies = sorted({p for row in matrix.values() for p in row})
    header = f"{'attack':12s} " + " ".join(f"{p:>9s}" for p in policies)
    lines = [header, "-" * len(header)]
    for attack, row in matrix.items():
        cells = []
        for policy in policies:
            result = row.get(policy)
            if result is None:
                cells.append(f"{'-':>9s}")
            else:
                cells.append(f"{'closed' if result.closed else 'LEAKED':>9s}")
        lines.append(f"{attack:12s} " + " ".join(cells))
    return "\n".join(lines)
