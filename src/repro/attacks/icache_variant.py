"""The paper's new I-cache variant of Spectre (Section IV-A, Figure 5).

Instead of a data-dependent *data* access, the gadget performs a
data-dependent *control transfer*: the secret selects which of 256
function slots gets speculatively fetched, leaving the signal in the
instruction cache.  The receiver then times a committed fetch of each
slot.

As in the paper's PoC, the tricky part is that a predicted branch's
I-cache footprint is *not* data dependent (the BTB target is whatever was
trained).  The data-dependent fetch only happens when the in-window
indirect jump *resolves* and redirects the (still speculative) front end
to the secret-selected slot — so the window opened by the flushed bounds
check must be long enough to cover the gadget's resolution, which the
delayed ``array1_size`` load guarantees.

Training uses slot 0 as the benign landing pad (it contains ``halt``;
the other slots hold self-loops that only ever run speculatively), so the
receiver excludes slot 0 and the attack leaks secrets in 1..255.
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.channels import IcacheReloadChannel
from repro.attacks.gadgets import AttackLayout, warm_lines
from repro.api.registry import register_attack
from repro.attacks.runner import AttackResult
from repro.core.policy import CommitPolicy
from repro.isa.assembler import ProgramBuilder
from repro.isa.instructions import INSTRUCTION_BYTES
from repro.isa.program import Program
from repro.machine import Machine
from repro.spec import MachineSpec

_SLOTS = 256
_SLOT_BYTES = 256                       # 16 instructions per function slot
_SLOT_INSTRUCTIONS = _SLOT_BYTES // INSTRUCTION_BYTES
_TRAINING_RUNS = 6


def build_victim(layout: AttackLayout) -> Program:
    """Victim with the Figure-5 gadget and a 256-slot function table."""
    b = ProgramBuilder(code_base=layout.victim_code)
    b.li("r2", layout.size_addr)
    b.load("r3", "r2", 0)                   # flushed bound -> window
    b.li("r8", layout.array1)
    b.branch("ge", "r1", "r3", "skip")      # bounds check
    b.add("r10", "r8", "r1")
    b.load("r4", "r10", 0)                  # secret
    b.alu("shl", "r5", "r4", imm=8)         # * slot bytes (256)
    b.li("r9", 0)                           # patched below to fn_base
    b.add("r11", "r9", "r5")
    b.jmpi("r11")                           # data-dependent control flow
    b.label("skip")
    b.halt()
    # Pad to a slot-aligned function table.
    while (b.here() * INSTRUCTION_BYTES) % _SLOT_BYTES:
        b.nop()
    b.label("fn_table")
    for slot in range(_SLOTS):
        b.label(f"fn{slot}")
        if slot == 0:
            # Benign training landing pad: terminates architecturally.
            b.halt()
            b.nop(_SLOT_INSTRUCTIONS - 1)
        else:
            # A self-loop: pins speculative fetch to this slot's page/line.
            b.jmp(f"fn{slot}")
            b.nop(_SLOT_INSTRUCTIONS - 1)
    b.halt()
    program = b.build()
    return program


def _patch_fn_base(layout: AttackLayout, victim: Program) -> Program:
    """Rebuild the victim with r9 = the real fn_table address.

    The table address is only known after the first build (it depends on
    padding), so the victim is assembled twice.
    """
    fn_base = victim.label_pc("fn_table")
    instructions = list(victim.instructions)
    for index, inst in enumerate(instructions):
        if inst.opcode.value == "loadimm" and inst.rd == 9:
            from repro.isa.instructions import Instruction, Opcode

            instructions[index] = Instruction(
                Opcode.LOADIMM, rd=9, imm=fn_base)
            break
    return Program(instructions, code_base=victim.code_base,
                   labels=dict(victim.labels))


@register_attack("icache")
def run_icache_variant(policy: CommitPolicy, secret: int = 42,
                       spec: Optional[MachineSpec] = None,
                       backend: str = "cycle") -> AttackResult:
    """Run the I-cache Spectre variant under the given commit policy."""
    if not 1 <= secret <= 255:
        raise ValueError(
            f"secret must be in 1..255 (slot 0 is the training pad), "
            f"got {secret}")
    layout = AttackLayout()
    machine = Machine.from_spec(spec, policy=policy, backend=backend)
    layout.map_user_memory(machine)
    machine.write_word(layout.size_addr, 16)
    machine.write_word(layout.secret_addr, secret)
    machine.write_word(layout.array1 + 1, 0)   # training lands in slot 0

    victim = _patch_fn_base(layout, build_victim(layout))
    fn_base = victim.label_pc("fn_table")
    channel = IcacheReloadChannel(machine, fn_base, slots=_SLOTS,
                                  stride=_SLOT_BYTES)

    warm_lines(machine, [layout.secret_addr], code_base=layout.helper_code)
    for _ in range(_TRAINING_RUNS):
        machine.run(victim, initial_registers={1: 1})

    machine.flush_address(layout.size_addr)
    channel.flush()

    malicious_offset = layout.secret_addr - layout.array1
    run = machine.run(victim, initial_registers={1: malicious_offset})

    outcome = channel.reload()
    # Slot 0 is the architecturally trained landing pad: always warm.
    hot = [slot for slot in outcome.hot_slots if slot != 0]
    leaked = hot[0] if len(hot) == 1 else None
    return AttackResult(
        attack="icache",
        policy=policy,
        secret=secret,
        leaked=leaked,
        details={
            "hot_slots": outcome.hot_slots,
            "fn_base": fn_base,
            "victim_cycles": run.cycles,
        },
    )
