"""Spectre v4: speculative store bypass (speculative store-to-load
forwarding violation).

Under memory-dependence speculation (``core.mem_dep_speculation=true``)
a load may issue past an older store whose *address* has not resolved.
When they alias, the load transiently consumed the stale pre-store
value; the core later detects the conflict and squash-replays the load
— architecturally invisible, micro-architecturally a transmitter:

a) a pointer is loaded through a flushed cell, so the following store's
   address resolves very late;
b) the store overwrites the secret cell with a harmless value;
c) a younger load of the same cell issues first, *bypassing* the store,
   and reads the still-present secret — which indexes the probe array
   before the replay corrects everything to the overwritten value.

No branch is involved anywhere, so like Meltdown this leak is
``branch_free``: WFB's promote-on-branch-resolution promotes the
in-flight accesses (nothing ever blocks them) and leaks; only WFC's
promote-at-commit closes the channel.
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.channels import FlushReloadChannel
from repro.attacks.gadgets import AttackLayout, warm_lines
from repro.api.registry import register_attack
from repro.attacks.runner import AttackResult
from repro.core.policy import CommitPolicy
from repro.isa.assembler import ProgramBuilder
from repro.isa.program import Program
from repro.machine import Machine
from repro.spec import MachineSpec


def build_victim(layout: AttackLayout, overwrite: int) -> Program:
    """The store-bypass gadget, branch-free throughout."""
    b = ProgramBuilder(code_base=layout.victim_code)
    b.li("r9", layout.probe)
    b.li("r10", layout.secret_addr)
    b.li("r1", layout.delay1)
    b.load("r2", "r1", 0)              # pointer (flushed) -> secret_addr
    b.li("r3", overwrite)
    b.store("r2", "r3", 0)             # address unresolved for ~DRAM latency
    b.load("r4", "r10", 0)             # bypasses the store: reads the SECRET
    b.alu("shl", "r5", "r4", imm=6)
    b.add("r11", "r9", "r5")
    b.load("r6", "r11", 0)             # transmit
    b.halt()
    return b.build()


@register_attack("ssb_v4", branch_free=True)
def run_ssb_v4(policy: CommitPolicy, secret: int = 42,
               spec: Optional[MachineSpec] = None,
               backend: str = "cycle") -> AttackResult:
    """Run the full Spectre v4 attack under the given commit policy."""
    if not 0 <= secret <= 255:
        raise ValueError(f"secret must be a byte, got {secret}")
    base = spec if spec is not None else MachineSpec()
    spec = base.derive(**{"core.mem_dep_speculation": True})
    layout = AttackLayout()
    machine = Machine.from_spec(spec, policy=policy, backend=backend)
    layout.map_user_memory(machine)
    machine.write_word(layout.secret_addr, secret)
    # The pointer cell the store's address depends on.
    machine.write_word(layout.delay1, layout.secret_addr)

    # The architectural replay re-reads the overwritten value and probes
    # its slot too, so the receiver must tell the two hot lines apart.
    overwrite = (secret + 1) & 0xFF

    victim = build_victim(layout, overwrite)
    channel = FlushReloadChannel(machine, layout.probe)

    # Warm victim code and translations.  Without this the bypassing
    # load dispatches behind ~200 cycles of cold instruction fetch and
    # the store address resolves before the transmit chain exists.
    for _ in range(2):
        machine.run(victim)

    # Each warm run's store architecturally clobbered the secret cell:
    # restore it in backing memory (flushing first so the stale cached
    # line does not shadow the restore) and re-warm the line.
    machine.flush_address(layout.secret_addr)
    machine.write_word(layout.secret_addr, secret)
    warm_lines(machine, [layout.secret_addr, layout.delay1],
               code_base=layout.helper_code)

    # Flush the pointer (delays the store address) and the probe array.
    machine.flush_address(layout.delay1)
    channel.flush()

    run = machine.run(victim)

    # The committed (replayed) stream always probes the overwrite slot;
    # any *other* hot slot is the transient bypass leak.
    outcome = channel.reload()
    leak_slots = [s for s in outcome.hot_slots if s != overwrite]
    leaked = leak_slots[0] if len(leak_slots) == 1 else None
    return AttackResult(
        attack="ssb_v4",
        policy=policy,
        secret=secret,
        leaked=leaked,
        details={
            "hot_slots": leak_slots,
            "overwrite_slot": overwrite,
            "replayed_value": run.reg("r4"),
            "victim_cycles": run.cycles,
        },
    )
