"""Transient Speculation Attack (TSA) — paper Section V, Figure 10.

TSAs are covert channels *inside* the shadow state: a mis-speculated
Trojan path and a will-commit Spy path share the shadow structures for a
window, and contention between them is observable after the Spy commits.

The PoC transmits one bit through shadow-dTLB contention with the DROP
full-policy:

* The Spy issues two loads to cold pages A and B.  Their translations
  should be installed (via shadow, then promotion at commit) into the
  committed dTLB.
* The Trojan runs on a mis-speculated path behind a mistrained,
  long-latency branch.  If the (illegally read) secret bit is 1, it
  issues loads to enough cold pages to *fill* the shadow dTLB before the
  Spy's loads issue — so the Spy's fills are dropped and pages A/B are
  missing from the committed dTLB afterwards.
* The receiver times the translation of page A after the run: a TLB miss
  means the bit was 1.

The crucial ordering trick is out-of-order execution itself: the Spy's
loads are *older in program order* but their addresses depend on a
flushed load, so they issue ~200 cycles after the younger Trojan loads.

Mitigation (paper Section V): size the shadow structures for the worst
case.  With ``SizingMode.SECURE`` the shadow dTLB has LDQ+STQ entries —
more than the load queue can ever occupy — so the Trojan cannot create
contention and the channel closes.  ``run_tsa`` uses SECURE sizing (the
paper's chosen configuration, Table IV's "Transient" row);
``run_tsa_vulnerable`` shows the channel working on an undersized shadow.
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.gadgets import AttackLayout, PAGE, warm_lines
from repro.api.registry import register_attack
from repro.attacks.runner import AttackResult
from repro.core.policy import CommitPolicy
from repro.core.safespec import SafeSpecConfig, SizingMode
from repro.core.shadow import FullPolicy
from repro.isa.assembler import ProgramBuilder
from repro.isa.program import Program
from repro.machine import Machine
from repro.spec import MachineSpec

_SHADOW_DTLB_SMALL = 4        # undersized shadow dTLB for the PoC
_TROJAN_PAGES = 4             # trojan fills exactly the small shadow
_SPY_PAGE_A = 0x2_00_0000
_SPY_PAGE_B = 0x2_01_0000
_TROJAN_BASE = 0x2_10_0000
_PRIME_BASE = 0x2_80_0000     # 80 pages used to evict the real dTLB


def build_program(layout: AttackLayout) -> Program:
    """Spy + Trojan in one victim program (Figure 10's three steps)."""
    b = ProgramBuilder(code_base=layout.victim_code)
    # Delay source: flushed load; everything hangs off r2.
    b.li("r1", layout.delay1)
    b.load("r2", "r1", 0)
    b.alu("and", "r3", "r2", imm=0)         # r3 = 0, ready at ~200
    # --- Spy (will commit): loads to pages A and B, delayed by r3.
    b.li("r4", _SPY_PAGE_A)
    b.add("r5", "r4", "r3")
    b.load("r6", "r5", 0)
    b.li("r7", _SPY_PAGE_B)
    b.add("r8", "r7", "r3")
    b.load("r9", "r8", 0)
    # --- Long-latency branch condition: second flushed load, dependent
    # on the first so it resolves at ~400.
    b.li("r10", layout.delay2)
    b.add("r11", "r10", "r3")
    b.load("r12", "r11", 0)                 # value 1 in the attack run
    b.branch("eq", "r12", "r0", "trojan")   # mistrained taken; actually NT
    b.halt()                                # the committed path ends here
    # --- Trojan (mis-speculated): reads the secret, conditionally fills.
    b.label("trojan")
    b.li("r13", layout.secret_addr)
    b.load("r14", "r13", 0)                 # the "unauthorized" read
    b.branch("eq", "r14", "r0", "trojan_end")
    b.li("r15", _TROJAN_BASE)
    for page in range(_TROJAN_PAGES):
        b.load("r14", "r15", page * PAGE)   # fill the shadow dTLB
    b.label("trojan_end")
    b.halt()
    return b.build()


def _prime_dtlb(machine: Machine, round_index: int) -> None:
    """Touch more distinct pages than the dTLB holds, evicting it.

    Each priming round uses a fresh page range: re-touching the previous
    round's pages would mostly *hit* the TLB and evict nothing.
    """
    entries = machine.hierarchy.dtlb.config.entries
    base = _PRIME_BASE + round_index * (entries + 16) * PAGE
    pages = [base + i * PAGE for i in range(entries + 8)]
    machine.map_user_range(base, (entries + 9) * PAGE)
    # Serialized so the priming itself cannot overflow a tiny shadow dTLB
    # (dropped fills would make the eviction incomplete).
    warm_lines(machine, pages, code_base=0x72_000, serialized=True)


def _run_tsa(policy: CommitPolicy, secret_bit: int,
             spec: Optional[MachineSpec],
             backend: str = "cycle") -> AttackResult:
    layout = AttackLayout()
    if policy is CommitPolicy.BASELINE:
        # TSAs attack the shadow structures; without SafeSpec there is no
        # shadow state to contend on (classic Spectre applies instead).
        return AttackResult(
            attack="transient", policy=policy, secret=secret_bit,
            leaked=None,
            details={"note": "no shadow structures under the baseline"})
    machine = Machine.from_spec(spec, policy=policy, backend=backend)
    layout.map_user_memory(machine)
    machine.map_user_range(_SPY_PAGE_A, PAGE)
    machine.map_user_range(_SPY_PAGE_B, PAGE)
    machine.map_user_range(_TROJAN_BASE, _TROJAN_PAGES * PAGE)
    machine.write_word(layout.secret_addr, secret_bit)
    machine.write_word(layout.delay2, 0)    # training value: branch taken

    program = build_program(layout)

    # Mistrain the trojan branch to predicted-taken (delay2 == 0 runs).
    # These runs execute the trojan architecturally, which also warms its
    # code and the secret line.
    for _ in range(6):
        machine.run(program)

    # Attack run preparation: evict the real dTLB so that spy/trojan page
    # translations must go through the shadow, then re-warm the pages the
    # in-window code needs to be fast (secret, delay sources, code).
    machine.run(program)                   # re-warm code path (delay2==0)
    machine.write_word(layout.delay2, 1)   # attack value: branch not taken
    _prime_dtlb(machine, round_index=0)
    warm_lines(machine, [layout.secret_addr, layout.delay1, layout.delay2],
               code_base=layout.helper_code)
    machine.flush_address(layout.delay1)
    machine.flush_address(layout.delay2)

    run = machine.run(program)

    # Receiver: are the spy's translations in the committed dTLB?
    lat_a = machine.probe_translation_latency(_SPY_PAGE_A)
    lat_b = machine.probe_translation_latency(_SPY_PAGE_B)
    spy_entries_present = lat_a <= 2 and lat_b <= 2
    leaked = 0 if spy_entries_present else 1
    return AttackResult(
        attack="transient",
        policy=policy,
        secret=secret_bit,
        leaked=leaked,
        details={
            "latency_page_a": lat_a,
            "latency_page_b": lat_b,
            "shadow_dtlb_capacity":
                machine.engine.shadow_dtlb.capacity,
            "shadow_dtlb_drops":
                machine.engine.shadow_dtlb.stats.counter("drops").value,
            "victim_cycles": run.cycles,
        },
    )


def _run_tsa_channel(policy: CommitPolicy, secret: int,
                     spec: Optional[MachineSpec],
                     backend: str = "cycle") -> AttackResult:
    """Run the TSA channel for both bit values and report honestly.

    A covert channel only exists if the receiver can distinguish a 0 from
    a 1, so the PoC transmits *both* values; the attack counts as a leak
    only when both are recovered correctly.  (With worst-case sizing the
    receiver reads 0 regardless of the bit — zero information.)
    """
    secret_bit = secret & 1
    results = {bit: _run_tsa(policy, bit, spec, backend)
               for bit in (0, 1)}
    channel_works = all(results[bit].leaked == bit for bit in (0, 1))
    observed = results[secret_bit]
    return AttackResult(
        attack="transient",
        policy=policy,
        secret=secret_bit,
        leaked=observed.leaked if channel_works else None,
        details={
            "channel_works": channel_works,
            "bit0": results[0].details,
            "bit1": results[1].details,
        },
    )


@register_attack("transient")
def run_tsa(policy: CommitPolicy, secret: int = 1,
            spec: Optional[MachineSpec] = None,
            backend: str = "cycle") -> AttackResult:
    """TSA against the paper's mitigated configuration (SECURE sizing).

    With worst-case shadow sizing the Trojan cannot create contention,
    so the receiver reads the same value for both bits and the channel
    carries no information — the attack is closed (paper Table IV).
    A ``spec`` carrying its own ``safespec`` section (e.g. the
    ``safespec-p9999`` preset) overrides the SECURE default, so sizing
    sensitivity is sweepable like any other hardware axis.
    """
    base = spec if spec is not None else MachineSpec()
    if policy.uses_shadow and base.safespec is None:
        base = base.derive(safespec=SafeSpecConfig(
            policy=policy, sizing=SizingMode.SECURE,
            full_policy=FullPolicy.DROP))
    return _run_tsa_channel(policy, secret, base, backend)


def run_tsa_vulnerable(policy: CommitPolicy = CommitPolicy.WFC,
                       secret: int = 1) -> AttackResult:
    """TSA against an *undersized* shadow dTLB (the channel works).

    This demonstrates why the paper's worst-case sizing matters: with a
    4-entry shadow dTLB the Trojan's fills exhaust the structure, the
    Spy's fills are dropped, and the bit crosses from the doomed path to
    the committed path.
    """
    config = SafeSpecConfig(
        policy=policy, sizing=SizingMode.CUSTOM,
        full_policy=FullPolicy.DROP,
        dcache_entries=256, icache_entries=256,
        itlb_entries=64, dtlb_entries=_SHADOW_DTLB_SMALL)
    return _run_tsa_channel(policy, secret,
                            MachineSpec().derive(safespec=config))


def run_tsa_block_policy(policy: CommitPolicy = CommitPolicy.WFC,
                         secret: int = 1) -> AttackResult:
    """TSA via the BLOCK full-policy's *timing* channel.

    The paper's other full-structure behaviour (Section V): when accesses
    block on a full shadow structure, a will-commit Spy's loads are
    *delayed* rather than dropped while the Trojan holds the structure
    full, so the run's execution time itself carries the bit.  The
    receiver compares the transmitted-1 run's cycle count against the
    transmitted-0 run's.
    """
    secret_bit = secret & 1
    config = SafeSpecConfig(
        policy=policy, sizing=SizingMode.CUSTOM,
        full_policy=FullPolicy.BLOCK,
        dcache_entries=256, icache_entries=256,
        itlb_entries=64, dtlb_entries=_SHADOW_DTLB_SMALL)
    spec = MachineSpec().derive(safespec=config)
    cycles = {}
    for bit in (0, 1):
        result = _run_tsa(policy, bit, spec)
        cycles[bit] = result.details.get("victim_cycles", 0)
    # Timing receiver: a transmitted 1 stalls the spy behind the full
    # shadow until the trojan is annulled (~hundreds of cycles).
    channel_works = cycles[1] > cycles[0] + 50
    leaked = secret_bit if channel_works else None
    return AttackResult(
        attack="transient_block",
        policy=policy,
        secret=secret_bit,
        leaked=leaked,
        details={
            "channel_works": channel_works,
            "cycles_bit0": cycles[0],
            "cycles_bit1": cycles[1],
        },
    )
