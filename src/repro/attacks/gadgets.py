"""Shared attack scaffolding: address-space layout and helper programs.

Every attack uses the same basic layout so the PoCs stay readable:

========== ==================================================
``ARRAY1``   victim array the bounds check guards
``SIZE``     location of ``array1_size`` (flushable)
``SECRET``   the value the attacker must not learn
``PROBE``    probe array (flush+reload transmitter target)
``DELAY``    flushable words used to stretch speculation windows
========== ==================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.isa.assembler import ProgramBuilder
from repro.machine import Machine
from repro.memory.paging import PrivilegeLevel

PAGE = 4096


@dataclass(frozen=True)
class AttackLayout:
    """Virtual-address layout shared by the attack PoCs."""

    victim_code: int = 0x1_000
    attacker_code: int = 0x40_000
    helper_code: int = 0x60_000
    array1: int = 0x10_0000
    size_addr: int = 0x10_1000
    secret_addr: int = 0x10_2000
    probe: int = 0x20_0000
    delay1: int = 0x30_0000
    delay2: int = 0x30_1000
    kernel: int = 0x80_0000

    def map_user_memory(self, machine: Machine,
                        probe_bytes: int = 256 * 64) -> None:
        """Map everything except the kernel page as user memory."""
        machine.map_user_range(self.array1, PAGE)
        machine.map_user_range(self.size_addr, PAGE)
        machine.map_user_range(self.secret_addr, PAGE)
        machine.map_user_range(self.probe, probe_bytes)
        machine.map_user_range(self.delay1, PAGE)
        machine.map_user_range(self.delay2, PAGE)

    def map_kernel_memory(self, machine: Machine) -> None:
        machine.map_kernel_range(self.kernel, PAGE)


def warm_lines(machine: Machine, addresses: Iterable[int],
               code_base: int = 0x70_000,
               privilege: PrivilegeLevel = PrivilegeLevel.USER,
               serialized: bool = False) -> None:
    """Run a throwaway program that loads each address once.

    This is the attacker/victim "recently used this memory" primitive: it
    warms the data lines, the dTLB entries, and the page-table lines of
    the given addresses through fully architectural (committed) accesses.

    ``serialized`` inserts a fence after every load so at most one load
    is in flight.  Use it when the machine's shadow structures are tiny
    (TSA experiments): an unserialized burst would overflow the shadow
    and silently drop some of the warming state.
    """
    builder = ProgramBuilder(code_base=code_base)
    for address in addresses:
        builder.li("r1", address)
        builder.load("r2", "r1", 0)
        if serialized:
            builder.fence()
    builder.halt()
    machine.run(builder.build(), privilege=privilege)


def warm_code(machine: Machine, program, fault_handler_pc=None,
              initial_registers=None) -> None:
    """Run a program once to warm its instruction lines and translations.

    Attack loops in the wild run thousands of iterations; the first
    iteration's only job is to get the attacker's own code resident.
    """
    machine.run(program, fault_handler_pc=fault_handler_pc,
                initial_registers=initial_registers)


def flush_probe(machine: Machine, base: int, slots: int = 256,
                stride: int = 64) -> None:
    """clflush every probe slot."""
    for slot in range(slots):
        machine.flush_address(base + slot * stride)


def recover_byte(outcome, expected_none_ok: bool = True) -> Optional[int]:
    """Interpret a probe outcome as a leaked byte (None when no signal).

    Multiple hot slots mean the measurement is ambiguous; the receiver
    reports no leak rather than guessing.
    """
    return outcome.value
