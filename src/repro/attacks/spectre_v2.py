"""Spectre variant 2: branch target injection (paper Section II-B.3).

The victim makes an indirect jump through a function pointer.  The
attacker:

a) runs on the same core, sharing the (untagged, partially indexed) BTB;
b) executes its *own* indirect branch at a virtual address that collides
   with the victim's in the BTB index, with the victim's gadget address
   as the target — poisoning the shared entry;
c) flushes the victim's function pointer so the indirect jump resolves
   late, opening the speculation window;
d) triggers the victim: the poisoned BTB redirects speculative execution
   into the gadget, which reads the secret and transmits it through the
   probe array.

The attacker's and victim's branch PCs differ (different "processes" /
code regions) but alias in the BTB — exactly the collision mechanism of
the paper's reference [5].
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.channels import FlushReloadChannel
from repro.attacks.gadgets import AttackLayout, warm_lines
from repro.api.registry import register_attack
from repro.attacks.runner import AttackResult
from repro.core.policy import CommitPolicy
from repro.errors import SimulationError
from repro.isa.assembler import ProgramBuilder
from repro.isa.instructions import INSTRUCTION_BYTES
from repro.isa.program import Program
from repro.machine import Machine
from repro.spec import MachineSpec

_FNPTR_ADDR_OFFSET = 0x800  # function pointer lives in the size page


def build_victim(layout: AttackLayout) -> Program:
    """Victim: loads a function pointer and jumps through it.

    The gadget (secret read + transmit) exists in the victim's code but
    is never architecturally reached — the legitimate target is
    ``benign``.
    """
    b = ProgramBuilder(code_base=layout.victim_code)
    b.li("r2", layout.size_addr + _FNPTR_ADDR_OFFSET)
    b.load("r1", "r2", 0)              # function pointer (flushed)
    b.li("r9", layout.probe)
    b.li("r10", layout.secret_addr)
    b.jmpi("r1")                       # the hijacked indirect jump
    b.label("benign")
    b.halt()
    b.label("gadget")
    b.load("r4", "r10", 0)             # secret
    b.alu("shl", "r5", "r4", imm=6)
    b.add("r11", "r9", "r5")
    b.load("r6", "r11", 0)             # transmit
    b.halt()
    return b.build()


def _victim_jmpi_pc(victim: Program) -> int:
    for index, inst in enumerate(victim.instructions):
        if inst.is_indirect:
            return victim.pc_of(index)
    raise SimulationError("victim has no indirect jump")


def build_poisoner(layout: AttackLayout, victim: Program,
                   btb_entries: int, btb_shift: int) -> Program:
    """Attacker program whose indirect jump aliases the victim's.

    The attacker pads with NOPs so its ``jmpi`` lands at a PC that
    collides with the victim's ``jmpi`` in the BTB index.
    """
    victim_pc = _victim_jmpi_pc(victim)
    period = btb_entries << btb_shift  # PCs repeat BTB indices with this
    base = layout.attacker_code - (layout.attacker_code % period)
    base += victim_pc - (victim_pc % period)
    while base <= layout.victim_code + victim.code_bytes:
        base += period
    # Place the jmpi at exactly the same offset-within-period.
    jmpi_pc = base + (victim_pc % period)
    b = ProgramBuilder(code_base=base)
    pad_instructions = (jmpi_pc - base) // INSTRUCTION_BYTES - 1
    b.li("r1", victim.label_pc("gadget"))  # poisoned target
    b.nop(max(pad_instructions, 0))
    b.jmpi("r1")
    b.halt()
    program = b.build()
    if program.pc_of(pad_instructions + 1) != jmpi_pc:
        raise SimulationError("poisoner jmpi misaligned")
    return program


@register_attack("spectre_v2")
def run_spectre_v2(policy: CommitPolicy, secret: int = 42,
                   spec: Optional[MachineSpec] = None,
                   backend: str = "cycle") -> AttackResult:
    """Run the full Spectre v2 attack under the given commit policy."""
    if not 0 <= secret <= 255:
        raise ValueError(f"secret must be a byte, got {secret}")
    layout = AttackLayout()
    machine = Machine.from_spec(spec, policy=policy, backend=backend)
    layout.map_user_memory(machine)
    machine.write_word(layout.secret_addr, secret)

    victim = build_victim(layout)
    fnptr_addr = layout.size_addr + _FNPTR_ADDR_OFFSET
    machine.write_word(fnptr_addr, victim.label_pc("benign"))
    channel = FlushReloadChannel(machine, layout.probe)

    # Victim working set is warm (it uses its secret and pointer).
    warm_lines(machine, [layout.secret_addr, fnptr_addr],
               code_base=layout.helper_code)

    # Warm victim code/BTB with legitimate executions.
    for _ in range(2):
        machine.run(victim)

    # b) poison: the attacker's colliding jmpi installs the gadget target.
    poisoner = build_poisoner(layout, victim,
                              machine.btb.config.entries,
                              machine.btb.config.shift)
    machine.run(poisoner)
    victim_pc = _victim_jmpi_pc(victim)
    poisoned_target = machine.btb.predict_target(victim_pc)

    # c) flush the function pointer and the probe array.
    machine.flush_address(fnptr_addr)
    channel.flush()

    # d) trigger the victim.
    run = machine.run(victim)

    outcome = channel.reload()
    return AttackResult(
        attack="spectre_v2",
        policy=policy,
        secret=secret,
        leaked=outcome.value,
        details={
            "hot_slots": outcome.hot_slots,
            "poisoned_target": poisoned_target,
            "gadget_pc": victim.label_pc("gadget"),
            "victim_cycles": run.cycles,
        },
    )
