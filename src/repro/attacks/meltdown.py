"""Meltdown: deferred permission check on a kernel load (paper II-B.4).

The attacking program reads a supervisor-only address from user mode.  The
load executes and returns the secret speculatively (property P1); the
permission fault is raised only when the load reaches the head of the
reorder buffer.  By then a dependent, secret-indexed load has already
deposited its line — in the caches on the baseline, in the shadow
structures under SafeSpec.

Two standard Meltdown preparations are used:

* A chain of flushed loads ahead of the faulting load keeps the ROB head
  busy, so the fault is raised long after the transmitting load executed.
* The attacker pre-warms its own probe-array translations so the
  transmitting load completes quickly.

The crucial WFB/WFC split: the transmitting load depends on **no branch**,
so under WFB its shadow line is promoted into the caches as soon as it
arrives (all zero of its older branches have resolved) — before the fault
squashes anything.  WFB therefore does *not* stop Meltdown (paper
Table III); WFC holds the line in shadow until commit, which never comes.
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.channels import FlushReloadChannel
from repro.attacks.gadgets import AttackLayout, PAGE, warm_lines
from repro.api.registry import register_attack
from repro.attacks.runner import AttackResult
from repro.core.policy import CommitPolicy
from repro.isa.assembler import ProgramBuilder
from repro.isa.program import Program
from repro.machine import Machine
from repro.spec import MachineSpec
from repro.memory.paging import PrivilegeLevel


def build_attacker(layout: AttackLayout) -> Program:
    """The Meltdown attacker (runs entirely in user mode)."""
    b = ProgramBuilder(code_base=layout.attacker_code)
    # Retirement delay: two dependent flushed loads.
    b.li("r1", layout.delay1)
    b.load("r2", "r1", 0)
    b.alu("and", "r3", "r2", imm=0)        # data dependence, value 0
    b.li("r12", layout.delay2)
    b.add("r13", "r12", "r3")
    b.load("r14", "r13", 0)
    # The illegal read (faults at commit, data available speculatively).
    b.li("r8", layout.kernel)
    b.load("r4", "r8", 0)
    # Transmit through the probe array.
    b.alu("shl", "r5", "r4", imm=6)
    b.li("r9", layout.probe)
    b.add("r10", "r9", "r5")
    b.load("r6", "r10", 0)
    # Fault recovery lands here (modelling the SIGSEGV handler).
    b.label("handler")
    b.halt()
    return b.build()


@register_attack("meltdown", branch_free=True)
def run_meltdown(policy: CommitPolicy, secret: int = 42,
                 spec: Optional[MachineSpec] = None,
                 backend: str = "cycle") -> AttackResult:
    """Run the full Meltdown attack under the given commit policy."""
    if not 0 <= secret <= 255:
        raise ValueError(f"secret must be a byte, got {secret}")
    layout = AttackLayout()
    machine = Machine.from_spec(spec, policy=policy, backend=backend)
    layout.map_user_memory(machine)
    layout.map_kernel_memory(machine)
    machine.hierarchy.memory.write_word(layout.kernel, secret)

    attacker = build_attacker(layout)
    handler_pc = attacker.label_pc("handler")
    channel = FlushReloadChannel(machine, layout.probe)

    # The kernel touched the secret recently (supervisor-mode access).
    warm_lines(machine, [layout.kernel], code_base=layout.helper_code,
               privilege=PrivilegeLevel.SUPERVISOR)

    # First iteration of the attack loop: warms the attacker's own code
    # lines, delay translations and probe translations.
    machine.run(attacker, fault_handler_pc=handler_pc)
    probe_pages = [layout.probe + page * PAGE for page in range(4)]
    warm_lines(machine, probe_pages, code_base=layout.helper_code)

    # Flush the delay words and the probe array, then attack.
    machine.flush_address(layout.delay1)
    machine.flush_address(layout.delay2)
    channel.flush()
    run = machine.run(attacker, fault_handler_pc=handler_pc)

    outcome = channel.reload()
    return AttackResult(
        attack="meltdown",
        policy=policy,
        secret=secret,
        leaked=outcome.value,
        details={
            "hot_slots": outcome.hot_slots,
            "faults": [event.kind for event in run.fault_events],
            "attacker_cycles": run.cycles,
        },
    )
