"""Synthetic workload program generator.

Each workload is a self-contained program shaped by its
:class:`~repro.workloads.profiles.WorkloadProfile`:

* A **loop head** decrements an iteration counter, advances a 64-bit LCG
  in registers, and indirect-jumps into one of N power-of-two-sized
  **code blocks** selected by LCG bits.  The dispatcher's ``jmpi``
  mispredicts whenever the next block differs from the BTB's last target,
  creating realistic wrong-path fetch (speculative i-state).
* Each block's body is a seeded mix of loads, stores, conditional
  branches and ALU ops per the profile's fractions:

  - *strided/random loads* compute an address from fresh LCG bits masked
    to the working set;
  - *pointer-chase loads* follow a pre-populated random cycle through the
    working set (serial cache/TLB misses, mcf-style);
  - *branches* are either LCG-biased (probability ``entropy/2`` taken,
    unlearnable by the bimodal predictor beyond the bias) or dependent on
    the last loaded value (long speculation windows when the load
    misses).

The generator is fully deterministic: ``(profile, code_base, data_base)``
always yields the same program and chase table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.isa.assembler import ProgramBuilder
from repro.isa.instructions import INSTRUCTION_BYTES
from repro.isa.program import Program
from repro.workloads.profiles import WorkloadProfile

# LCG multiplier/increment (Knuth's MMIX constants).
_LCG_MUL = 6364136223846793005
_LCG_ADD = 1442695040888963407

_BLOCK_BYTES = 2048
_BLOCK_INSTRUCTIONS = _BLOCK_BYTES // INSTRUCTION_BYTES
_MAX_CHASE_ENTRIES = 2048
_HOT_REGION_BYTES = 8 * 1024    # hot fraction of loads stays in-cache
_HOT_LOAD_FRACTION = 0.95
_HOT_BLOCKS = 8                 # hot-chain blocks (16 KB, fits the L1I)
# Taken-probability scale: p(taken) = entropy * _BRANCH_BIAS_SCALE, keeping
# per-instruction misprediction rates in the realistic sub-1% range.
_BRANCH_BIAS_SCALE = 0.08
_LOOP_COUNTER_INIT = 1 << 40   # effectively infinite; budget stops the run

# Register allocation (see module docstring of the generator):
_R_ZERO = 0          # never written
_R_LCG = 1
_R_SCRATCH = 2
_R_DATA_BASE = 3
_R_CHASE = 4
_R_THRESHOLD = 5
_R_COUNTER = 6
_R_DISPATCH = 7
_R_BLOCK_BASE = 12
_BODY_REGS = (8, 9, 10, 11, 13, 14, 15)


def _round_up_pow2(value: int) -> int:
    power = 1
    while power < value:
        power *= 2
    return power


@dataclass
class WorkloadProgram:
    """A generated workload: program + the memory image it expects."""

    profile: WorkloadProfile
    program: Program
    data_base: int
    data_bytes: int
    chase_writes: List[Tuple[int, int]] = field(default_factory=list)
    num_blocks: int = 0

    def apply_memory_image(self, machine) -> None:
        """Map the data region and install the pointer-chase cycle."""
        machine.map_user_range(self.data_base, self.data_bytes)
        for vaddr, value in self.chase_writes:
            machine.write_word(vaddr, value)


class _BlockBodyEmitter:
    """Emits one block's body instructions from the profile's mix."""

    def __init__(self, builder: ProgramBuilder, profile: WorkloadProfile,
                 rng: np.random.Generator, data_base: int, ws_mask: int,
                 label_prefix: str) -> None:
        self._b = builder
        self._profile = profile
        self._rng = rng
        self._data_base = data_base
        self._ws_mask = ws_mask
        self._label_prefix = label_prefix
        self._reg_cursor = 0
        self._last_load_reg = _BODY_REGS[0]
        self._skip_counter = 0

    def _next_reg(self) -> int:
        reg = _BODY_REGS[self._reg_cursor % len(_BODY_REGS)]
        self._reg_cursor += 1
        return reg

    def emit_op(self) -> int:
        """Emit one operation; returns the number of instructions used."""
        profile = self._profile
        draw = self._rng.random()
        load_fraction = max(
            0.30, 1.0 - profile.branch_fraction - profile.store_fraction
            - 0.25)
        if draw < profile.branch_fraction:
            return self._emit_branch()
        if draw < profile.branch_fraction + profile.store_fraction:
            return self._emit_store()
        if draw < (profile.branch_fraction + profile.store_fraction
                   + load_fraction):
            return self._emit_load()
        return self._emit_alu()

    def _emit_alu(self) -> int:
        rd = self._next_reg()
        rs = self._next_reg()
        op = self._rng.choice(["add", "xor", "sub", "or"])
        self._b.alu(str(op), rd, rd, rs)
        return 1

    def _address_mask(self) -> int:
        """Hot loads reuse a small in-cache region; cold loads sweep the
        full working set — locality real programs exhibit."""
        hot_mask = min(_HOT_REGION_BYTES, self._ws_mask + 1) - 1
        if self._rng.random() < _HOT_LOAD_FRACTION:
            return hot_mask
        return self._ws_mask

    def _emit_load(self) -> int:
        if self._rng.random() < self._profile.pointer_chase_fraction:
            # Serial pointer chase: the value *is* the next address.
            # Chase values do not feed branches: real branch conditions
            # come overwhelmingly from hot data, and wiring miss-latency
            # values into conditions would make every wrong path
            # hundreds of cycles deep.
            self._b.load(_R_CHASE, _R_CHASE, 0)
            return 1
        shift = int(self._rng.integers(5, 24))
        rd = self._next_reg()
        self._b.alu("shr", _R_SCRATCH, _R_LCG, imm=shift)
        self._b.alu("and", _R_SCRATCH, _R_SCRATCH,
                    imm=self._address_mask() & ~7)
        self._b.add(rd, _R_DATA_BASE, _R_SCRATCH)
        self._b.load(rd, rd, 0)
        self._last_load_reg = rd
        return 4

    def _emit_store(self) -> int:
        shift = int(self._rng.integers(5, 24))
        addr_reg = self._next_reg()
        data_reg = self._next_reg()
        self._b.alu("shr", _R_SCRATCH, _R_LCG, imm=shift)
        # Stores stay off the chase slots: slots sit at multiples of the
        # chase stride (a power of two >= 16), so a 16-aligned base plus
        # a fixed +8 displacement can never land on one.  Without this,
        # a store eventually overwrites a chase pointer and the chase
        # load walks off the map — which capped every chasing workload
        # at a few thousand instructions.
        self._b.alu("and", _R_SCRATCH, _R_SCRATCH,
                    imm=self._address_mask() & ~15)
        self._b.add(addr_reg, _R_DATA_BASE, _R_SCRATCH)
        self._b.store(addr_reg, data_reg, 8)
        return 4

    def _emit_branch(self) -> int:
        skip_label = f"{self._label_prefix}_s{self._skip_counter}"
        self._skip_counter += 1
        if self._rng.random() < 0.5:
            # LCG-biased branch: taken with controlled probability.
            shift = int(self._rng.integers(0, 48))
            self._b.alu("shr", _R_SCRATCH, _R_LCG, imm=shift)
            self._b.alu("and", _R_SCRATCH, _R_SCRATCH, imm=255)
            cost = 4
        else:
            # Load-dependent branch: resolves only after the feeding load
            # (speculation window), with the value mixed against LCG bits
            # so the taken probability stays at the profile's bias even
            # when the loaded data is degenerate (e.g. zero-filled).
            shift = int(self._rng.integers(3, 40))
            self._b.alu("xor", _R_SCRATCH, self._last_load_reg, _R_LCG)
            self._b.alu("shr", _R_SCRATCH, _R_SCRATCH, imm=shift)
            self._b.alu("and", _R_SCRATCH, _R_SCRATCH, imm=255)
            cost = 5
        self._b.branch("lt", _R_SCRATCH, _R_THRESHOLD, skip_label)
        filler = self._next_reg()
        self._b.alu("xor", filler, filler, imm=1)
        self._b.label(skip_label)
        return cost


# Generation is deterministic in (profile, code_base, data_base), so the
# result is shared across calls.  Profiles are frozen dataclasses (a few
# dozen exist), so the cache stays small and the returned WorkloadProgram
# keeps a stable identity — which also lets per-program lowering caches
# (the fast backend's) hit across runs.  Treat cached programs as
# immutable.
_PROGRAM_CACHE: dict = {}


def generate_program(profile: WorkloadProfile,
                     code_base: int = 0x10_000,
                     data_base: int = 0x200_0000) -> WorkloadProgram:
    """Generate (or fetch the memoized) program for one profile."""
    key = (profile, code_base, data_base)
    cached = _PROGRAM_CACHE.get(key)
    if cached is None:
        cached = _generate_program(profile, code_base, data_base)
        _PROGRAM_CACHE[key] = cached
    return cached


def _generate_program(profile: WorkloadProfile,
                      code_base: int,
                      data_base: int) -> WorkloadProgram:
    """Generate the synthetic program for one profile."""
    if code_base % INSTRUCTION_BYTES:
        raise ConfigError("code_base must be instruction-aligned")
    rng = np.random.default_rng(profile.seed)
    ws_bytes = _round_up_pow2(profile.working_set_kb * 1024)
    ws_mask = ws_bytes - 1
    num_blocks = max(4, profile.code_kb * 1024 // _BLOCK_BYTES)
    num_hot = min(_HOT_BLOCKS, num_blocks - 2)
    cold_pow2 = 1
    while cold_pow2 * 2 <= num_blocks - num_hot:
        cold_pow2 *= 2
    block_shift = _BLOCK_BYTES.bit_length() - 1
    threshold = max(1, int(256 * profile.branch_entropy
                           * _BRANCH_BIAS_SCALE))

    b = ProgramBuilder(code_base=code_base)
    # ---- init
    b.li(_R_LCG, int(rng.integers(1, 1 << 62)))
    b.li(_R_DATA_BASE, data_base)
    b.li(_R_CHASE, data_base)        # chase cycle starts at the base
    b.li(_R_THRESHOLD, threshold)
    b.li(_R_COUNTER, _LOOP_COUNTER_INIT)
    b.li(_R_BLOCK_BASE, 0)           # patched after layout (see below)
    block_base_fixup = b.here() - 1
    for reg in _BODY_REGS:
        b.li(reg, int(rng.integers(0, 1 << 32)))
    b.jmp("loop_head")

    # ---- loop head: counter + LCG advance, then into the hot chain.
    b.label("loop_head")
    b.alu("sub", _R_COUNTER, _R_COUNTER, imm=1)
    b.branch("eq", _R_COUNTER, _R_ZERO, "done")
    b.alu("mul", _R_LCG, _R_LCG, imm=_LCG_MUL)
    b.alu("add", _R_LCG, _R_LCG, imm=_LCG_ADD)
    b.jmp("hot0")
    b.label("done")
    b.halt()

    # ---- cold-excursion dispatcher: each iteration ends with an
    # indirect jump into one LCG-selected cold block (i-cache pressure
    # plus a realistic, occasionally mispredicting indirect branch).
    b.label("dispatch")
    b.alu("shr", _R_SCRATCH, _R_LCG, imm=29)
    b.alu("and", _R_SCRATCH, _R_SCRATCH, imm=cold_pow2 - 1)
    b.alu("shl", _R_SCRATCH, _R_SCRATCH, imm=block_shift)
    b.add(_R_DISPATCH, _R_BLOCK_BASE, _R_SCRATCH)
    b.jmpi(_R_DISPATCH)

    # ---- hot chain: statically chained blocks that fit in the L1I,
    # executed every iteration (the program's "inner loop" code).
    while (b.here() * INSTRUCTION_BYTES) % _BLOCK_BYTES:
        b.nop()
    for block in range(num_hot):
        block_start = b.here()
        b.label(f"hot{block}")
        emitter = _BlockBodyEmitter(b, profile, rng, data_base, ws_mask,
                                    label_prefix=f"h{block}")
        used = 0
        # Leave room for the closing jmp plus the longest op (4 instr).
        while used < _BLOCK_INSTRUCTIONS - 5:
            used += emitter.emit_op()
        if block + 1 < num_hot:
            b.jmp(f"hot{block + 1}")
        else:
            b.jmp("dispatch")
        while b.here() - block_start < _BLOCK_INSTRUCTIONS:
            b.nop()

    # ---- cold blocks: LCG-selected, one per iteration.
    while (b.here() * INSTRUCTION_BYTES) % _BLOCK_BYTES:
        b.nop()
    first_cold_index = b.here()
    for block in range(cold_pow2):
        block_start = b.here()
        emitter = _BlockBodyEmitter(b, profile, rng, data_base, ws_mask,
                                    label_prefix=f"c{block}")
        used = 0
        while used < _BLOCK_INSTRUCTIONS - 5:
            used += emitter.emit_op()
        b.jmp("loop_head")
        while b.here() - block_start < _BLOCK_INSTRUCTIONS:
            b.nop()

    program = b.build()

    # Patch the cold-block-base constant now that the layout is known.
    block_base_pc = program.pc_of(first_cold_index)
    from repro.isa.instructions import Instruction, Opcode

    instructions = list(program.instructions)
    instructions[block_base_fixup] = Instruction(
        Opcode.LOADIMM, rd=_R_BLOCK_BASE, imm=block_base_pc)
    program = Program(instructions, code_base=code_base,
                      labels=dict(program.labels))

    chase_writes = _build_chase_cycle(rng, data_base, ws_bytes)
    return WorkloadProgram(
        profile=profile,
        program=program,
        data_base=data_base,
        data_bytes=ws_bytes,
        chase_writes=chase_writes,
        num_blocks=num_blocks,
    )


def _build_chase_cycle(rng: np.random.Generator, data_base: int,
                       ws_bytes: int) -> List[Tuple[int, int]]:
    """A random single-cycle permutation of chase slots across the
    working set; slot 0 (the chase entry point) is included.

    Slots are kept at least 16 bytes apart so the store emitter's
    16-aligned+8 addresses can never overwrite a chase pointer."""
    entries = min(_MAX_CHASE_ENTRIES, ws_bytes // 16)
    stride = ws_bytes // entries
    slots = [data_base + i * stride for i in range(entries)]
    order = list(rng.permutation(entries))
    # Rotate so the cycle starts at slot 0 (register init points there).
    zero_pos = order.index(0)
    order = order[zero_pos:] + order[:zero_pos]
    writes = []
    for position, slot_index in enumerate(order):
        next_index = order[(position + 1) % entries]
        writes.append((slots[slot_index], slots[next_index]))
    return writes
