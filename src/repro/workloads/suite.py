"""Running workloads and collecting the metrics the figures need."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.core.policy import CommitPolicy
from repro.core.safespec import SafeSpecConfig
from repro.exec.job import (DEFAULT_INSTRUCTION_BUDGET, FigureMetrics,
                            SimJob, SimResult, ensure_single_config_style)
from repro.machine import Machine
from repro.memory.hierarchy import HierarchyConfig
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import RunResult
from repro.spec import MachineSpec, machine_spec_from_params
from repro.statistics import Histogram
from repro.workloads.generator import generate_program, WorkloadProgram
from repro.workloads.profiles import WorkloadProfile, profile_by_name


@dataclass
class WorkloadRun(FigureMetrics):
    """One workload execution plus the derived per-figure metrics.

    The figure formulas themselves live in
    :class:`~repro.exec.job.FigureMetrics`, shared with the
    serializable :class:`~repro.exec.job.SimResult`.
    """

    workload: str
    policy: CommitPolicy
    result: RunResult
    shadow_occupancy: Dict[str, Histogram] = field(default_factory=dict)
    shadow_commit_rates: Dict[str, float] = field(default_factory=dict)

    # -- derived metrics ---------------------------------------------------

    @property
    def ipc(self) -> float:
        return self.result.ipc

    def _counter(self, name: str) -> int:
        return self.result.counters.get(name, 0)

    def shadow_size_percentile(self, structure: str,
                               fraction: float = 0.9999) -> int:
        """Figures 6-9: shadow size covering ``fraction`` of cycles."""
        histogram = self.shadow_occupancy.get(structure)
        return histogram.percentile(fraction) if histogram else 0


def run_workload(workload: Union[str, WorkloadProfile, WorkloadProgram],
                 policy: CommitPolicy = CommitPolicy.BASELINE,
                 instructions: int = DEFAULT_INSTRUCTION_BUDGET,
                 safespec_config: Optional[SafeSpecConfig] = None,
                 core_config: Optional[CoreConfig] = None,
                 hierarchy_config: Optional[HierarchyConfig] = None,
                 spec: Optional[MachineSpec] = None,
                 backend: str = "cycle",
                 ) -> WorkloadRun:
    """Run one workload on a fresh machine under the given policy.

    ``workload`` may be a suite benchmark name, a profile, or an
    already-generated :class:`WorkloadProgram`.  The machine shape is
    either a declarative ``spec`` (:class:`~repro.spec.MachineSpec`) or
    the loose per-config overrides — never both.  ``backend`` selects
    the execution backend (``repro.backends``).
    """
    if isinstance(workload, str):
        workload = profile_by_name(workload)
    if isinstance(workload, WorkloadProfile):
        workload = generate_program(workload)
    ensure_single_config_style(spec, core_config, hierarchy_config,
                               safespec_config)
    if spec is not None:
        machine = Machine.from_spec(spec, policy=policy, backend=backend)
    else:
        machine = Machine(policy=policy, core_config=core_config,
                          hierarchy_config=hierarchy_config,
                          safespec_config=safespec_config,
                          backend=backend)
    workload.apply_memory_image(machine)
    result = machine.run(workload.program, max_instructions=instructions)

    occupancy: Dict[str, Histogram] = {}
    commit_rates: Dict[str, float] = {}
    if machine.engine is not None:
        for structure in machine.engine.all_structures():
            occupancy[structure.name] = structure.occupancy_histogram
            commit_rates[structure.name] = structure.commit_rate()
    return WorkloadRun(
        workload=workload.profile.name,
        policy=policy,
        result=result,
        shadow_occupancy=occupancy,
        shadow_commit_rates=commit_rates,
    )


def run_workload_job(job: SimJob) -> SimResult:
    """Pure job-spec entry point: rebuild all machine state from ``job``.

    This is what executor workers call; everything the figures need is
    folded into the returned (serializable) :class:`SimResult`.
    """
    run = run_workload(
        job.target, job.policy,
        instructions=job.instructions,
        safespec_config=job.safespec_config,
        core_config=job.core_config,
        hierarchy_config=job.hierarchy_config,
        spec=machine_spec_from_params(job.params),
        backend=str(job.params.get("backend", "cycle")),
    )
    return SimResult(
        job_key=job.key(),
        kind=job.kind,
        target=job.target,
        policy=job.policy,
        cycles=run.result.cycles,
        instructions=run.result.instructions,
        halted_reason=run.result.halted_reason,
        counters=dict(run.result.counters),
        shadow_occupancy={
            name: dict(histogram.items())
            for name, histogram in run.shadow_occupancy.items()},
        shadow_commit_rates=dict(run.shadow_commit_rates),
    )
