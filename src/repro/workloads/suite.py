"""Running workloads and collecting the metrics the figures need."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.core.policy import CommitPolicy
from repro.core.safespec import SafeSpecConfig
from repro.machine import Machine
from repro.pipeline.core import RunResult
from repro.statistics import Histogram, ratio
from repro.workloads.generator import generate_program, WorkloadProgram
from repro.workloads.profiles import WorkloadProfile, profile_by_name

DEFAULT_INSTRUCTION_BUDGET = 20_000


@dataclass
class WorkloadRun:
    """One workload execution plus the derived per-figure metrics."""

    workload: str
    policy: CommitPolicy
    result: RunResult
    shadow_occupancy: Dict[str, Histogram] = field(default_factory=dict)
    shadow_commit_rates: Dict[str, float] = field(default_factory=dict)

    # -- derived metrics ---------------------------------------------------

    @property
    def ipc(self) -> float:
        return self.result.ipc

    def _counter(self, name: str) -> int:
        return self.result.counters.get(name, 0)

    @property
    def dcache_read_miss_rate(self) -> float:
        """Figure 12: read miss rate including the shadow d-cache."""
        return ratio(self._counter("dcache_read_misses"),
                     self._counter("dcache_read_accesses"))

    @property
    def dcache_shadow_hit_fraction(self) -> float:
        """Figure 13: fraction of read hits that hit the shadow."""
        hits = (self._counter("dcache_l1_hits")
                + self._counter("dcache_shadow_hits"))
        return ratio(self._counter("dcache_shadow_hits"), hits)

    @property
    def icache_miss_rate(self) -> float:
        """Figure 14: i-cache miss rate including the shadow i-cache."""
        return ratio(self._counter("icache_misses"),
                     self._counter("icache_accesses"))

    @property
    def icache_shadow_hit_fraction(self) -> float:
        """Figure 15: fraction of i-cache hits that hit the shadow."""
        hits = (self._counter("icache_l1_hits")
                + self._counter("icache_shadow_hits"))
        return ratio(self._counter("icache_shadow_hits"), hits)

    def shadow_size_percentile(self, structure: str,
                               fraction: float = 0.9999) -> int:
        """Figures 6-9: shadow size covering ``fraction`` of cycles."""
        histogram = self.shadow_occupancy.get(structure)
        return histogram.percentile(fraction) if histogram else 0

    def shadow_commit_rate(self, structure: str) -> float:
        """Figure 16: committed fraction of retired shadow entries."""
        return self.shadow_commit_rates.get(structure, 0.0)


def run_workload(workload: Union[str, WorkloadProfile, WorkloadProgram],
                 policy: CommitPolicy = CommitPolicy.BASELINE,
                 instructions: int = DEFAULT_INSTRUCTION_BUDGET,
                 safespec_config: Optional[SafeSpecConfig] = None,
                 ) -> WorkloadRun:
    """Run one workload on a fresh machine under the given policy.

    ``workload`` may be a suite benchmark name, a profile, or an
    already-generated :class:`WorkloadProgram`.
    """
    if isinstance(workload, str):
        workload = profile_by_name(workload)
    if isinstance(workload, WorkloadProfile):
        workload = generate_program(workload)
    machine = Machine(policy=policy, safespec_config=safespec_config)
    workload.apply_memory_image(machine)
    result = machine.run(workload.program, max_instructions=instructions)

    occupancy: Dict[str, Histogram] = {}
    commit_rates: Dict[str, float] = {}
    if machine.engine is not None:
        for structure in machine.engine.all_structures():
            occupancy[structure.name] = structure.occupancy_histogram
            commit_rates[structure.name] = structure.commit_rate()
    return WorkloadRun(
        workload=workload.profile.name,
        policy=policy,
        result=result,
        shadow_occupancy=occupancy,
        shadow_commit_rates=commit_rates,
    )
