"""Synthetic SPEC CPU2017-like workload suite.

The paper evaluates on 21 SPEC CPU2017 benchmarks.  SPEC is proprietary
and a full-system simulator is out of scope, so the suite is replaced by
21 seeded synthetic programs whose parameters (working-set size, pointer
chasing, branch entropy, code footprint, instruction mix) are chosen to
mimic each benchmark's published character.  See DESIGN.md for the
substitution rationale.
"""

from repro.workloads.profiles import (WorkloadProfile, SUITE_PROFILES,
                                      profile_by_name, suite_names)
from repro.workloads.generator import generate_program, WorkloadProgram
from repro.workloads.suite import (run_workload, run_workload_job,
                                   WorkloadRun)

__all__ = [
    "SUITE_PROFILES",
    "WorkloadProfile",
    "WorkloadProgram",
    "WorkloadRun",
    "generate_program",
    "profile_by_name",
    "run_workload",
    "run_workload_job",
    "suite_names",
]
