"""Per-benchmark workload parameter profiles.

Each profile shapes the synthetic generator along five axes:

* ``working_set_kb`` — size of the data region the loads sweep; drives
  d-cache/L2/L3 miss rates (mcf/omnetpp large; namd/exchange2 small).
* ``pointer_chase_fraction`` — fraction of loads whose address depends on
  the previous load's value (serial, unpredictable misses; mcf-like).
* ``branch_fraction`` / ``branch_entropy`` — density of conditional
  branches and how random their data-dependent outcomes are (deepsjeng /
  x264 branchy and hard to predict; lbm streaming and branch-light).
* ``code_kb`` — static code footprint the control flow hops around;
  drives i-cache pressure (gcc/perlbench/xalancbmk large code).
* ``store_fraction`` — store density (pop2/cam4 write-heavy phases).

The classification (memory-bound vs compute vs branchy vs code-heavy)
follows the broadly reported behaviour of SPEC CPU2017 components; exact
values are not calibrated against SPEC measurements — the suite's job is
to exercise the same micro-architectural mechanisms across a realistic
*spread* of behaviours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.api.registry import WORKLOADS, register_workload
from repro.errors import ConfigError


@dataclass(frozen=True)
class WorkloadProfile:
    """Generator parameters for one synthetic benchmark."""

    name: str
    working_set_kb: int
    pointer_chase_fraction: float
    branch_fraction: float
    branch_entropy: float        # 0 = perfectly predictable, 1 = coin flip
    code_kb: int
    store_fraction: float
    seed: int

    def __post_init__(self) -> None:
        if self.working_set_kb <= 0 or self.code_kb <= 0:
            raise ConfigError(f"{self.name}: sizes must be positive")
        for field_name in ("pointer_chase_fraction", "branch_fraction",
                           "branch_entropy", "store_fraction"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(
                    f"{self.name}: {field_name} must be in [0, 1]")


def _p(name: str, ws: int, chase: float, br: float, ent: float,
       code: int, st: float, seed: int) -> WorkloadProfile:
    """Build one profile and register it with the workload registry."""
    return register_workload(
        WorkloadProfile(name, ws, chase, br, ent, code, st, seed))


# The paper's Figure 6-16 benchmark list, in the paper's order.
SUITE_PROFILES: List[WorkloadProfile] = [
    # SPECspeed/rate INT
    _p("perlbench", ws=96,   chase=0.05, br=0.22, ent=0.25, code=96, st=0.12, seed=101),
    _p("mcf",       ws=2048, chase=0.45, br=0.15, ent=0.35, code=12, st=0.08, seed=102),
    _p("omnetpp",   ws=1024, chase=0.30, br=0.18, ent=0.30, code=48, st=0.12, seed=103),
    _p("xalancbmk", ws=256,  chase=0.15, br=0.22, ent=0.25, code=112, st=0.10, seed=104),
    _p("x264",      ws=128,  chase=0.02, br=0.25, ent=0.40, code=40, st=0.15, seed=105),
    _p("deepsjeng", ws=192,  chase=0.10, br=0.28, ent=0.45, code=32, st=0.10, seed=106),
    _p("exchange2", ws=24,   chase=0.00, br=0.30, ent=0.20, code=24, st=0.12, seed=107),
    _p("xz",        ws=512,  chase=0.12, br=0.20, ent=0.35, code=16, st=0.12, seed=108),
    # SPECspeed/rate FP
    _p("bwaves",    ws=1024, chase=0.00, br=0.06, ent=0.05, code=12, st=0.18, seed=109),
    _p("cactuBSSN", ws=512,  chase=0.02, br=0.08, ent=0.10, code=56, st=0.18, seed=110),
    _p("namd",      ws=48,   chase=0.00, br=0.10, ent=0.10, code=24, st=0.12, seed=111),
    _p("povray",    ws=32,   chase=0.05, br=0.20, ent=0.20, code=48, st=0.10, seed=112),
    _p("lbm",       ws=1536, chase=0.00, br=0.04, ent=0.05, code=8,  st=0.25, seed=113),
    _p("wrf",       ws=384,  chase=0.02, br=0.10, ent=0.12, code=96, st=0.15, seed=114),
    _p("blender",   ws=256,  chase=0.08, br=0.18, ent=0.25, code=80, st=0.12, seed=115),
    _p("cam4",      ws=320,  chase=0.02, br=0.12, ent=0.15, code=88, st=0.18, seed=116),
    _p("pop2",      ws=384,  chase=0.02, br=0.10, ent=0.12, code=72, st=0.20, seed=117),
    _p("imagick",   ws=96,   chase=0.00, br=0.12, ent=0.10, code=32, st=0.15, seed=118),
    _p("nab",       ws=64,   chase=0.02, br=0.12, ent=0.15, code=24, st=0.12, seed=119),
    _p("fotonik3d", ws=768,  chase=0.00, br=0.06, ent=0.06, code=16, st=0.18, seed=120),
    _p("roms",      ws=640,  chase=0.00, br=0.08, ent=0.08, code=24, st=0.18, seed=121),
    _p("gcc",       ws=192,  chase=0.12, br=0.24, ent=0.30, code=128, st=0.10, seed=122),
]

def suite_names() -> List[str]:
    """Benchmark names in the paper's plotting order (registry order)."""
    return WORKLOADS.names()


def profile_by_name(name: str) -> WorkloadProfile:
    """Look up one profile by benchmark name."""
    profile = WORKLOADS.get(name)
    if not isinstance(profile, WorkloadProfile):
        raise ConfigError(
            f"workload {name!r} is not a suite profile: {profile!r}")
    return profile
