"""Instruction encodings.

Each static instruction occupies ``INSTRUCTION_BYTES`` of the virtual
address space so that instruction-cache behaviour (line sharing, spatial
locality) is meaningful: with 16-byte instructions and 64-byte lines, four
instructions share one i-cache line, mirroring typical x86 densities.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import AssemblyError

INSTRUCTION_BYTES = 16


class Opcode(enum.Enum):
    """Top-level operation selector."""

    ALU = "alu"            # rd <- rs1 OP (rs2 | imm)
    LOADIMM = "loadimm"    # rd <- imm
    LOAD = "load"          # rd <- MEM[rs1 + imm]
    STORE = "store"        # MEM[rs1 + imm] <- rs2
    BRANCH = "branch"      # conditional, relative to labels
    JMP = "jmp"            # unconditional direct
    JMPI = "jmpi"          # unconditional indirect: target = rs1
    CALL = "call"          # rd <- return address; jump to target
    RET = "ret"            # indirect return: target = rs1 (RSB-predicted)
    CLFLUSH = "clflush"    # flush line at rs1 + imm from all cache levels
    RDTSC = "rdtsc"        # rd <- current cycle (serialising read)
    FENCE = "fence"        # speculation barrier (lfence-like)
    NOP = "nop"
    HALT = "halt"


class AluOp(enum.Enum):
    """ALU operations."""

    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"


class BranchCond(enum.Enum):
    """Branch conditions comparing rs1 against rs2 (signed)."""

    EQ = "eq"
    NE = "ne"
    LT = "lt"
    GE = "ge"


class InstructionClass(enum.Enum):
    """Functional-unit class used by the issue stage."""

    INT = "int"
    MUL = "mul"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    SYSTEM = "system"


_OPCODE_CLASS = {
    Opcode.ALU: InstructionClass.INT,
    Opcode.LOADIMM: InstructionClass.INT,
    Opcode.LOAD: InstructionClass.LOAD,
    Opcode.STORE: InstructionClass.STORE,
    Opcode.BRANCH: InstructionClass.BRANCH,
    Opcode.JMP: InstructionClass.BRANCH,
    Opcode.JMPI: InstructionClass.BRANCH,
    Opcode.CALL: InstructionClass.BRANCH,
    Opcode.RET: InstructionClass.BRANCH,
    Opcode.CLFLUSH: InstructionClass.SYSTEM,
    Opcode.RDTSC: InstructionClass.SYSTEM,
    Opcode.FENCE: InstructionClass.SYSTEM,
    Opcode.NOP: InstructionClass.INT,
    Opcode.HALT: InstructionClass.SYSTEM,
}

# Dense functional-unit indices: the issue stage claims slots from plain
# lists instead of enum-keyed dicts (enum hashing dominated the per-cycle
# profile).  Declaration order of InstructionClass is the index order.
FU_CLASS_ORDER = tuple(InstructionClass)
FU_CLASS_INDEX = {cls: index for index, cls in enumerate(FU_CLASS_ORDER)}

_CONTROL_FLOW = frozenset((Opcode.BRANCH, Opcode.JMP, Opcode.JMPI,
                           Opcode.CALL, Opcode.RET))


@dataclass(frozen=True)
class Instruction:
    """One static instruction.

    Fields are used selectively per opcode:

    * ``rd`` — destination register (ALU, LOADIMM, LOAD, RDTSC).
    * ``rs1`` — first source (ALU, LOAD/STORE/CLFLUSH base, BRANCH lhs,
      JMPI target register).
    * ``rs2`` — second source (ALU register form, STORE data, BRANCH rhs).
    * ``imm`` — immediate (ALU immediate form, LOADIMM value,
      LOAD/STORE/CLFLUSH displacement).
    * ``target`` — static branch/jump target *instruction index*.
    * ``alu_op`` / ``cond`` — sub-operation selectors.
    * ``label`` — optional symbolic name of this instruction's location.
    """

    opcode: Opcode
    rd: Optional[int] = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    imm: int = 0
    target: Optional[int] = None
    alu_op: Optional[AluOp] = None
    cond: Optional[BranchCond] = None
    label: Optional[str] = None

    def __post_init__(self) -> None:
        self._validate()
        # Decode once at assembly time: every attribute the pipeline reads
        # per cycle is materialised here instead of recomputed per access.
        # (object.__setattr__: the dataclass is frozen; these are cached
        # decode products, not spec fields, so eq/hash/repr ignore them.)
        if self.opcode is Opcode.ALU and self.alu_op is AluOp.MUL:
            inst_class = InstructionClass.MUL
        else:
            inst_class = _OPCODE_CLASS[self.opcode]
        sources = []
        if self.rs1 is not None:
            sources.append(self.rs1)
        if self.rs2 is not None:
            sources.append(self.rs2)
        set_attr = object.__setattr__
        set_attr(self, "inst_class", inst_class)
        set_attr(self, "fu_index", FU_CLASS_INDEX[inst_class])
        set_attr(self, "is_control_flow", self.opcode in _CONTROL_FLOW)
        set_attr(self, "is_conditional", self.opcode is Opcode.BRANCH)
        set_attr(self, "is_indirect", self.opcode is Opcode.JMPI)
        set_attr(self, "is_call", self.opcode is Opcode.CALL)
        set_attr(self, "is_return", self.opcode is Opcode.RET)
        set_attr(self, "writes_register", self.rd is not None)
        set_attr(self, "sources", tuple(sources))

    def _validate(self) -> None:
        op = self.opcode
        if op == Opcode.ALU:
            if self.rd is None or self.rs1 is None or self.alu_op is None:
                raise AssemblyError("ALU needs rd, rs1 and alu_op")
        elif op == Opcode.LOADIMM:
            if self.rd is None:
                raise AssemblyError("LOADIMM needs rd")
        elif op == Opcode.LOAD:
            if self.rd is None or self.rs1 is None:
                raise AssemblyError("LOAD needs rd and rs1")
        elif op == Opcode.STORE:
            if self.rs1 is None or self.rs2 is None:
                raise AssemblyError("STORE needs rs1 (base) and rs2 (data)")
        elif op == Opcode.BRANCH:
            if self.rs1 is None or self.rs2 is None or self.cond is None:
                raise AssemblyError("BRANCH needs rs1, rs2 and cond")
        elif op == Opcode.JMPI:
            if self.rs1 is None:
                raise AssemblyError("JMPI needs rs1")
        elif op == Opcode.CALL:
            if self.rd is None:
                raise AssemblyError("CALL needs rd (link register)")
        elif op == Opcode.RET:
            if self.rs1 is None:
                raise AssemblyError("RET needs rs1 (return-address register)")
        elif op == Opcode.CLFLUSH:
            if self.rs1 is None:
                raise AssemblyError("CLFLUSH needs rs1")
        elif op == Opcode.RDTSC:
            if self.rd is None:
                raise AssemblyError("RDTSC needs rd")

    def source_registers(self) -> tuple:
        """Architectural registers read by this instruction."""
        return self.sources

    def __str__(self) -> str:
        op = self.opcode.value
        if self.opcode == Opcode.ALU:
            rhs = f"r{self.rs2}" if self.rs2 is not None else f"#{self.imm}"
            return f"{self.alu_op.value} r{self.rd}, r{self.rs1}, {rhs}"
        if self.opcode == Opcode.LOADIMM:
            return f"li r{self.rd}, #{self.imm}"
        if self.opcode == Opcode.LOAD:
            return f"ld r{self.rd}, [r{self.rs1}+{self.imm}]"
        if self.opcode == Opcode.STORE:
            return f"st [r{self.rs1}+{self.imm}], r{self.rs2}"
        if self.opcode == Opcode.BRANCH:
            return (f"b{self.cond.value} r{self.rs1}, r{self.rs2}, "
                    f"@{self.target}")
        if self.opcode == Opcode.JMP:
            return f"jmp @{self.target}"
        if self.opcode == Opcode.JMPI:
            return f"jmpi r{self.rs1}"
        if self.opcode == Opcode.CALL:
            return f"call r{self.rd}, @{self.target}"
        if self.opcode == Opcode.RET:
            return f"ret r{self.rs1}"
        if self.opcode == Opcode.CLFLUSH:
            return f"clflush [r{self.rs1}+{self.imm}]"
        if self.opcode == Opcode.RDTSC:
            return f"rdtsc r{self.rd}"
        return op
