"""A small RISC-ish ISA executed by the out-of-order core.

The ISA is wide enough to express the paper's attack gadgets (data-
dependent loads, bounds-checked branches, indirect branches, clflush,
timer reads, privileged loads) and the synthetic SPEC-like workloads.
"""

from repro.isa.instructions import (AluOp, BranchCond, Instruction,
                                    InstructionClass, Opcode)
from repro.isa.program import Program
from repro.isa.assembler import ProgramBuilder, assemble

__all__ = [
    "AluOp",
    "BranchCond",
    "Instruction",
    "InstructionClass",
    "Opcode",
    "Program",
    "ProgramBuilder",
    "assemble",
]
