"""Program construction: a fluent builder API and a tiny text assembler.

The builder is the primary interface — attacks and workload generators
construct programs programmatically::

    b = ProgramBuilder()
    b.li("r1", 0x2000)
    b.load("r2", "r1", 8)
    b.label("loop")
    b.alu("sub", "r2", "r2", imm=1)
    b.branch("ne", "r2", "r0", "loop")
    b.halt()
    program = b.build()

The text assembler exists mostly for tests and examples; it accepts the
same mnemonics the disassembler prints.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.errors import AssemblyError
from repro.isa.instructions import (AluOp, BranchCond, Instruction, Opcode)
from repro.isa.program import Program
from repro.isa.registers import register_index

RegLike = Union[str, int]


def _reg(value: RegLike) -> int:
    if isinstance(value, int):
        return value
    return register_index(value)


class ProgramBuilder:
    """Incremental program constructor with forward-label resolution."""

    def __init__(self, code_base: int = 0x1000) -> None:
        self._code_base = code_base
        self._instructions: List[_Pending] = []
        self._labels: Dict[str, int] = {}

    # -- label management -------------------------------------------------

    def label(self, name: str) -> "ProgramBuilder":
        """Define ``name`` at the current position."""
        if name in self._labels:
            raise AssemblyError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)
        return self

    def here(self) -> int:
        """Index of the next instruction to be emitted."""
        return len(self._instructions)

    # -- instruction emitters ---------------------------------------------

    def alu(self, op: Union[str, AluOp], rd: RegLike, rs1: RegLike,
            rs2: Optional[RegLike] = None, imm: int = 0) -> "ProgramBuilder":
        alu_op = op if isinstance(op, AluOp) else AluOp(op)
        self._emit(Instruction(
            Opcode.ALU, rd=_reg(rd), rs1=_reg(rs1),
            rs2=None if rs2 is None else _reg(rs2),
            imm=imm, alu_op=alu_op))
        return self

    def add(self, rd: RegLike, rs1: RegLike,
            rs2: Optional[RegLike] = None, imm: int = 0) -> "ProgramBuilder":
        return self.alu(AluOp.ADD, rd, rs1, rs2, imm)

    def mul(self, rd: RegLike, rs1: RegLike,
            rs2: Optional[RegLike] = None, imm: int = 0) -> "ProgramBuilder":
        return self.alu(AluOp.MUL, rd, rs1, rs2, imm)

    def li(self, rd: RegLike, imm: int) -> "ProgramBuilder":
        self._emit(Instruction(Opcode.LOADIMM, rd=_reg(rd), imm=imm))
        return self

    def load(self, rd: RegLike, base: RegLike, offset: int = 0
             ) -> "ProgramBuilder":
        self._emit(Instruction(
            Opcode.LOAD, rd=_reg(rd), rs1=_reg(base), imm=offset))
        return self

    def store(self, base: RegLike, data: RegLike, offset: int = 0
              ) -> "ProgramBuilder":
        self._emit(Instruction(
            Opcode.STORE, rs1=_reg(base), rs2=_reg(data), imm=offset))
        return self

    def branch(self, cond: Union[str, BranchCond], rs1: RegLike,
               rs2: RegLike, target: str) -> "ProgramBuilder":
        branch_cond = cond if isinstance(cond, BranchCond) else BranchCond(cond)
        self._emit(Instruction(
            Opcode.BRANCH, rs1=_reg(rs1), rs2=_reg(rs2),
            cond=branch_cond, target=0), pending_label=target)
        return self

    def jmp(self, target: str) -> "ProgramBuilder":
        self._emit(Instruction(Opcode.JMP, target=0), pending_label=target)
        return self

    def jmpi(self, rs1: RegLike) -> "ProgramBuilder":
        self._emit(Instruction(Opcode.JMPI, rs1=_reg(rs1)))
        return self

    def call(self, rd: RegLike, target: str) -> "ProgramBuilder":
        """Direct call: ``rd`` <- return address, jump to ``target``."""
        self._emit(Instruction(Opcode.CALL, rd=_reg(rd), target=0),
                   pending_label=target)
        return self

    def ret(self, rs1: RegLike) -> "ProgramBuilder":
        """Indirect return through ``rs1`` (RSB-predicted)."""
        self._emit(Instruction(Opcode.RET, rs1=_reg(rs1)))
        return self

    def clflush(self, base: RegLike, offset: int = 0) -> "ProgramBuilder":
        self._emit(Instruction(
            Opcode.CLFLUSH, rs1=_reg(base), imm=offset))
        return self

    def rdtsc(self, rd: RegLike) -> "ProgramBuilder":
        self._emit(Instruction(Opcode.RDTSC, rd=_reg(rd)))
        return self

    def fence(self) -> "ProgramBuilder":
        self._emit(Instruction(Opcode.FENCE))
        return self

    def nop(self, count: int = 1) -> "ProgramBuilder":
        for _ in range(count):
            self._emit(Instruction(Opcode.NOP))
        return self

    def halt(self) -> "ProgramBuilder":
        self._emit(Instruction(Opcode.HALT))
        return self

    # -- assembly ----------------------------------------------------------

    def build(self) -> Program:
        """Resolve labels and produce an immutable :class:`Program`."""
        resolved: List[Instruction] = []
        for pending in self._instructions:
            if pending.label_ref is None:
                resolved.append(pending.instruction)
                continue
            if pending.label_ref not in self._labels:
                raise AssemblyError(
                    f"undefined label {pending.label_ref!r}")
            target = self._labels[pending.label_ref]
            inst = pending.instruction
            resolved.append(Instruction(
                inst.opcode, rd=inst.rd, rs1=inst.rs1, rs2=inst.rs2,
                imm=inst.imm, target=target, alu_op=inst.alu_op,
                cond=inst.cond, label=inst.label))
        return Program(resolved, code_base=self._code_base,
                       labels=dict(self._labels))

    def _emit(self, instruction: Instruction,
              pending_label: Optional[str] = None) -> None:
        self._instructions.append(_Pending(instruction, pending_label))


class _Pending:
    """An emitted instruction, possibly awaiting label resolution."""

    __slots__ = ("instruction", "label_ref")

    def __init__(self, instruction: Instruction,
                 label_ref: Optional[str]) -> None:
        self.instruction = instruction
        self.label_ref = label_ref


def assemble(source: str, code_base: int = 0x1000) -> Program:
    """Assemble a newline-separated text listing into a :class:`Program`.

    Grammar (one instruction per line, ``;`` starts a comment)::

        label:
        li   rD, #imm
        add  rD, rS1, rS2      ; likewise sub/mul/and/or/xor/shl/shr
        add  rD, rS1, #imm
        ld   rD, [rS1+imm]
        st   [rS1+imm], rS2
        beq  rS1, rS2, label   ; likewise bne/blt/bge
        jmp  label
        jmpi rS1
        call rD, label
        ret  rS1
        clflush [rS1+imm]
        rdtsc rD
        fence | nop | halt
    """
    builder = ProgramBuilder(code_base=code_base)
    for raw_line in source.splitlines():
        line = raw_line.split(";", 1)[0].strip()
        if not line:
            continue
        if line.endswith(":"):
            builder.label(line[:-1].strip())
            continue
        _assemble_line(builder, line)
    return builder.build()


def _parse_mem_operand(text: str) -> Tuple[str, int]:
    """Parse ``[rN+imm]`` / ``[rN-imm]`` / ``[rN]``."""
    text = text.strip()
    if not (text.startswith("[") and text.endswith("]")):
        raise AssemblyError(f"bad memory operand {text!r}")
    inner = text[1:-1].strip()
    for sep in ("+", "-"):
        if sep in inner:
            base, offset = inner.split(sep, 1)
            sign = 1 if sep == "+" else -1
            return base.strip(), sign * _parse_int(offset.strip())
    return inner, 0


def _parse_int(text: str) -> int:
    try:
        return int(text, 0)
    except ValueError as exc:
        raise AssemblyError(f"bad integer {text!r}") from exc


def _assemble_line(builder: ProgramBuilder, line: str) -> None:
    mnemonic, _, rest = line.partition(" ")
    mnemonic = mnemonic.lower()
    operands = [op.strip() for op in rest.split(",")] if rest.strip() else []

    alu_mnemonics = {op.value for op in AluOp}
    if mnemonic in alu_mnemonics:
        if len(operands) != 3:
            raise AssemblyError(f"{mnemonic} needs 3 operands: {line!r}")
        rd, rs1, third = operands
        if third.startswith("#"):
            builder.alu(mnemonic, rd, rs1, imm=_parse_int(third[1:]))
        else:
            builder.alu(mnemonic, rd, rs1, third)
    elif mnemonic == "li":
        if len(operands) != 2 or not operands[1].startswith("#"):
            raise AssemblyError(f"li needs 'rD, #imm': {line!r}")
        builder.li(operands[0], _parse_int(operands[1][1:]))
    elif mnemonic == "ld":
        if len(operands) != 2:
            raise AssemblyError(f"ld needs 'rD, [rS+imm]': {line!r}")
        base, offset = _parse_mem_operand(operands[1])
        builder.load(operands[0], base, offset)
    elif mnemonic == "st":
        if len(operands) != 2:
            raise AssemblyError(f"st needs '[rS+imm], rD': {line!r}")
        base, offset = _parse_mem_operand(operands[0])
        builder.store(base, operands[1], offset)
    elif mnemonic in ("beq", "bne", "blt", "bge"):
        if len(operands) != 3:
            raise AssemblyError(f"{mnemonic} needs 3 operands: {line!r}")
        builder.branch(mnemonic[1:], operands[0], operands[1], operands[2])
    elif mnemonic == "jmp":
        if len(operands) != 1:
            raise AssemblyError(f"jmp needs a label: {line!r}")
        builder.jmp(operands[0])
    elif mnemonic == "jmpi":
        if len(operands) != 1:
            raise AssemblyError(f"jmpi needs a register: {line!r}")
        builder.jmpi(operands[0])
    elif mnemonic == "call":
        if len(operands) != 2:
            raise AssemblyError(f"call needs 'rD, label': {line!r}")
        builder.call(operands[0], operands[1])
    elif mnemonic == "ret":
        if len(operands) != 1:
            raise AssemblyError(f"ret needs a register: {line!r}")
        builder.ret(operands[0])
    elif mnemonic == "clflush":
        if len(operands) != 1:
            raise AssemblyError(f"clflush needs '[rS+imm]': {line!r}")
        base, offset = _parse_mem_operand(operands[0])
        builder.clflush(base, offset)
    elif mnemonic == "rdtsc":
        if len(operands) != 1:
            raise AssemblyError(f"rdtsc needs a register: {line!r}")
        builder.rdtsc(operands[0])
    elif mnemonic == "fence":
        builder.fence()
    elif mnemonic == "nop":
        builder.nop()
    elif mnemonic == "halt":
        builder.halt()
    else:
        raise AssemblyError(f"unknown mnemonic {mnemonic!r}")
