"""Program container: a sequence of instructions laid out in memory."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.errors import AssemblyError
from repro.isa.instructions import INSTRUCTION_BYTES, Instruction, Opcode


class Program:
    """An assembled program.

    Instructions live at ``code_base + index * INSTRUCTION_BYTES``; the
    mapping between instruction index and virtual PC is fixed so the
    i-cache and BTB see realistic addresses.
    """

    def __init__(self, instructions: Sequence[Instruction],
                 code_base: int = 0x1000,
                 labels: Optional[Dict[str, int]] = None) -> None:
        if code_base % INSTRUCTION_BYTES:
            raise AssemblyError(
                f"code base {code_base:#x} must be {INSTRUCTION_BYTES}-byte "
                f"aligned")
        self.instructions: List[Instruction] = list(instructions)
        self.code_base = code_base
        self.labels: Dict[str, int] = dict(labels or {})
        for name, index in self.labels.items():
            if not 0 <= index <= len(self.instructions):
                raise AssemblyError(
                    f"label {name!r} points outside the program")

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def pc_of(self, index: int) -> int:
        """Virtual PC of the instruction at ``index``."""
        return self.code_base + index * INSTRUCTION_BYTES

    def index_of(self, pc: int) -> int:
        """Instruction index at virtual address ``pc``."""
        offset = pc - self.code_base
        if offset < 0 or offset % INSTRUCTION_BYTES:
            raise AssemblyError(f"pc {pc:#x} is not an instruction boundary")
        return offset // INSTRUCTION_BYTES

    def fetch(self, pc: int) -> Optional[Instruction]:
        """Instruction at ``pc``, or None when past the end / unmapped."""
        offset = pc - self.code_base
        if offset < 0 or offset % INSTRUCTION_BYTES:
            return None
        index = offset // INSTRUCTION_BYTES
        if index >= len(self.instructions):
            return None
        return self.instructions[index]

    def label_pc(self, name: str) -> int:
        """Virtual PC of a label."""
        if name not in self.labels:
            raise AssemblyError(f"unknown label {name!r}")
        return self.pc_of(self.labels[name])

    @property
    def code_bytes(self) -> int:
        """Size of the code image in bytes."""
        return len(self.instructions) * INSTRUCTION_BYTES

    def to_source(self) -> str:
        """Re-assembleable text for this program.

        Unlike :meth:`disassemble` (a human-facing listing with virtual
        addresses and ``@index`` branch targets), the output here is
        valid :func:`~repro.isa.assembler.assemble` input: every branch
        or jump target index is materialised as a generated ``L<index>``
        label, so ``assemble(p.to_source(), p.code_base)`` reproduces
        ``p.instructions`` exactly.
        """
        targets = sorted({inst.target for inst in self.instructions
                          if inst.target is not None})
        lines = []
        for index, inst in enumerate(self.instructions):
            if index in targets:
                lines.append(f"L{index}:")
            if inst.opcode == Opcode.BRANCH:
                lines.append(f"b{inst.cond.value} r{inst.rs1}, "
                             f"r{inst.rs2}, L{inst.target}")
            elif inst.opcode == Opcode.JMP:
                lines.append(f"jmp L{inst.target}")
            elif inst.opcode == Opcode.CALL:
                lines.append(f"call r{inst.rd}, L{inst.target}")
            else:
                lines.append(str(inst))
        # A target one past the last instruction still needs its label.
        if targets and targets[-1] == len(self.instructions):
            lines.append(f"L{targets[-1]}:")
        return "\n".join(lines)

    def disassemble(self) -> str:
        """Human-readable listing (for debugging and docs)."""
        reverse_labels: Dict[int, List[str]] = {}
        for name, index in self.labels.items():
            reverse_labels.setdefault(index, []).append(name)
        lines = []
        for index, inst in enumerate(self.instructions):
            for name in reverse_labels.get(index, ()):
                lines.append(f"{name}:")
            lines.append(f"  {self.pc_of(index):#08x}  {inst}")
        return "\n".join(lines)
