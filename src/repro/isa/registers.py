"""Architectural register file description.

Sixteen general-purpose 64-bit registers, named ``r0`` .. ``r15``.
``r0`` is an ordinary register (not hardwired to zero); immediates cover
the constant-zero use case.
"""

from __future__ import annotations

from repro.errors import AssemblyError

NUM_REGISTERS = 16
REGISTER_NAMES = tuple(f"r{i}" for i in range(NUM_REGISTERS))
WORD_MASK = (1 << 64) - 1


def register_index(name: str) -> int:
    """Resolve ``"rN"`` to its register index, validating the range."""
    if not name.startswith("r"):
        raise AssemblyError(f"bad register name {name!r}")
    try:
        index = int(name[1:])
    except ValueError as exc:
        raise AssemblyError(f"bad register name {name!r}") from exc
    if not 0 <= index < NUM_REGISTERS:
        raise AssemblyError(
            f"register index out of range: {name!r} "
            f"(have {NUM_REGISTERS} registers)")
    return index


def to_signed(value: int) -> int:
    """Interpret a 64-bit value as signed."""
    value &= WORD_MASK
    if value >= 1 << 63:
        return value - (1 << 64)
    return value


def to_unsigned(value: int) -> int:
    """Truncate a Python integer to the 64-bit register width."""
    return value & WORD_MASK
