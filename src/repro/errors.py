"""Exception hierarchy for the SafeSpec reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class AssemblyError(ReproError):
    """A program could not be assembled (bad opcode, unknown label...)."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent or unsupported state."""


class OracleError(ReproError):
    """The reference oracle cannot compute an architectural result.

    Raised when a program uses a timing-dependent value (an ``rdtsc``
    result) where the architectural outcome would depend on it — as an
    address, a branch operand, a store value, or an indirect-jump
    target.  The fuzzer never generates such programs; hitting this is
    a generator bug, not a simulator divergence.
    """


class SampleError(ReproError):
    """Sampled simulation could not produce an estimate (no measurable
    windows, or a checkpoint could not be taken at the requested point)."""


class MemoryFault(ReproError):
    """An architectural memory fault (raised at commit time only).

    Attributes:
        vaddr: faulting virtual address.
        pc: program counter of the faulting instruction.
        kind: short fault category, e.g. ``"permission"`` or ``"unmapped"``.
    """

    def __init__(self, vaddr: int, pc: int, kind: str = "permission") -> None:
        super().__init__(f"{kind} fault at vaddr={vaddr:#x} (pc={pc:#x})")
        self.vaddr = vaddr
        self.pc = pc
        self.kind = kind
