"""Simulation service layer: declarative jobs, caching, and execution.

Every experiment consumer (figures, security matrix, CLI, benchmarks)
describes its simulations as :class:`~repro.exec.job.SimJob` values and
submits them through an executor:

* :class:`~repro.exec.job.SimJob` / :class:`~repro.exec.job.SimResult` —
  a content-hashable description of one simulation and its
  JSON-serializable outcome.
* :class:`~repro.exec.cache.ResultCache` — a persistent on-disk result
  store keyed by the job hash, so repeated invocations skip completed
  runs.
* :class:`~repro.exec.executor.SerialExecutor` /
  :class:`~repro.exec.executor.ParallelExecutor` — run a batch of jobs
  in-process or fanned out over a ``multiprocessing`` pool (workers
  rebuild all machine state from the job spec; jobs that must share a
  worker declare a ``serial_group``).

This package is the transport layer; the user-facing surface on top of
it is :mod:`repro.api` (:class:`~repro.api.session.Session` owns an
executor + cache pair, :class:`~repro.api.scenario.Sweep` expands
declarative grids into job batches), which is also the seam future
scaling work (sharding, async backends, result servers) plugs into.
"""

from repro.exec.cache import (NullCache, ResultCache, default_cache_dir)
from repro.exec.executor import (ParallelExecutor, SerialExecutor,
                                 execute_job, make_executor,
                                 stderr_progress)
from repro.exec.job import (SCHEMA_VERSION, FigureMetrics, SimJob,
                            SimResult, attack_job, workload_job)

__all__ = [
    "SCHEMA_VERSION",
    "FigureMetrics",
    "NullCache",
    "ParallelExecutor",
    "ResultCache",
    "SerialExecutor",
    "SimJob",
    "SimResult",
    "attack_job",
    "default_cache_dir",
    "execute_job",
    "make_executor",
    "stderr_progress",
    "workload_job",
]
