"""Declarative simulation jobs and their serializable results.

A :class:`SimJob` fully describes one simulation — a suite workload or an
attack, the commit policy, any config overrides and the instruction
budget — independent of the process that will run it.  Two jobs with the
same spec have the same :meth:`SimJob.key`, which is what the on-disk
cache and the executors key on.

A :class:`SimResult` carries everything the figures and tables derive
their series from (counters, shadow-occupancy histograms, commit rates,
attack outcome) as plain JSON-serializable data, and exposes the same
derived-metric API as :class:`~repro.workloads.suite.WorkloadRun` so the
analysis layer can consume either interchangeably.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional

from repro.core.policy import CommitPolicy
from repro.core.safespec import SafeSpecConfig
from repro.errors import ConfigError
from repro.memory.hierarchy import HierarchyConfig
from repro.pipeline.config import CoreConfig
from repro.statistics import Histogram, ratio

if TYPE_CHECKING:  # pragma: no cover - import cycle guard only
    from repro.spec import MachineSpec

# Bump whenever the result schema or simulator semantics change in a way
# that invalidates cached results; the cache namespaces entries by it.
# v2: the per-kind ``secret`` field became the generic ``params`` dict.
# v3: jobs may carry a full MachineSpec (dict + digest) in ``params``,
#     so the cache distinguishes hardware shapes (predictor, BTB, and
#     spec-described configs included).
# v4: writeback-stage fix (a wrong-path branch resolving in the same
#     batch as an older mispredicting branch could redirect fetch) —
#     simulator semantics changed, invalidating cached results; the
#     ``verify`` job kind also lands in this schema.
# v5: the execution backend (``"cycle"`` / ``"fast"``) joined the job
#     spec: every job's ``params`` now carries a ``backend`` key, so
#     fast-functional and cycle-accurate results can never share a
#     cache entry (their cycle counts differ within the documented
#     tolerance).
# v6: the ``sample`` job kind (checkpointed SimPoint-style windows)
#     landed, and budget-stopped runs now record a resume PC; sampled
#     window results encode the full sampling plan (interval, warmup,
#     window length/index, fast-forward backend) in ``params``, so two
#     plans can never share a window's cache entry.  The workload
#     generator also changed semantics (stores no longer corrupt the
#     pointer-chase table, so chasing workloads run past a few thousand
#     instructions instead of faulting), invalidating cached results.
SCHEMA_VERSION = 6

# Single source of truth for the per-run budget; the workload suite
# re-exports it (suite imports this module, never the reverse).
DEFAULT_INSTRUCTION_BUDGET = 20_000

WORKLOAD = "workload"
ATTACK = "attack"
VERIFY = "verify"
SAMPLE = "sample"

_JOB_KINDS = (WORKLOAD, ATTACK, VERIFY, SAMPLE)


@dataclass(frozen=True)
class SimJob:
    """A content-hashable description of one simulation.

    ``kind`` is ``"workload"`` (``target`` names a suite benchmark),
    ``"attack"`` (``target`` names a registered attack), ``"verify"``
    (``target`` names a fuzz case; see
    :func:`repro.verify.harness.verify_job`) or ``"sample"`` (``target``
    names a suite benchmark, the job measures one checkpointed window;
    see :func:`repro.sample.driver.sample_job`).  ``params``
    carries kind-specific scenario data (an attack's planted ``secret``,
    future workload knobs) uniformly for every kind and flows into the
    job hash.  ``serial_group`` marks jobs that must not fan out to
    different workers (e.g. runs that rely on machine state persisting
    between them); it never affects the job hash because it changes
    *where* the job runs, not its result.
    """

    kind: str
    target: str
    policy: CommitPolicy = CommitPolicy.BASELINE
    instructions: int = DEFAULT_INSTRUCTION_BUDGET
    # hash=False: the dict value would break the generated __hash__;
    # equality still compares params, same-hash jobs just may collide.
    params: Mapping[str, Any] = field(default_factory=dict, hash=False)
    core_config: Optional[CoreConfig] = None
    hierarchy_config: Optional[HierarchyConfig] = None
    safespec_config: Optional[SafeSpecConfig] = None
    serial_group: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in _JOB_KINDS:
            raise ConfigError(
                f"job kind must be one of {', '.join(map(repr, _JOB_KINDS))},"
                f" got {self.kind!r}")
        if self.instructions < 1:
            raise ConfigError("instruction budget must be >= 1")
        # Own a plain-dict copy so a caller-held mapping can't mutate
        # the spec after hashing (frozen dataclass setattr workaround).
        object.__setattr__(self, "params", dict(self.params))

    def spec(self) -> Dict[str, Any]:
        """The canonical content of this job (hash input)."""
        return {
            "schema": SCHEMA_VERSION,
            "kind": self.kind,
            "target": self.target,
            "policy": self.policy.value,
            "instructions": self.instructions,
            "params": _json_clean(self.params),
            "core_config": _config_dict(self.core_config),
            "hierarchy_config": _config_dict(self.hierarchy_config),
            "safespec_config": _config_dict(self.safespec_config),
        }

    def key(self) -> str:
        """Deterministic content hash identifying this job."""
        canonical = json.dumps(self.spec(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """Short human-readable label for progress reporting."""
        return f"{self.kind}:{self.target}/{self.policy.value}"


class FigureMetrics:
    """The per-figure derived metrics, shared by every result type.

    A subclass provides ``_counter(name)`` (simulation counter lookup)
    and a ``shadow_commit_rates`` mapping; the formulas that turn those
    into the paper's figure series live only here, so cached
    :class:`SimResult` values and fresh
    :class:`~repro.workloads.suite.WorkloadRun` values can never derive
    a figure differently.
    """

    shadow_commit_rates: Dict[str, float]

    def _counter(self, name: str) -> int:
        raise NotImplementedError

    @property
    def dcache_read_miss_rate(self) -> float:
        """Figure 12: read miss rate including the shadow d-cache."""
        return ratio(self._counter("dcache_read_misses"),
                     self._counter("dcache_read_accesses"))

    @property
    def dcache_shadow_hit_fraction(self) -> float:
        """Figure 13: fraction of read hits that hit the shadow."""
        hits = (self._counter("dcache_l1_hits")
                + self._counter("dcache_shadow_hits"))
        return ratio(self._counter("dcache_shadow_hits"), hits)

    @property
    def icache_miss_rate(self) -> float:
        """Figure 14: i-cache miss rate including the shadow i-cache."""
        return ratio(self._counter("icache_misses"),
                     self._counter("icache_accesses"))

    @property
    def icache_shadow_hit_fraction(self) -> float:
        """Figure 15: fraction of i-cache hits that hit the shadow."""
        hits = (self._counter("icache_l1_hits")
                + self._counter("icache_shadow_hits"))
        return ratio(self._counter("icache_shadow_hits"), hits)

    def shadow_commit_rate(self, structure: str) -> float:
        """Figure 16: committed fraction of retired shadow entries."""
        return self.shadow_commit_rates.get(structure, 0.0)


@dataclass
class SimResult(FigureMetrics):
    """The JSON-serializable outcome of one :class:`SimJob`.

    Exposes the derived per-figure metrics of
    :class:`~repro.workloads.suite.WorkloadRun` (IPC, miss rates, shadow
    hit fractions, occupancy percentiles, commit rates) plus the attack
    verdict, so every consumer reads one result type.
    """

    job_key: str
    kind: str
    target: str
    policy: CommitPolicy
    cycles: int = 0
    instructions: int = 0
    halted_reason: str = ""
    counters: Dict[str, int] = field(default_factory=dict)
    # structure name -> {occupancy value -> cycle count}
    shadow_occupancy: Dict[str, Dict[int, int]] = field(default_factory=dict)
    shadow_commit_rates: Dict[str, float] = field(default_factory=dict)
    # attack outcome (kind == "attack" only)
    secret: Optional[int] = None
    leaked: Optional[int] = None
    details: Dict[str, Any] = field(default_factory=dict)
    # transport metadata, never serialized
    from_cache: bool = False

    # -- derived workload metrics (same API as WorkloadRun) ---------------

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def _counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def shadow_size_percentile(self, structure: str,
                               fraction: float = 0.9999) -> int:
        """Figures 6-9: shadow size covering ``fraction`` of cycles."""
        buckets = self.shadow_occupancy.get(structure)
        if not buckets:
            return 0
        histogram = Histogram(structure)
        for value, count in buckets.items():
            histogram.record(value, count)
        return histogram.percentile(fraction)

    # -- attack verdict ----------------------------------------------------

    @property
    def success(self) -> bool:
        """Whether the attack recovered the planted secret."""
        return self.leaked is not None and self.leaked == self.secret

    @property
    def closed(self) -> bool:
        return not self.success

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "job_key": self.job_key,
            "kind": self.kind,
            "target": self.target,
            "policy": self.policy.value,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "halted_reason": self.halted_reason,
            "counters": dict(self.counters),
            "shadow_occupancy": {
                name: {str(value): count for value, count in buckets.items()}
                for name, buckets in self.shadow_occupancy.items()},
            "shadow_commit_rates": dict(self.shadow_commit_rates),
            "secret": self.secret,
            "leaked": self.leaked,
            "details": self.details,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SimResult":
        return cls(
            job_key=payload["job_key"],
            kind=payload["kind"],
            target=payload["target"],
            policy=CommitPolicy(payload["policy"]),
            cycles=payload["cycles"],
            instructions=payload["instructions"],
            halted_reason=payload.get("halted_reason", ""),
            counters=dict(payload.get("counters", {})),
            shadow_occupancy={
                name: {int(value): count for value, count in buckets.items()}
                for name, buckets in
                payload.get("shadow_occupancy", {}).items()},
            shadow_commit_rates=dict(payload.get("shadow_commit_rates", {})),
            secret=payload.get("secret"),
            leaked=payload.get("leaked"),
            details=dict(payload.get("details", {})),
        )


# ---------------------------------------------------------------------------
# job constructors
# ---------------------------------------------------------------------------

def workload_job(benchmark: str, policy: CommitPolicy,
                 instructions: int = DEFAULT_INSTRUCTION_BUDGET,
                 core_config: Optional[CoreConfig] = None,
                 hierarchy_config: Optional[HierarchyConfig] = None,
                 safespec_config: Optional[SafeSpecConfig] = None,
                 spec: Optional["MachineSpec"] = None,
                 backend: str = "cycle") -> SimJob:
    """A job running one suite benchmark under one policy.

    ``spec`` (a :class:`~repro.spec.MachineSpec`) is the declarative
    hardware axis: its dict + digest land in ``params`` and flow into
    the job hash.  It is mutually exclusive with the loose per-config
    overrides.  ``backend`` selects the execution backend and always
    lands in ``params`` so the two backends' results never collide in
    the cache.
    """
    ensure_single_config_style(spec, core_config, hierarchy_config,
                               safespec_config)
    return SimJob(kind=WORKLOAD, target=benchmark, policy=policy,
                  instructions=instructions,
                  params={"backend": backend, **spec_params(spec)},
                  core_config=core_config,
                  hierarchy_config=hierarchy_config,
                  safespec_config=safespec_config)


def attack_job(name: str, policy: CommitPolicy, secret: int = 42,
               spec: Optional["MachineSpec"] = None,
               backend: str = "cycle") -> SimJob:
    """A job running one attack PoC under one policy.

    Each attack run builds and mistrains its own machines from the spec
    alone, so attack jobs carry no serial group and fan out freely; a
    future run family that *does* persist machine state across jobs
    should construct its :class:`SimJob` with an explicit
    ``serial_group`` to stay on one worker.
    """
    return SimJob(kind=ATTACK, target=name, policy=policy,
                  params={"secret": secret, "backend": backend,
                          **spec_params(spec)})


def ensure_single_config_style(spec: Optional["MachineSpec"],
                               core_config: Any, hierarchy_config: Any,
                               safespec_config: Any) -> None:
    """The one guard rejecting mixed config styles (spec + loose kwargs).

    Shared by the job builders, :class:`~repro.api.scenario.Scenario`
    and :func:`~repro.workloads.suite.run_workload` so the rule (and
    its message) can never diverge between layers.
    """
    if spec is not None and (core_config is not None
                             or hierarchy_config is not None
                             or safespec_config is not None):
        raise ConfigError(
            "pass either a MachineSpec or loose config overrides, not "
            "both (fold overrides in with spec.derive(...))")


def spec_params(spec: Optional["MachineSpec"]) -> Dict[str, Any]:
    """The params entries lowering ``spec`` into a job (empty if None).

    The single place a MachineSpec becomes job params — every
    spec-carrying job, whether built here or by ``Scenario.job()``,
    gets identical keys (and therefore identical cache hashing).
    """
    return {} if spec is None else spec.job_params()


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _config_dict(config: Any) -> Optional[Dict[str, Any]]:
    """A dataclass config as a JSON-clean nested dict (None passthrough)."""
    if config is None:
        return None
    return _json_clean(dataclasses.asdict(config))


def _json_clean(value: Any) -> Any:
    """Recursively coerce a value into JSON-representable primitives."""
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {str(k): _json_clean(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_clean(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def json_clean_details(details: Dict[str, Any]) -> Dict[str, Any]:
    """Coerce an attack's free-form details dict for serialization."""
    return _json_clean(details)
