"""Executors: run a batch of :class:`SimJob` serially or in parallel.

Both executors share the same contract: ``run(jobs)`` returns one
:class:`SimResult` per job, in submission order, consulting the attached
cache before simulating and persisting every fresh result afterwards.

The :class:`ParallelExecutor` fans uncached jobs out over a
``multiprocessing`` pool.  Workers rebuild the whole machine state from
the job spec (the simulator is deterministic given a spec), so results
are bit-identical to a serial run.  Jobs that declare a ``serial_group``
are shipped to a single worker as one task and executed there in
submission order.  Note the group co-locates only the jobs that
actually simulate: cached members are served before dispatch, so a
serial group composes with a result cache only when its jobs are
individually reproducible from their specs (which also is what makes
them cacheable at all).
"""

from __future__ import annotations

import multiprocessing
import sys
from typing import (Callable, Dict, Iterator, List, Optional, Sequence,
                    Tuple)

from repro.exec.cache import NullCache, ResultCache
from repro.exec.job import ATTACK, SAMPLE, VERIFY, SimJob, SimResult

# (completed count, total, job, result) -> None
ProgressFn = Callable[[int, int, SimJob, SimResult], None]

_IndexedJobs = List[Tuple[int, SimJob]]


def execute_job(job: SimJob) -> SimResult:
    """Run one job from scratch in this process (no cache involved)."""
    # Imported lazily: the workload/attack layers themselves build jobs
    # through repro.exec, so a module-level import would cycle.
    if job.kind == ATTACK:
        from repro.attacks.runner import run_attack_job

        return run_attack_job(job)
    if job.kind == VERIFY:
        from repro.verify.harness import run_verify_job

        return run_verify_job(job)
    if job.kind == SAMPLE:
        from repro.sample.driver import run_sample_job

        return run_sample_job(job)
    from repro.workloads.suite import run_workload_job

    return run_workload_job(job)


def stderr_progress(done: int, total: int, job: SimJob,
                    result: SimResult) -> None:
    """Default progress reporter: one line per completed job."""
    source = "cached" if result.from_cache else "simulated"
    print(f"[{done}/{total}] {job.describe()} ({source})",
          file=sys.stderr, flush=True)


class SerialExecutor:
    """Runs every job in this process, in submission order."""

    def __init__(self, cache: Optional[ResultCache] = None,
                 progress: Optional[ProgressFn] = None) -> None:
        self.cache = cache if cache is not None else NullCache()
        self.progress = progress

    def run(self, jobs: Sequence[SimJob]) -> List[SimResult]:
        results: List[Optional[SimResult]] = [None] * len(jobs)
        for index, job in enumerate(jobs):
            result = self.cache.get(job)
            if result is None:
                result = execute_job(job)
                self.cache.put(job, result)
            results[index] = result
            if self.progress:
                self.progress(index + 1, len(jobs), job, result)
        return results  # type: ignore[return-value]


class ParallelExecutor:
    """Fans uncached jobs out over a ``multiprocessing`` pool.

    ``workers`` bounds the pool size.  With one worker (or one runnable
    task) the batch degrades to in-process serial execution, so the
    executor is always safe to use.
    """

    def __init__(self, workers: int = 2,
                 cache: Optional[ResultCache] = None,
                 progress: Optional[ProgressFn] = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.cache = cache if cache is not None else NullCache()
        self.progress = progress

    def run(self, jobs: Sequence[SimJob]) -> List[SimResult]:
        total = len(jobs)
        results: List[Optional[SimResult]] = [None] * total
        done = 0

        pending: _IndexedJobs = []
        for index, job in enumerate(jobs):
            cached = self.cache.get(job)
            if cached is not None:
                results[index] = cached
                done += 1
                if self.progress:
                    self.progress(done, total, job, cached)
            else:
                pending.append((index, job))

        for indexed_chunk in self._dispatch(_chunk_by_group(pending)):
            for index, result in indexed_chunk:
                self.cache.put(jobs[index], result)
                results[index] = result
                done += 1
                if self.progress:
                    self.progress(done, total, jobs[index], result)
        return results  # type: ignore[return-value]

    def _dispatch(self, chunks: List[_IndexedJobs]
                  ) -> Iterator[List[Tuple[int, SimResult]]]:
        if not chunks:
            return
        workers = min(self.workers, len(chunks))
        if workers <= 1:
            for chunk in chunks:
                yield _run_chunk(chunk)
            return
        context = multiprocessing.get_context()
        with context.Pool(processes=workers) as pool:
            # Streamed so progress lines appear as chunks complete.
            yield from pool.imap_unordered(_run_chunk, chunks)


def make_executor(workers: int = 1, cache: Optional[ResultCache] = None,
                  progress: Optional[ProgressFn] = None):
    """The executor the CLI flags describe: parallel iff ``workers > 1``."""
    if workers > 1:
        return ParallelExecutor(workers=workers, cache=cache,
                                progress=progress)
    return SerialExecutor(cache=cache, progress=progress)


def _chunk_by_group(pending: _IndexedJobs) -> List[_IndexedJobs]:
    """Pool tasks: one chunk per serial group, singletons otherwise."""
    groups: Dict[str, _IndexedJobs] = {}
    chunks: List[_IndexedJobs] = []
    for index, job in pending:
        if job.serial_group is None:
            chunks.append([(index, job)])
        elif job.serial_group in groups:
            groups[job.serial_group].append((index, job))
        else:
            chunk: _IndexedJobs = [(index, job)]
            groups[job.serial_group] = chunk
            chunks.append(chunk)
    return chunks


def _run_chunk(chunk: _IndexedJobs) -> List[Tuple[int, SimResult]]:
    """Worker entry point: run one chunk's jobs in order."""
    return [(index, execute_job(job)) for index, job in chunk]
