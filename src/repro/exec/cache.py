"""Persistent on-disk result cache keyed by job content hash.

Results live as one JSON file per job under
``<cache-dir>/v<SCHEMA_VERSION>/<job-key>.json``.  The directory defaults
to ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``; bumping
:data:`~repro.exec.job.SCHEMA_VERSION` namespaces away entries written by
incompatible simulator versions.  Writes are atomic (temp file +
``os.replace``) so concurrent processes never observe torn entries, and
unreadable entries degrade to cache misses.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
from pathlib import Path
from typing import Optional, Union

from repro.exec.job import SCHEMA_VERSION, SimJob, SimResult

CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro"


class ResultCache:
    """A directory of cached :class:`SimResult` JSON files."""

    def __init__(self, directory: Union[str, Path, None] = None) -> None:
        base = Path(directory) if directory is not None \
            else default_cache_dir()
        self.directory = base / f"v{SCHEMA_VERSION}"
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self._store_warned = False

    def path_for(self, job: SimJob) -> Path:
        return self.directory / f"{job.key()}.json"

    def get(self, job: SimJob) -> Optional[SimResult]:
        """The cached result for ``job``, or None (counted as a miss)."""
        path = self.path_for(job)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            result = SimResult.from_dict(payload)
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            # Missing, corrupt or schema-incompatible entry (including
            # valid JSON that is not a result object): recompute.
            self.misses += 1
            return None
        result.from_cache = True
        self.hits += 1
        return result

    def put(self, job: SimJob, result: SimResult) -> None:
        """Atomically persist ``result`` under ``job``'s hash.

        An unwritable cache location must not discard a simulation that
        already ran: storage failures degrade to a one-time warning.
        """
        payload = result.to_dict()
        tmp_name = None
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=self.directory, prefix=".tmp-", suffix=".json")
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(tmp_name, self.path_for(job))
        except OSError as error:
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            if not self._store_warned:
                print(f"warning: result cache disabled for this run: "
                      f"cannot write {self.directory} ({error})",
                      file=sys.stderr)
                self._store_warned = True
            return
        self.stores += 1

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))

    def describe(self) -> str:
        return (f"cache {self.directory}: {self.hits} hits, "
                f"{self.misses} misses, {self.stores} stored")


class NullCache:
    """Cache stand-in used by ``--no-cache``: never hits, never stores."""

    directory = None

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def get(self, job: SimJob) -> Optional[SimResult]:
        self.misses += 1
        return None

    def put(self, job: SimJob, result: SimResult) -> None:
        pass

    def clear(self) -> int:
        return 0

    def __len__(self) -> int:
        return 0

    def describe(self) -> str:
        return "cache disabled"
