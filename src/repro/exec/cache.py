"""Persistent on-disk result cache keyed by job content hash.

Results live as one JSON file per job under
``<cache-dir>/v<SCHEMA_VERSION>/<job-key>.json``.  The directory defaults
to ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``; bumping
:data:`~repro.exec.job.SCHEMA_VERSION` namespaces away entries written by
incompatible simulator versions.  Writes are atomic (temp file +
``os.replace``) so concurrent processes never observe torn entries, and
unreadable entries degrade to cache misses.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.errors import ConfigError
from repro.exec.job import SCHEMA_VERSION, SimJob, SimResult

CACHE_DIR_ENV = "REPRO_CACHE_DIR"
STORE_ENV = "REPRO_STORE"

# Temp files carry this prefix so clear()/len() never touch an entry
# another process is still writing (a racing clear() unlinking a temp
# file mid-write used to surface as a spurious "cache disabled").
_TMP_PREFIX = ".tmp-"

# The registered store kinds ``make_cache`` resolves.
STORE_KINDS = ("dir", "sqlite")


def default_store_kind() -> str:
    """``$REPRO_STORE`` when set, else the directory cache."""
    return os.environ.get(STORE_ENV, "dir")


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro"


class ResultCache:
    """A directory of cached :class:`SimResult` JSON files."""

    def __init__(self, directory: Union[str, Path, None] = None) -> None:
        base = Path(directory) if directory is not None \
            else default_cache_dir()
        self.directory = base / f"v{SCHEMA_VERSION}"
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self._store_warned = False

    def path_for(self, job: SimJob) -> Path:
        return self.directory / f"{job.key()}.json"

    def get(self, job: SimJob) -> Optional[SimResult]:
        """The cached result for ``job``, or None (counted as a miss)."""
        path = self.path_for(job)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            result = SimResult.from_dict(payload)
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            # Missing, corrupt or schema-incompatible entry (including
            # valid JSON that is not a result object): recompute.
            self.misses += 1
            return None
        result.from_cache = True
        self.hits += 1
        return result

    def put(self, job: SimJob, result: SimResult) -> None:
        """Atomically persist ``result`` under ``job``'s hash.

        An unwritable cache location must not discard a simulation that
        already ran: storage failures degrade to a one-time warning.
        """
        payload = result.to_dict()
        # Two attempts: a concurrent clear() (or cache wipe) racing the
        # temp file between mkstemp and os.replace surfaces as a
        # spurious OSError on a perfectly writable directory — recreate
        # and retry once before concluding the location is unusable.
        error: Optional[OSError] = None
        for _ in range(2):
            tmp_name = None
            try:
                self.directory.mkdir(parents=True, exist_ok=True)
                fd, tmp_name = tempfile.mkstemp(
                    dir=self.directory, prefix=_TMP_PREFIX, suffix=".json")
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle, separators=(",", ":"))
                os.replace(tmp_name, self.path_for(job))
            except OSError as exc:
                error = exc
                if tmp_name is not None:
                    try:
                        os.unlink(tmp_name)
                    except OSError:
                        pass
                continue
            self.stores += 1
            return
        if not self._store_warned:
            print(f"warning: result cache disabled for this run: "
                  f"cannot write {self.directory} ({error})",
                  file=sys.stderr)
            self._store_warned = True

    def _entries(self):
        """Completed entry files only — in-flight temp files excluded,
        so a concurrent writer's half-written entry is never counted,
        cleared, or collected."""
        if not self.directory.is_dir():
            return
        for path in self.directory.glob("*.json"):
            if not path.name.startswith(_TMP_PREFIX):
                yield path

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        for path in self._entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def describe(self) -> str:
        return (f"cache {self.directory}: {self.hits} hits, "
                f"{self.misses} misses, {self.stores} stored")

    def stats(self) -> Dict[str, Any]:
        """The corpus shape, in the same layout as the SQLite store."""
        entries = 0
        payload_bytes = 0
        for path in self._entries():
            try:
                payload_bytes += path.stat().st_size
            except OSError:
                continue
            entries += 1
        return {
            "backend": "dir",
            "location": str(self.directory),
            "schema": SCHEMA_VERSION,
            "entries": entries,
            "payload_bytes": payload_bytes,
        }

    def gc(self, max_age_days: Optional[float] = None,
           max_entries: Optional[int] = None,
           max_bytes: Optional[int] = None, **_ignored: Any) -> int:
        """Prune entries by age and/or size; returns the number removed.

        ``max_age_days`` drops entries whose file mtime (refreshed on
        every store) is outside the window; ``max_entries`` /
        ``max_bytes`` keep the newest entries within the budget.  Stale
        temp files older than a day are swept too (an interrupted writer
        orphans at most one).
        """
        removed = 0
        now = time.time()
        survivors = []
        for path in self._entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            age_days = (now - stat.st_mtime) / 86_400.0
            if max_age_days is not None and age_days > max_age_days:
                removed += _unlink_quiet(path)
            else:
                survivors.append((stat.st_mtime, stat.st_size, path))
        if max_entries is not None or max_bytes is not None:
            survivors.sort(reverse=True)        # newest first
            spent_bytes = 0
            for index, (_, size, path) in enumerate(survivors):
                spent_bytes += size
                over_count = (max_entries is not None
                              and index >= max_entries)
                over_bytes = (max_bytes is not None
                              and spent_bytes > max_bytes)
                if over_count or over_bytes:
                    removed += _unlink_quiet(path)
        if self.directory.is_dir():
            for path in self.directory.glob(f"{_TMP_PREFIX}*"):
                try:
                    if now - path.stat().st_mtime > 86_400.0:
                        removed += _unlink_quiet(path)
                except OSError:
                    pass
        return removed


class NullCache:
    """Cache stand-in used by ``--no-cache``: never hits, never stores."""

    directory = None

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def get(self, job: SimJob) -> Optional[SimResult]:
        self.misses += 1
        return None

    def put(self, job: SimJob, result: SimResult) -> None:
        pass

    def clear(self) -> int:
        return 0

    def __len__(self) -> int:
        return 0

    def describe(self) -> str:
        return "cache disabled"

    def stats(self) -> Dict[str, Any]:
        return {"backend": "null", "location": None,
                "schema": SCHEMA_VERSION, "entries": 0, "payload_bytes": 0}

    def gc(self, **_ignored: Any) -> int:
        return 0


def make_cache(store: Optional[str] = None,
               directory: Union[str, Path, None] = None,
               enabled: bool = True):
    """The result store a (store kind, location) pair describes.

    ``store`` is ``"dir"`` (one JSON file per result, the default) or
    ``"sqlite"`` (the shared :class:`~repro.serve.store.SQLiteResultStore`
    many clients and workers can hit concurrently); ``None`` reads
    ``$REPRO_STORE``.  ``enabled=False`` returns the no-op
    :class:`NullCache` regardless.
    """
    if not enabled:
        return NullCache()
    kind = store if store is not None else default_store_kind()
    if kind == "dir":
        return ResultCache(directory)
    if kind == "sqlite":
        # Imported lazily: repro.serve sits above the exec layer.
        from repro.serve.store import SQLiteResultStore

        return SQLiteResultStore(directory)
    raise ConfigError(f"unknown result store {kind!r}; choose from "
                      f"{', '.join(STORE_KINDS)}")


def _unlink_quiet(path: Path) -> int:
    try:
        path.unlink()
        return 1
    except OSError:
        return 0
