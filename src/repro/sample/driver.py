"""Sampled simulation driver: window jobs, worker entry, stitching.

Each (checkpoint, window) pair is one independent ``sample``
:class:`~repro.exec.job.SimJob`: the job's params carry only *plan
coordinates* (workload, plan knobs, slice index, backends, spec), never
the checkpoint itself — workers re-derive checkpoints deterministically
with a per-process memoized fast-forward scan.  That keeps sample jobs
content-hashable exactly like every other kind, so they flow through the
serial/parallel executors, the on-disk result cache and the serve
protocol unchanged, and a repeated sampled run is all cache hits.

Stitching (:func:`stitch_windows`) turns the measured windows back into
whole-program estimates: each measured slice contributes its own IPC
(the anchor slice — measured whole — contributes its exact cycles),
every unmeasured slice contributes the mean steady-state window IPC,
and the error bar is the 95% confidence interval of that mean.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.policy import CommitPolicy
from repro.errors import SampleError
from repro.exec.job import (SAMPLE, SCHEMA_VERSION, SimJob, SimResult,
                            spec_params)
from repro.machine import Machine
from repro.sample.checkpoint import Checkpoint
from repro.sample.plan import SamplePlan, resolve_workload, scan_checkpoints
from repro.spec import MachineSpec, machine_spec_from_params
from repro.workloads.generator import WorkloadProgram
from repro.workloads.profiles import WorkloadProfile

# Per-process memo of fast-forward scans, keyed by everything that can
# change the produced checkpoints.  A worker measuring several windows
# of one plan scans once; the cap keeps long-lived servers bounded.
_SCAN_MEMO: Dict[Tuple, Dict[int, Checkpoint]] = {}
_SCAN_MEMO_MAX = 4


def sample_job(benchmark: str, policy: CommitPolicy, index: int,
               plan: SamplePlan, total_instructions: int,
               *, spec: Optional[MachineSpec] = None,
               backend: str = "cycle", ff_backend: str = "fast",
               warm: bool = True) -> SimJob:
    """The job measuring slice ``index`` of one sampled run.

    ``instructions`` is the *measured* window length (the whole
    interval for the anchor slice, see
    :meth:`~repro.sample.plan.SamplePlan.window_span`); the
    fast-forward distance is implied by ``index * plan.interval``.  All
    plan knobs, both backend names, the slice index and the total
    budget land in ``params`` and therefore in the cache key: two
    plans, or the same plan over two totals, can never share a window
    result.
    """
    return SimJob(
        kind=SAMPLE,
        target=benchmark,
        policy=policy,
        instructions=plan.window_span(index, total_instructions)[1],
        params={
            "backend": backend,
            "ff_backend": ff_backend,
            "window_index": index,
            "total": total_instructions,
            "warm": warm,
            **plan.to_params(),
            **spec_params(spec),
        },
    )


def _checkpoint_for(job: SimJob, plan: SamplePlan,
                    spec: Optional[MachineSpec]) -> Checkpoint:
    """The checkpoint opening this job's slice (memoized per process)."""
    index = int(job.params["window_index"])
    total = int(job.params["total"])
    ff_backend = str(job.params.get("ff_backend", "fast"))
    warm = bool(job.params.get("warm", True))
    memo_key = (job.target, plan.to_params()["interval"], plan.warmup,
                plan.windows, plan.window, plan.seed, total, job.policy,
                ff_backend, warm,
                spec.digest() if spec is not None else None)
    checkpoints = _SCAN_MEMO.get(memo_key)
    if checkpoints is None or index not in checkpoints:
        # One scan covers every slice this plan selects, so sibling
        # window jobs landing on this worker are all served by it.
        wanted = set(plan.select_windows(total))
        wanted.add(index)
        checkpoints = scan_checkpoints(job.target, plan, wanted,
                                       spec=spec, policy=job.policy,
                                       ff_backend=ff_backend, warm=warm)
        if len(_SCAN_MEMO) >= _SCAN_MEMO_MAX:
            _SCAN_MEMO.pop(next(iter(_SCAN_MEMO)))
        _SCAN_MEMO[memo_key] = checkpoints
    return checkpoints[index]


def run_sample_job(job: SimJob) -> SimResult:
    """Pure job-spec worker entry: measure one checkpointed window.

    Restores the slice-opening checkpoint onto a fresh machine built
    from the job's spec/policy/backend, runs the slice's warmup budget
    (warming the measuring core's predictor, BTB, TLBs and caches
    beyond the checkpoint's warm state; zero for the anchor slice),
    then measures exactly one window.  Statistics are collected for the
    measured window only.
    """
    plan = SamplePlan.from_params(job.params)
    spec = machine_spec_from_params(job.params)
    backend = str(job.params.get("backend", "cycle"))
    checkpoint = _checkpoint_for(job, plan, spec)
    wl = resolve_workload(job.target)
    warmup, window = plan.window_span(int(job.params["window_index"]),
                                      int(job.params["total"]))

    machine = Machine.from_spec(spec, policy=job.policy, backend=backend)
    checkpoint.apply(machine)

    next_pc: Optional[int] = checkpoint.next_pc
    registers = dict(enumerate(checkpoint.registers))
    warmup_instructions = 0
    if warmup:
        warm_result = machine.run(wl.program,
                                  max_instructions=warmup,
                                  start_pc=next_pc,
                                  initial_registers=registers)
        warmup_instructions = warm_result.instructions
        if warm_result.halted_reason != "budget":
            # The program ended inside the warmup: nothing measurable
            # remains in this slice.  Surfaced via halted_reason so the
            # stitcher (and the CLI) can flag the window.
            return _window_result(job, plan, checkpoint, warm_result,
                                  machine, warmup_instructions,
                                  measured=False)
        next_pc = warm_result.next_pc
        registers = dict(enumerate(warm_result.registers))

    result = machine.run(wl.program,
                         max_instructions=window,
                         start_pc=next_pc,
                         initial_registers=registers)
    return _window_result(job, plan, checkpoint, result, machine,
                          warmup_instructions, measured=True)


def _window_result(job: SimJob, plan: SamplePlan, checkpoint: Checkpoint,
                   result, machine, warmup_instructions: int,
                   *, measured: bool) -> SimResult:
    occupancy: Dict[str, Dict[int, int]] = {}
    commit_rates: Dict[str, float] = {}
    if machine.engine is not None:
        for structure in machine.engine.all_structures():
            occupancy[structure.name] = dict(
                structure.occupancy_histogram.items())
            commit_rates[structure.name] = structure.commit_rate()
    return SimResult(
        job_key=job.key(),
        kind=job.kind,
        target=job.target,
        policy=job.policy,
        cycles=result.cycles,
        instructions=result.instructions,
        halted_reason=result.halted_reason,
        counters=dict(result.counters),
        shadow_occupancy=occupancy,
        shadow_commit_rates=commit_rates,
        details={
            "window_index": int(job.params["window_index"]),
            "start_instruction": checkpoint.instructions,
            "checkpoint_digest": checkpoint.digest(),
            "warmup_instructions": warmup_instructions,
            "measured": measured,
        },
    )


# ---------------------------------------------------------------------------
# stitching
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WindowMeasurement:
    """One measured window, as the report carries it."""

    index: int
    start_instruction: int
    instructions: int
    cycles: int
    halted_reason: str
    checkpoint_digest: str
    from_cache: bool = False

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def ok(self) -> bool:
        """A window measured its full budget (ended on the budget stop)."""
        return self.halted_reason == "budget" and self.instructions > 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "start_instruction": self.start_instruction,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "ipc": self.ipc,
            "halted_reason": self.halted_reason,
            "checkpoint_digest": self.checkpoint_digest,
            "from_cache": self.from_cache,
        }


@dataclass(frozen=True)
class SampleReport:
    """Stitched whole-program estimates from one sampled run."""

    target: str
    policy: CommitPolicy
    backend: str
    ff_backend: str
    plan: SamplePlan
    total_instructions: int
    num_intervals: int
    windows: Tuple[WindowMeasurement, ...]
    stitched_ipc: float
    stitched_cycles: int
    ipc_mean: float
    ipc_std: float
    ipc_ci95: float
    estimated_counters: Dict[str, int] = field(default_factory=dict)

    @property
    def measured_windows(self) -> int:
        return sum(1 for w in self.windows if w.ok)

    @property
    def failed_windows(self) -> Tuple[WindowMeasurement, ...]:
        return tuple(w for w in self.windows if not w.ok)

    @property
    def coverage(self) -> float:
        """Fraction of the total budget actually measured in detail."""
        measured = sum(w.instructions for w in self.windows)
        return measured / self.total_instructions

    @property
    def cached_windows(self) -> int:
        return sum(1 for w in self.windows if w.from_cache)

    @property
    def ok(self) -> bool:
        return bool(self.windows) and not self.failed_windows

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "target": self.target,
            "policy": self.policy.value,
            "backend": self.backend,
            "ff_backend": self.ff_backend,
            "plan": self.plan.to_params(),
            "total_instructions": self.total_instructions,
            "num_intervals": self.num_intervals,
            "windows": [w.to_dict() for w in self.windows],
            "measured_windows": self.measured_windows,
            "cached_windows": self.cached_windows,
            "coverage": self.coverage,
            "stitched_ipc": self.stitched_ipc,
            "stitched_cycles": self.stitched_cycles,
            "ipc_mean": self.ipc_mean,
            "ipc_std": self.ipc_std,
            "ipc_ci95": self.ipc_ci95,
            "estimated_counters": dict(self.estimated_counters),
        }

    def render_text(self) -> str:
        lines = [
            f"sampled {self.target}/{self.policy.value} "
            f"on {self.backend} (fast-forward: {self.ff_backend})",
            f"  plan: {self.plan.describe()}",
            f"  total budget: {self.total_instructions} instructions "
            f"in {self.num_intervals} slices, "
            f"{self.measured_windows}/{len(self.windows)} windows measured "
            f"({self.coverage:.1%} coverage, {self.cached_windows} cached)",
            f"  stitched IPC: {self.stitched_ipc:.4f} "
            f"± {self.ipc_ci95:.4f} (95% CI) "
            f"over ~{self.stitched_cycles} cycles",
        ]
        for w in self.windows:
            flag = "" if w.ok else f"  <-- {w.halted_reason or 'empty'}"
            lines.append(
                f"    window {w.index:>4} @ {w.start_instruction:>10}: "
                f"ipc {w.ipc:.4f} ({w.instructions} instr / "
                f"{w.cycles} cycles){flag}")
        return "\n".join(lines)


def stitch_windows(results: Sequence[SimResult], plan: SamplePlan,
                   total_instructions: int, *, target: str,
                   policy: CommitPolicy, backend: str,
                   ff_backend: str) -> SampleReport:
    """Fold per-window results into whole-program estimates.

    Estimated cycles: every measured slice costs
    ``slice_budget / ipc_k`` cycles at its own measured IPC (for the
    anchor slice the window *is* the whole slice, so its cycles count
    exactly); every unmeasured slice (and the sub-interval remainder)
    costs the mean *steady-state* IPC — the mean over measured windows
    excluding the anchor, whose start-up transient would otherwise
    drag estimates for warmed-up slices.  The error bar is the 95% CI
    of that mean, reported absolutely as ``ipc_ci95``.
    """
    if not results:
        raise SampleError("cannot stitch an empty window set")
    windows = tuple(sorted(
        (WindowMeasurement(
            index=int(r.details.get("window_index", -1)),
            start_instruction=int(r.details.get("start_instruction", 0)),
            instructions=r.instructions,
            cycles=r.cycles,
            halted_reason=r.halted_reason,
            checkpoint_digest=str(r.details.get("checkpoint_digest", "")),
            from_cache=r.from_cache,
        ) for r in results),
        key=lambda w: w.index))
    measured = [w for w in windows if w.ok]
    if not measured:
        raise SampleError(
            f"no window of {target!r} measured its full budget "
            f"(program too short for the plan?)")

    # Steady-state statistics exclude the anchor window: its start-up
    # transient is real (and counted exactly below) but it is not
    # representative of any other slice.
    steady = [w for w in measured if w.index != 0] or measured
    ipcs = [w.ipc for w in steady]
    m = len(ipcs)
    mean = sum(ipcs) / m
    variance = (sum((x - mean) ** 2 for x in ipcs) / (m - 1)) if m > 1 else 0.0
    std = math.sqrt(variance)
    ci95 = 1.96 * std / math.sqrt(m) if m > 1 else 0.0

    n = plan.num_intervals(total_instructions)
    budgets = {w.index: min(plan.interval,
                            total_instructions - w.start_instruction)
               for w in measured}
    measured_cycles = sum(budgets[w.index] / w.ipc for w in measured)
    rest = total_instructions - sum(budgets.values())
    est_cycles = measured_cycles + (rest / mean if rest > 0 else 0.0)
    stitched_ipc = total_instructions / est_cycles

    # Micro-architectural event estimates: per-instruction rates over
    # the measured windows, scaled to the whole budget.  This is the
    # whole-program leakage/MPKI story (fault counts, shadow hits,
    # cache misses) at sampling accuracy.
    measured_instructions = sum(w.instructions for w in measured)
    totals: Dict[str, int] = {}
    for r in results:
        if r.halted_reason != "budget":
            continue
        for key, value in r.counters.items():
            if isinstance(value, (int, float)) and key != "cycles":
                totals[key] = totals.get(key, 0) + value
    estimated = {
        key: int(round(value / measured_instructions * total_instructions))
        for key, value in sorted(totals.items())
    }
    estimated["cycles"] = int(round(est_cycles))

    return SampleReport(
        target=target,
        policy=policy,
        backend=backend,
        ff_backend=ff_backend,
        plan=plan,
        total_instructions=total_instructions,
        num_intervals=n,
        windows=windows,
        stitched_ipc=stitched_ipc,
        stitched_cycles=int(round(est_cycles)),
        ipc_mean=mean,
        ipc_std=std,
        ipc_ci95=ci95,
        estimated_counters=estimated,
    )


def sample_jobs(workload: Union[str, WorkloadProfile, WorkloadProgram],
                policy: CommitPolicy, plan: SamplePlan,
                total_instructions: int, *,
                spec: Optional[MachineSpec] = None,
                backend: str = "cycle", ff_backend: str = "fast",
                warm: bool = True) -> List[SimJob]:
    """The full job fan-out of one sampled run (one job per window)."""
    wl = resolve_workload(workload)
    return [
        sample_job(wl.profile.name, policy, index, plan,
                   total_instructions, spec=spec, backend=backend,
                   ff_backend=ff_backend, warm=warm)
        for index in plan.select_windows(total_instructions)
    ]


def run_sample(executor, workload,
               policy: CommitPolicy = CommitPolicy.BASELINE,
               *, plan: Optional[SamplePlan] = None,
               total_instructions: int = 1_000_000,
               spec: Optional[MachineSpec] = None,
               backend: str = "cycle", ff_backend: str = "fast",
               warm: bool = True) -> SampleReport:
    """Run one sampled simulation through an executor and stitch it."""
    plan = plan or SamplePlan()
    jobs = sample_jobs(workload, policy, plan, total_instructions,
                       spec=spec, backend=backend, ff_backend=ff_backend,
                       warm=warm)
    results = executor.run(jobs)
    return stitch_windows(results, plan, total_instructions,
                          target=jobs[0].target, policy=policy,
                          backend=backend, ff_backend=ff_backend)
