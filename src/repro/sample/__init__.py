"""Checkpointed, SimPoint-style sampled simulation.

``repro.sample`` turns one long program into an embarrassingly parallel
sweep of independent window jobs:

* :mod:`repro.sample.checkpoint` — frozen architectural state values
  with stable digests; dump on one backend, restore on the other.
* :mod:`repro.sample.plan` — the declarative :class:`SamplePlan`
  (interval / warmup / windows / window / seed) plus the fast-forward
  scan that freezes checkpoints at slice boundaries.
* :mod:`repro.sample.driver` — per-window ``sample`` jobs, the worker
  entry point, and the stitcher producing whole-program IPC/leakage
  estimates with error bars.

The public surface is :meth:`repro.api.session.Session.sample` and the
``repro sample`` CLI command.
"""

from repro.sample.checkpoint import CHECKPOINT_SCHEMA_VERSION, Checkpoint
from repro.sample.driver import (SampleReport, WindowMeasurement,
                                 run_sample, run_sample_job, sample_job,
                                 sample_jobs, stitch_windows)
from repro.sample.plan import SamplePlan, scan_checkpoints

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "Checkpoint",
    "SamplePlan",
    "SampleReport",
    "WindowMeasurement",
    "run_sample",
    "run_sample_job",
    "sample_job",
    "sample_jobs",
    "scan_checkpoints",
    "stitch_windows",
]
