"""Architectural checkpoints: freeze committed machine state, resume later.

A :class:`Checkpoint` is the value at the heart of sampled simulation
(SimPoint-style): the fast backend streams through a long program,
freezes the committed architectural state at interval boundaries, and a
detailed (or fast) machine later *restores* any checkpoint and measures
just the window that follows it.  Because both backends retire the same
architectural state instruction-for-instruction (the PR 5/6 differential
harness holds them to it), a checkpoint taken on one backend restores
bit-exactly onto the other.

Contract:

* **Committed state only.**  Registers, memory image, page mappings,
  fault/retire counters, and the resume PC.  In-flight speculative state
  never survives a budget stop (the core squashes it), so it never needs
  to be captured.
* **Warm micro-architectural state is optional.**  Predictor counters,
  BTB targets, TLB and cache contents make a restored machine *warm* —
  closer to the state a straight-line run would have — but do not affect
  architectural results.  ``warm=False`` drops them for smaller values.
* **Stable identity.**  :meth:`Checkpoint.digest` hashes the canonical
  JSON form (the :class:`~repro.spec.MachineSpec` idiom), so equal
  checkpoints hash identically across processes and platforms.
* **Pickle-safe.**  Checkpoints cross ``ProcessPoolExecutor`` process
  boundaries; everything stored is plain ints/tuples/dicts.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigError, SampleError
from repro.isa.registers import NUM_REGISTERS
from repro.memory.paging import PagePermissions, Translation

CHECKPOINT_SCHEMA_VERSION = 1

# Cache levels / TLBs captured by a warm checkpoint, in a fixed order so
# the serialized form (and therefore the digest) is deterministic.
_CACHE_LEVELS = ("l1i", "l1d", "l2", "l3")
_TLBS = ("itlb", "dtlb")


def _permission_bits(perms: PagePermissions) -> int:
    return (int(perms.readable)
            | int(perms.writable) << 1
            | int(perms.executable) << 2
            | int(perms.supervisor_only) << 3)


def _permissions_from_bits(bits: int) -> PagePermissions:
    return PagePermissions(readable=bool(bits & 1),
                           writable=bool(bits & 2),
                           executable=bool(bits & 4),
                           supervisor_only=bool(bits & 8))


@dataclasses.dataclass(frozen=True)
class Checkpoint:
    """Committed architectural state at one point of one program's run.

    Attributes:
        instructions: committed instructions when the checkpoint was taken
            (0 for the synthetic start-of-program checkpoint).
        next_pc: architectural PC of the next instruction to retire.
        registers: the 16 architectural register values.
        memory: sorted ``(word_index, value)`` pairs of the physical
            memory image (word index = ``paddr >> 3``).
        written: sorted ``(word_index, byte_mask)`` pairs preserving the
            byte-exact footprint accounting.
        pages: sorted ``(vpn, ppn, permission_bits)`` page mappings.
        faults: architectural faults retired so far.
        warm: optional micro-architectural warm state (predictor/BTB/TLB/
            cache contents); ``None`` for architectural-only checkpoints.
    """

    instructions: int
    next_pc: int
    registers: Tuple[int, ...]
    memory: Tuple[Tuple[int, int], ...]
    written: Tuple[Tuple[int, int], ...]
    pages: Tuple[Tuple[int, int, int], ...]
    faults: int = 0
    warm: Optional[Dict[str, Any]] = dataclasses.field(
        default=None, hash=False)

    def __post_init__(self) -> None:
        if len(self.registers) != NUM_REGISTERS:
            raise ConfigError(
                f"checkpoint has {len(self.registers)} registers, "
                f"the ISA has {NUM_REGISTERS}")
        if self.instructions < 0 or self.faults < 0:
            raise ConfigError("checkpoint counters must be >= 0")

    # ------------------------------------------------------------------
    # capture
    # ------------------------------------------------------------------

    @classmethod
    def capture(cls, machine, *, instructions: int, next_pc: int,
                registers: Tuple[int, ...], faults: int = 0,
                warm: bool = True) -> "Checkpoint":
        """Freeze ``machine``'s committed state.

        ``next_pc`` and ``registers`` come from the budget-stopped
        :class:`~repro.pipeline.core.RunResult` (the machine itself holds
        no architectural register file between runs); memory, page table
        and warm structures are read off the machine.
        """
        words, written = machine.hierarchy.memory.snapshot()
        pages = tuple(
            (t.vpn, t.ppn, _permission_bits(t.permissions))
            for t in machine.page_table.snapshot())
        return cls(
            instructions=instructions,
            next_pc=next_pc,
            registers=tuple(registers),
            memory=tuple(sorted(words.items())),
            written=tuple(sorted(written.items())),
            pages=pages,
            faults=faults,
            warm=cls._capture_warm(machine) if warm else None,
        )

    @classmethod
    def initial(cls, machine, program) -> "Checkpoint":
        """The synthetic checkpoint *before* the first instruction.

        Taken after workload setup (memory image applied, pages mapped)
        but before execution: zero registers, zero counters, resume at
        the program start.  Cold micro-architecture by definition.
        """
        words, written = machine.hierarchy.memory.snapshot()
        pages = tuple(
            (t.vpn, t.ppn, _permission_bits(t.permissions))
            for t in machine.page_table.snapshot())
        return cls(
            instructions=0,
            next_pc=program.code_base,
            registers=(0,) * NUM_REGISTERS,
            memory=tuple(sorted(words.items())),
            written=tuple(sorted(written.items())),
            pages=pages,
            faults=0,
            warm=None,
        )

    @staticmethod
    def _capture_warm(machine) -> Dict[str, Any]:
        warm: Dict[str, Any] = {}
        predictor = machine.predictor
        if hasattr(predictor, "snapshot"):
            warm["predictor"] = predictor.snapshot()
        warm["btb"] = sorted(machine.btb.snapshot().items())
        if machine.btb.history:
            warm["btb_history"] = machine.btb.history
        rsb_state = machine.rsb.snapshot()
        if rsb_state["stack"]:
            warm["rsb"] = rsb_state
        warm["tlbs"] = {
            name: [(t.vpn, t.ppn, _permission_bits(t.permissions))
                   for t in getattr(machine.hierarchy, name).snapshot()]
            for name in _TLBS
        }
        # Caches are stored sparsely: only non-empty sets, as
        # [set_index, [line addresses LRU-first]] pairs.
        warm["caches"] = {
            name: [[index, list(lines)]
                   for index, lines
                   in enumerate(getattr(machine.hierarchy, name).snapshot())
                   if lines]
            for name in _CACHE_LEVELS
        }
        return warm

    # ------------------------------------------------------------------
    # restore
    # ------------------------------------------------------------------

    def apply(self, machine) -> None:
        """Load this checkpoint onto ``machine`` (built to the same spec).

        After this call ``machine.run(program, start_pc=ckpt.next_pc,
        initial_registers=dict(enumerate(ckpt.registers)))`` continues
        exactly where the checkpointed run stopped, on either backend.
        """
        for vpn, ppn, bits in self.pages:
            machine.page_table.map_page(vpn, ppn, _permissions_from_bits(bits))
        machine.hierarchy.memory.restore(dict(self.memory),
                                         dict(self.written))
        if self.warm is not None:
            self._apply_warm(machine)

    def _apply_warm(self, machine) -> None:
        warm = self.warm
        predictor_state = warm.get("predictor")
        if predictor_state is not None and hasattr(machine.predictor,
                                                   "restore"):
            machine.predictor.restore(predictor_state)
        machine.btb.restore(dict(warm.get("btb", ())))
        machine.btb.restore_history(int(warm.get("btb_history", 0)))
        machine.rsb.restore(warm.get("rsb", {"stack": []}))
        for name, entries in warm.get("tlbs", {}).items():
            if name not in _TLBS:
                raise SampleError(f"unknown TLB in checkpoint: {name!r}")
            getattr(machine.hierarchy, name).restore(tuple(
                Translation(vpn, ppn, _permissions_from_bits(bits))
                for vpn, ppn, bits in entries))
        for name, sparse_sets in warm.get("caches", {}).items():
            if name not in _CACHE_LEVELS:
                raise SampleError(f"unknown cache in checkpoint: {name!r}")
            cache = getattr(machine.hierarchy, name)
            dense: List[Tuple[int, ...]] = [()] * cache.config.num_sets
            for index, lines in sparse_sets:
                dense[index] = tuple(lines)
            cache.restore(dense)

    # ------------------------------------------------------------------
    # serialization / identity
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """This checkpoint as nested JSON-representable primitives."""
        return {
            "checkpoint_schema": CHECKPOINT_SCHEMA_VERSION,
            "instructions": self.instructions,
            "next_pc": self.next_pc,
            "registers": list(self.registers),
            "memory": [list(pair) for pair in self.memory],
            "written": [list(pair) for pair in self.written],
            "pages": [list(entry) for entry in self.pages],
            "faults": self.faults,
            "warm": self.warm,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Checkpoint":
        schema = payload.get("checkpoint_schema")
        if schema != CHECKPOINT_SCHEMA_VERSION:
            raise ConfigError(
                f"unsupported checkpoint schema {schema!r} "
                f"(this build reads v{CHECKPOINT_SCHEMA_VERSION})")
        return cls(
            instructions=payload["instructions"],
            next_pc=payload["next_pc"],
            registers=tuple(payload["registers"]),
            memory=tuple((i, v) for i, v in payload["memory"]),
            written=tuple((i, m) for i, m in payload["written"]),
            pages=tuple((v, p, b) for v, p, b in payload["pages"]),
            faults=payload.get("faults", 0),
            warm=payload.get("warm"),
        )

    def digest(self) -> str:
        """Stable content hash (hex SHA-256) of the canonical JSON form.

        Identical across processes, interpreter restarts and platforms
        for equal checkpoints — the property the sampling cache relies on.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def short_digest(self) -> str:
        """The first 12 hex chars of :meth:`digest` (display use)."""
        return self.digest()[:12]

    def describe(self) -> str:
        warm = "warm" if self.warm is not None else "cold"
        return (f"checkpoint@{self.instructions} pc={self.next_pc:#x} "
                f"{warm} [{self.short_digest()}]")
