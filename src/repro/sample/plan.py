"""Sampling plans: how a long program is cut into measured windows.

A :class:`SamplePlan` describes SimPoint-style sampling declaratively:

* the program's execution is divided into fixed ``interval``-instruction
  slices;
* ``windows`` of those slices are selected (seeded, deterministic) as
  representative;
* each selected slice is measured by restoring the checkpoint at its
  boundary, running ``warmup`` instructions to warm the detailed core,
  then measuring ``window`` instructions.

The fast-forward scan (:func:`scan_checkpoints`) produces the boundary
checkpoints by streaming the program through the fast backend in
``interval``-sized budget segments, resuming each segment from the
previous one's recorded ``next_pc`` — so the scan is one continuous
execution, just with state freezes along the way.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, Iterable, Optional, Tuple, Union

from repro.core.policy import CommitPolicy
from repro.errors import ConfigError, SampleError
from repro.machine import Machine
from repro.sample.checkpoint import Checkpoint
from repro.spec import MachineSpec
from repro.workloads.generator import WorkloadProgram, generate_program
from repro.workloads.profiles import WorkloadProfile, profile_by_name

DEFAULT_INTERVAL = 50_000
DEFAULT_WARMUP = 2_000
DEFAULT_WINDOWS = 8
DEFAULT_WINDOW = 10_000


@dataclasses.dataclass(frozen=True)
class SamplePlan:
    """The declarative shape of one sampled run.

    Attributes:
        interval: instructions per slice (checkpoint spacing).
        warmup: instructions run after restore, before measurement
            starts (warms predictor/caches on the measuring backend).
        windows: how many slices to measure.
        window: measured instructions per selected slice.
        seed: window-selection seed (deterministic; part of every
            sample job's cache identity).
    """

    interval: int = DEFAULT_INTERVAL
    warmup: int = DEFAULT_WARMUP
    windows: int = DEFAULT_WINDOWS
    window: int = DEFAULT_WINDOW
    seed: int = 0

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ConfigError(f"interval must be >= 1, got {self.interval}")
        if self.warmup < 0:
            raise ConfigError(f"warmup must be >= 0, got {self.warmup}")
        if self.windows < 1:
            raise ConfigError(f"windows must be >= 1, got {self.windows}")
        if self.window < 1:
            raise ConfigError(f"window must be >= 1, got {self.window}")
        if self.warmup + self.window > self.interval:
            raise ConfigError(
                f"warmup + window ({self.warmup} + {self.window}) must fit "
                f"inside one interval ({self.interval}) so measured windows "
                f"never overlap the next slice")

    def num_intervals(self, total_instructions: int) -> int:
        """Whole slices in a ``total_instructions``-long run (>= 1)."""
        if total_instructions < 1:
            raise ConfigError("total instruction budget must be >= 1")
        return max(1, total_instructions // self.interval)

    def select_windows(self, total_instructions: int) -> Tuple[int, ...]:
        """The slice indices this plan measures, ascending.

        When the plan asks for at least as many windows as there are
        slices, every slice is measured (sampling degenerates to full
        coverage).  Otherwise slice 0 is always selected (the anchor)
        and the remaining slices are cut into ``windows - 1`` strata
        with a seeded draw picking one slice per stratum — stratified
        sampling keeps the selection spread across the whole run, where
        a plain uniform draw can clump (or miss the start-up transient
        entirely).  The selection is deterministic for (seed, interval,
        total), so every process (and every cache lookup) agrees on it.
        """
        n = self.num_intervals(total_instructions)
        if self.windows >= n:
            return tuple(range(n))
        rng = random.Random(self.seed)
        # Slice 0 is the anchor: the start-up transient (cold caches,
        # untrained predictors) is the one region guaranteed to behave
        # unlike the rest of the run, so it is always measured — whole,
        # see window_span() — rather than left to the steady-state mean.
        chosen = [0]
        rest = n - 1
        strata = self.windows - 1
        for stratum in range(strata):
            lo = 1 + stratum * rest // strata
            hi = 1 + (stratum + 1) * rest // strata
            chosen.append(rng.randrange(lo, hi))
        return tuple(chosen)

    def window_span(self, index: int,
                    total_instructions: int) -> Tuple[int, int]:
        """``(warmup, measured)`` instruction budgets for one slice.

        The anchor slice (index 0) is measured whole — no warmup and a
        window spanning the entire interval — because the start-up
        transient decays *within* the slice, so no sub-window of it
        extrapolates honestly; every later slice gets the plan's
        ``warmup`` + ``window`` treatment from its boundary checkpoint.
        """
        if index == 0:
            return 0, min(self.interval, total_instructions)
        return self.warmup, self.window

    def to_params(self) -> Dict[str, int]:
        """The plan as flat job params (all five knobs, cache-hashed)."""
        return {
            "interval": self.interval,
            "warmup": self.warmup,
            "windows": self.windows,
            "window": self.window,
            "seed": self.seed,
        }

    @classmethod
    def from_params(cls, params) -> "SamplePlan":
        return cls(interval=int(params["interval"]),
                   warmup=int(params["warmup"]),
                   windows=int(params["windows"]),
                   window=int(params["window"]),
                   seed=int(params["seed"]))

    def describe(self) -> str:
        return (f"interval={self.interval} warmup={self.warmup} "
                f"windows={self.windows}x{self.window} seed={self.seed}")


def resolve_workload(
        workload: Union[str, WorkloadProfile, WorkloadProgram],
) -> WorkloadProgram:
    """Normalize any accepted workload designator to a generated program."""
    if isinstance(workload, str):
        workload = profile_by_name(workload)
    if isinstance(workload, WorkloadProfile):
        workload = generate_program(workload)
    return workload


def scan_checkpoints(workload: Union[str, WorkloadProfile, WorkloadProgram],
                     plan: SamplePlan,
                     wanted: Iterable[int],
                     *,
                     spec: Optional[MachineSpec] = None,
                     policy: CommitPolicy = CommitPolicy.BASELINE,
                     ff_backend: str = "fast",
                     warm: bool = True) -> Dict[int, Checkpoint]:
    """Fast-forward and freeze the checkpoints at the wanted boundaries.

    ``wanted`` are slice indices: index ``k`` gets the checkpoint taken
    after exactly ``k * plan.interval`` committed instructions (``k=0``
    is the synthetic start-of-program checkpoint).  The scan runs on one
    persistent machine using the ``ff_backend`` (the fast-functional
    backend by default) and stops after the highest wanted index.

    Architectural state is backend- and policy-independent, so
    checkpoints scanned by the fast backend restore onto the cycle core
    bit-exactly whatever ``policy`` says.  *Warm* state is not: which
    lines a policy lets into the committed caches depends on the policy
    (WFB/WFC quarantine speculative fills), so the scan machine runs
    under the policy whose windows the checkpoints will seed —
    baseline-warm caches restored into a WFC window measure optimistic
    IPC.

    Raises :class:`~repro.errors.SampleError` when the program halts
    before a wanted boundary (the plan oversampled the program's
    length).
    """
    wanted = sorted(set(wanted))
    if not wanted or wanted[0] < 0:
        raise ConfigError(f"wanted slice indices must be >= 0, got {wanted}")
    wl = resolve_workload(workload)
    machine = Machine.from_spec(spec, policy=policy,
                                backend=ff_backend)
    wl.apply_memory_image(machine)

    checkpoints: Dict[int, Checkpoint] = {}
    if wanted[0] == 0:
        checkpoints[0] = Checkpoint.initial(machine, wl.program)
        wanted = wanted[1:]

    executed = 0
    faults = 0
    next_pc: Optional[int] = None
    registers: Optional[Dict[int, int]] = None
    for k in wanted:
        target = k * plan.interval
        result = machine.run(
            wl.program,
            max_instructions=target - executed,
            start_pc=next_pc,
            initial_registers=registers,
        )
        executed += result.instructions
        faults += len(result.fault_events)
        if result.halted_reason != "budget" or result.next_pc is None:
            raise SampleError(
                f"program {wl.profile.name!r} ended "
                f"({result.halted_reason!r} after {executed} instructions) "
                f"before slice {k} at {target}; shrink the plan's interval "
                f"or total budget")
        next_pc = result.next_pc
        registers = dict(enumerate(result.registers))
        checkpoints[k] = Checkpoint.capture(
            machine,
            instructions=executed,
            next_pc=next_pc,
            registers=result.registers,
            faults=faults,
            warm=warm,
        )
    return checkpoints
