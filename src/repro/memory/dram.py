"""Main memory: a sparse byte-addressable backing store with fixed latency.

Word accesses use a fixed 8-byte little-endian word size — wide enough for
the pointer and secret values the attack PoCs move around, and irrelevant
to timing (timing is per-access, not per-byte).
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ConfigError

WORD_BYTES = 8


class MainMemory:
    """Sparse physical memory.

    Reads of never-written locations return 0, like zero-filled pages.
    ``latency`` is the access cost charged by the hierarchy on an LLC miss
    (191 cycles in the paper's Table II).
    """

    def __init__(self, latency: int = 191) -> None:
        if latency < 1:
            raise ConfigError(f"memory latency must be >= 1, got {latency}")
        self.latency = latency
        self._bytes: Dict[int, int] = {}

    def read_byte(self, paddr: int) -> int:
        return self._bytes.get(paddr, 0)

    def write_byte(self, paddr: int, value: int) -> None:
        self._bytes[paddr] = value & 0xFF

    def read_word(self, paddr: int) -> int:
        """Read a little-endian 8-byte word."""
        value = 0
        for i in range(WORD_BYTES):
            value |= self._bytes.get(paddr + i, 0) << (8 * i)
        return value

    def write_word(self, paddr: int, value: int) -> None:
        """Write a little-endian 8-byte word (value taken modulo 2**64)."""
        value &= (1 << (8 * WORD_BYTES)) - 1
        for i in range(WORD_BYTES):
            self._bytes[paddr + i] = (value >> (8 * i)) & 0xFF

    def footprint(self) -> int:
        """Number of distinct bytes ever written."""
        return len(self._bytes)
