"""Main memory: a sparse byte-addressable backing store with fixed latency.

Word accesses use a fixed 8-byte little-endian word size — wide enough for
the pointer and secret values the attack PoCs move around, and irrelevant
to timing (timing is per-access, not per-byte).
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ConfigError

WORD_BYTES = 8


class MainMemory:
    """Sparse physical memory.

    Reads of never-written locations return 0, like zero-filled pages.
    ``latency`` is the access cost charged by the hierarchy on an LLC miss
    (191 cycles in the paper's Table II).

    Storage is word-granular (one dict entry per aligned 8-byte word)
    because the simulators overwhelmingly issue aligned word accesses;
    the byte API is preserved on top of it.  A per-word written-byte
    mask keeps :meth:`footprint` byte-exact.
    """

    def __init__(self, latency: int = 191) -> None:
        if latency < 1:
            raise ConfigError(f"memory latency must be >= 1, got {latency}")
        self.latency = latency
        self._words: Dict[int, int] = {}
        self._written: Dict[int, int] = {}   # word index -> byte bitmask

    def read_byte(self, paddr: int) -> int:
        return (self._words.get(paddr >> 3, 0) >> ((paddr & 7) * 8)) & 0xFF

    def write_byte(self, paddr: int, value: int) -> None:
        index, shift = paddr >> 3, (paddr & 7) * 8
        current = self._words.get(index, 0)
        self._words[index] = ((current & ~(0xFF << shift))
                              | ((value & 0xFF) << shift))
        self._written[index] = self._written.get(index, 0) | (1 << (paddr & 7))

    def read_word(self, paddr: int) -> int:
        """Read a little-endian 8-byte word."""
        if paddr & 7 == 0:
            return self._words.get(paddr >> 3, 0)
        value = 0
        for i in range(WORD_BYTES):
            value |= self.read_byte(paddr + i) << (8 * i)
        return value

    def write_word(self, paddr: int, value: int) -> None:
        """Write a little-endian 8-byte word (value taken modulo 2**64)."""
        value &= (1 << (8 * WORD_BYTES)) - 1
        if paddr & 7 == 0:
            self._words[paddr >> 3] = value
            self._written[paddr >> 3] = 0xFF
            return
        for i in range(WORD_BYTES):
            self.write_byte(paddr + i, (value >> (8 * i)) & 0xFF)

    def footprint(self) -> int:
        """Number of distinct bytes ever written."""
        return sum(mask.bit_count() for mask in self._written.values())

    # -- checkpointing ----------------------------------------------------

    def snapshot(self) -> "tuple[Dict[int, int], Dict[int, int]]":
        """``(words, written)`` copies of the backing store.

        Both dicts are keyed by aligned word index (``paddr >> 3``);
        ``written`` holds the per-word written-byte masks that keep
        :meth:`footprint` byte-exact across a restore.
        """
        return dict(self._words), dict(self._written)

    def restore(self, words: Dict[int, int], written: Dict[int, int]) -> None:
        """Replace the backing store with a :meth:`snapshot`."""
        self._words = dict(words)
        self._written = dict(written)
