"""Virtual memory: page tables, permissions, and privilege levels.

The model is deliberately flat (a single-level mapping of virtual page
number to physical page number plus permission bits) but preserves the one
property the Meltdown attack depends on: a *supervisor* page can be walked
and translated by user code — the permission violation is only detected
when the faulting load reaches commit (property P1 in the paper).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigError

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT


class PrivilegeLevel(enum.IntEnum):
    """Execution privilege of the running code."""

    USER = 0
    SUPERVISOR = 1


@dataclass(frozen=True)
class PagePermissions:
    """Permission bits attached to one page mapping."""

    readable: bool = True
    writable: bool = True
    executable: bool = True
    supervisor_only: bool = False

    def allows(self, *, write: bool, execute: bool,
               privilege: PrivilegeLevel) -> bool:
        """Whether an access of the given kind is architecturally legal."""
        if self.supervisor_only and privilege != PrivilegeLevel.SUPERVISOR:
            return False
        if execute:
            return self.executable
        if write:
            return self.writable
        return self.readable


@dataclass(frozen=True)
class Translation:
    """Result of a successful page walk."""

    vpn: int
    ppn: int
    permissions: PagePermissions

    def physical(self, vaddr: int) -> int:
        """Translate a virtual address inside this page."""
        return (self.ppn << PAGE_SHIFT) | (vaddr & (PAGE_SIZE - 1))


class PageTable:
    """A flat virtual -> physical page mapping with permission bits.

    ``walk_levels`` controls the page-walk latency charged by the memory
    hierarchy (each level costs one dependent memory access).
    """

    def __init__(self, walk_levels: int = 4) -> None:
        if walk_levels < 1:
            raise ConfigError(f"walk_levels must be >= 1, got {walk_levels}")
        self.walk_levels = walk_levels
        self._entries: Dict[int, Translation] = {}

    def map_page(self, vpn: int, ppn: Optional[int] = None,
                 permissions: Optional[PagePermissions] = None) -> Translation:
        """Install a mapping for virtual page ``vpn``.

        ``ppn`` defaults to an identity mapping; ``permissions`` default to
        full user access.  Returns the installed :class:`Translation`.
        """
        if vpn < 0:
            raise ConfigError(f"virtual page number must be >= 0, got {vpn}")
        entry = Translation(
            vpn=vpn,
            ppn=vpn if ppn is None else ppn,
            permissions=permissions or PagePermissions(),
        )
        self._entries[vpn] = entry
        return entry

    def map_range(self, start_vaddr: int, size: int,
                  permissions: Optional[PagePermissions] = None) -> None:
        """Identity-map every page overlapping [start_vaddr, start_vaddr+size)."""
        if size <= 0:
            raise ConfigError(f"size must be > 0, got {size}")
        first = start_vaddr >> PAGE_SHIFT
        last = (start_vaddr + size - 1) >> PAGE_SHIFT
        for vpn in range(first, last + 1):
            self.map_page(vpn, permissions=permissions)

    def lookup(self, vaddr: int) -> Optional[Translation]:
        """Return the translation covering ``vaddr`` or ``None`` if unmapped.

        Note: *no* permission check happens here.  Translations for
        supervisor pages are returned to user-mode walkers; legality is
        evaluated separately (and, in the pipeline, only at commit).
        """
        return self._entries.get(vaddr >> PAGE_SHIFT)

    def is_mapped(self, vaddr: int) -> bool:
        return (vaddr >> PAGE_SHIFT) in self._entries

    def mapped_pages(self) -> int:
        """Number of installed page mappings."""
        return len(self._entries)

    def snapshot(self) -> "tuple[Translation, ...]":
        """All installed translations, sorted by VPN (checkpoint dump)."""
        return tuple(self._entries[vpn] for vpn in sorted(self._entries))


def vpn_of(vaddr: int) -> int:
    """Virtual page number of an address."""
    return vaddr >> PAGE_SHIFT


def page_offset(vaddr: int) -> int:
    """Offset of an address within its page."""
    return vaddr & (PAGE_SIZE - 1)
