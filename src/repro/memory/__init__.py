"""Memory subsystem: paging, caches, TLBs, DRAM, and the full hierarchy."""

from repro.memory.cache import Cache, CacheConfig
from repro.memory.dram import MainMemory
from repro.memory.hierarchy import AccessResult, MemoryHierarchy
from repro.memory.paging import PagePermissions, PageTable, PrivilegeLevel
from repro.memory.tlb import TLB, TLBConfig

__all__ = [
    "AccessResult",
    "Cache",
    "CacheConfig",
    "MainMemory",
    "MemoryHierarchy",
    "PagePermissions",
    "PageTable",
    "PrivilegeLevel",
    "TLB",
    "TLBConfig",
]
