"""Translation lookaside buffers.

A TLB caches :class:`~repro.memory.paging.Translation` entries keyed by
virtual page number.  Like the caches it is fully inspectable (``contains``)
so attack receivers can time page accesses, and like the caches its ``fill``
is the operation SafeSpec redirects into shadow state.

Crucially for Meltdown, a TLB will happily cache the translation of a
supervisor page requested by user code — the permission bits travel with
the entry and are only *enforced* at commit time by the pipeline.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.memory.paging import Translation
from repro.statistics import StatRegistry


@dataclass(frozen=True)
class TLBConfig:
    """Geometry and timing of one TLB (modelled fully associative)."""

    name: str
    entries: int
    hit_latency: int = 1

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ConfigError(f"{self.name}: TLB needs >= 1 entry")
        if self.hit_latency < 0:
            raise ConfigError(f"{self.name}: hit latency must be >= 0")


class TLB:
    """A fully associative, LRU-replaced translation cache."""

    __slots__ = ("config", "stats", "_hits", "_misses", "_fills",
                 "_evictions", "_entries", "_capacity")

    def __init__(self, config: TLBConfig) -> None:
        self.config = config
        self.stats = StatRegistry(config.name)
        self._hits = self.stats.counter("hits")
        self._misses = self.stats.counter("misses")
        self._fills = self.stats.counter("fills")
        self._evictions = self.stats.counter("evictions")
        self._entries: "OrderedDict[int, Translation]" = OrderedDict()
        self._capacity = config.entries

    def lookup(self, vpn: int) -> Optional[Translation]:
        """Timing-path lookup: updates LRU and hit/miss statistics."""
        entry = self._entries.get(vpn)
        if entry is not None:
            self._entries.move_to_end(vpn)
            self._hits.value += 1
            return entry
        self._misses.value += 1
        return None

    def fill(self, translation: Translation) -> Optional[int]:
        """Install a translation; returns the evicted VPN if any."""
        vpn = translation.vpn
        if vpn in self._entries:
            self._entries[vpn] = translation
            self._entries.move_to_end(vpn)
            return None
        self._fills.value += 1
        victim: Optional[int] = None
        if len(self._entries) >= self._capacity:
            victim, _ = self._entries.popitem(last=False)
            self._evictions.value += 1
        self._entries[vpn] = translation
        return victim

    def contains(self, vpn: int) -> bool:
        """Non-perturbing presence check (attack receivers / tests)."""
        return vpn in self._entries

    def peek(self, vpn: int) -> Optional[Translation]:
        """Return the entry for ``vpn`` without updating LRU or statistics.

        Speculative lookups under SafeSpec use this so that mis-speculated
        paths cannot perturb even the replacement state of the real TLB.
        """
        return self._entries.get(vpn)

    def refresh(self, vpn: int) -> bool:
        """Refresh LRU recency of an entry *if present* (no insertion,
        no statistics).  Commit-time recency restoration must never
        install state — a dropped shadow fill stays lost."""
        if vpn in self._entries:
            self._entries.move_to_end(vpn)
            return True
        return False

    def invalidate(self, vpn: int) -> bool:
        """Drop the entry for ``vpn``; returns whether it was present."""
        if vpn in self._entries:
            del self._entries[vpn]
            return True
        return False

    def flush_all(self) -> None:
        self._entries.clear()

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> "tuple[Translation, ...]":
        """Resident translations, LRU-first (warm-state dump).

        Statistics are excluded, mirroring :meth:`Cache.snapshot`.
        """
        return tuple(self._entries.values())

    def restore(self, translations: "tuple[Translation, ...]") -> None:
        """Replace contents with a :meth:`snapshot` (LRU order preserved)."""
        self._entries.clear()
        for translation in translations[-self._capacity:]:
            self._entries[translation.vpn] = translation

    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    def miss_rate(self) -> float:
        total = self._hits.value + self._misses.value
        return self._misses.value / total if total else 0.0

    def __repr__(self) -> str:
        return f"TLB({self.config.name}, {self.config.entries} entries)"
