"""The full memory hierarchy: L1I/L1D, unified L2/L3, TLBs, page walker.

Accesses flow through a :class:`FillSink`, which decides where
micro-architectural state produced by the access lands:

* :class:`DirectFillSink` — the baseline processor: fills go straight into
  the real caches/TLBs at access time (the leaky behaviour Spectre and
  Meltdown exploit).
* ``ShadowFillSink`` (in :mod:`repro.core.safespec`) — SafeSpec: fills are
  redirected into shadow structures and real state is *only inspected*,
  never perturbed (not even replacement/LRU state, per Section IV-A of the
  paper: "not even the cache replacement algorithm state is affected").

The page walker issues one dependent access per page-table level through
the *data-cache path* using the same sink, mirroring the paper's
observation that "the page walker uses the load-store queue for these
accesses, and the protection introduced for the data caches ends up
protecting these structures as well".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Protocol

from repro.errors import ConfigError
from repro.memory.cache import Cache, CacheConfig
from repro.memory.dram import MainMemory
from repro.memory.paging import (PAGE_SHIFT, PageTable, PrivilegeLevel,
                                 Translation)
from repro.memory.tlb import TLB, TLBConfig
from repro.statistics import StatRegistry

# Physical region where synthetic page-table entries live; one 8-byte entry
# per (level, vpn).  Chosen far above any address the workloads touch.
PAGE_TABLE_BASE = 0x4000_0000_0000


class FillSink(Protocol):
    """Receiver for micro-architectural state produced by an access.

    ``side`` is ``"i"`` or ``"d"``.  Implementations return ``True`` from
    the lookup methods when they can satisfy the request from their own
    (shadow) state.
    """

    speculative: bool

    def lookup_line(self, side: str, line_addr: int) -> bool:
        """Whether the sink holds the cache line (shadow hit)."""
        ...

    def fill_line(self, side: str, line_addr: int) -> None:
        """Accept a newly fetched cache line."""
        ...

    def lookup_translation(self, side: str, vpn: int) -> Optional[Translation]:
        """Return a shadow-held translation for ``vpn``, if any."""
        ...

    def fill_translation(self, side: str, translation: Translation) -> None:
        """Accept a newly walked translation."""
        ...


class DirectFillSink:
    """Baseline sink: all state goes directly into the real structures."""

    speculative = False

    def __init__(self, hierarchy: "MemoryHierarchy") -> None:
        self._hierarchy = hierarchy

    def lookup_line(self, side: str, line_addr: int) -> bool:
        return False

    def fill_line(self, side: str, line_addr: int) -> None:
        self._hierarchy.install_line(side, line_addr)

    def lookup_translation(self, side: str, vpn: int) -> Optional[Translation]:
        return None

    def fill_translation(self, side: str, translation: Translation) -> None:
        self._hierarchy.install_translation(side, translation)


@dataclass(slots=True)
class AccessResult:
    """Outcome of one hierarchy access (timing + translation + fault)."""

    latency: int
    translation: Optional[Translation] = None
    fault: Optional[str] = None        # None | "unmapped" | "permission"
    hit_level: str = ""                # "shadow" | "L1" | "L2" | "L3" | "MEM"
    line_addr: int = -1
    paddr: int = -1
    tlb_hit: bool = False
    walk_latency: int = 0
    filled: bool = False               # a new line was produced by this access
    walked_lines: List[int] = field(default_factory=list)

    @property
    def cache_hit(self) -> bool:
        return self.hit_level in ("shadow", "L1")


@dataclass(frozen=True)
class HierarchyConfig:
    """Table II of the paper (Skylake-like memory system)."""

    l1i: CacheConfig = CacheConfig("L1I", 32 * 1024, 8, 64, 4)
    l1d: CacheConfig = CacheConfig("L1D", 32 * 1024, 8, 64, 4)
    l2: CacheConfig = CacheConfig("L2", 256 * 1024, 4, 64, 12)
    l3: CacheConfig = CacheConfig("L3", 2 * 1024 * 1024, 16, 64, 44)
    itlb: TLBConfig = TLBConfig("iTLB", 64, 1)
    dtlb: TLBConfig = TLBConfig("dTLB", 64, 1)
    memory_latency: int = 191

    def __post_init__(self) -> None:
        lines = {self.l1i.line_bytes, self.l1d.line_bytes,
                 self.l2.line_bytes, self.l3.line_bytes}
        if len(lines) != 1:
            raise ConfigError("all cache levels must share one line size")
        if self.memory_latency < 1:
            raise ConfigError(
                f"memory latency must be >= 1 cycle, "
                f"got {self.memory_latency}")


class MemoryHierarchy:
    """L1I/L1D + unified inclusive L2/L3 + TLBs + page walker + DRAM.

    The hierarchy never owns a default page table:
    :class:`~repro.machine.Machine` is the single owner and passes its
    table down explicitly (two independent defaults previously risked a
    machine and its hierarchy silently translating through different
    tables).  Standalone construction must supply one.
    """

    def __init__(self, config: Optional[HierarchyConfig] = None,
                 page_table: Optional[PageTable] = None) -> None:
        if page_table is None:
            raise ConfigError(
                "MemoryHierarchy requires an explicit PageTable; "
                "Machine owns the default (pass machine.page_table, or "
                "construct a PageTable yourself for standalone use)")
        self.config = config or HierarchyConfig()
        self.page_table = page_table
        self.memory = MainMemory(self.config.memory_latency)
        self.l1i = Cache(self.config.l1i)
        self.l1d = Cache(self.config.l1d)
        self.l2 = Cache(self.config.l2)
        self.l3 = Cache(self.config.l3)
        self.itlb = TLB(self.config.itlb)
        self.dtlb = TLB(self.config.dtlb)
        self.stats = StatRegistry("hierarchy")
        self._walks = self.stats.counter("page_walks")
        self._direct_sink = DirectFillSink(self)

    # ------------------------------------------------------------------
    # component helpers
    # ------------------------------------------------------------------

    @property
    def line_bytes(self) -> int:
        return self.config.l1d.line_bytes

    def _l1(self, side: str) -> Cache:
        if side == "i":
            return self.l1i
        if side == "d":
            return self.l1d
        raise ConfigError(f"side must be 'i' or 'd', got {side!r}")

    def _tlb(self, side: str) -> TLB:
        return self.itlb if side == "i" else self.dtlb

    def default_sink(self) -> DirectFillSink:
        """The baseline (leaky) fill sink."""
        return self._direct_sink

    # ------------------------------------------------------------------
    # committed-state installation (used by the direct sink and by the
    # SafeSpec engine when shadow state commits)
    # ------------------------------------------------------------------

    def install_line(self, side: str, line_addr: int) -> None:
        """Install a line into L1(side) + L2 + L3 (inclusive hierarchy)."""
        self._l1(side).fill(line_addr)
        self.l2.fill(line_addr)
        self.l3.fill(line_addr)

    def install_translation(self, side: str, translation: Translation) -> None:
        """Install a translation into the real TLB."""
        self._tlb(side).fill(translation)

    def refresh_committed_translation(self, side: str, vaddr: int) -> None:
        """Refresh TLB recency for a *committing* access.

        Speculative lookups peek without perturbing LRU state; once the
        instruction commits its access is architectural, so recency must
        be restored exactly as a baseline lookup would have.  Refresh
        never *installs*: an entry whose shadow fill was dropped stays
        lost, as the paper specifies for full shadow structures.
        """
        self._tlb(side).refresh(vaddr >> PAGE_SHIFT)

    def refresh_line_recency(self, side: str, line_addr: int) -> None:
        """Refresh cache LRU recency of a line in whichever committed
        levels currently hold it (no installation)."""
        (self.l1i if side == "i" else self.l1d).refresh(line_addr)
        self.l2.refresh(line_addr)
        self.l3.refresh(line_addr)

    def refresh_walk_lines(self, vaddr: int) -> None:
        """Refresh cache recency of the page-table lines a committing
        access's page walk read (they went through the d-cache path)."""
        vpn = vaddr >> PAGE_SHIFT
        for level in range(self.page_table.walk_levels):
            pte_paddr = self._page_table_entry_paddr(level, vpn)
            self.refresh_line_recency("d", self.l1d.line_address(pte_paddr))

    # ------------------------------------------------------------------
    # non-perturbing presence checks (speculative path + attack receivers)
    # ------------------------------------------------------------------

    def committed_hit_level(self, side: str, paddr: int) -> Optional[str]:
        """Deepest-priority level holding the line, without LRU update."""
        l1 = self._l1(side)
        line = l1.line_address(paddr)
        if l1.contains(line):
            return "L1"
        if self.l2.contains(line):
            return "L2"
        if self.l3.contains(line):
            return "L3"
        return None

    def level_latency(self, level: str) -> int:
        """Hit latency of a named level ('L1'/'L2'/'L3'/'MEM'/'shadow').

        Shadow hits are charged the L1 hit latency, the paper's
        conservative assumption (Section VI-A).
        """
        if level in ("L1", "shadow"):
            return self.config.l1d.hit_latency
        if level == "L2":
            return self.config.l2.hit_latency
        if level == "L3":
            return self.config.l3.hit_latency
        if level == "MEM":
            return self.config.memory_latency
        raise ConfigError(f"unknown level {level!r}")

    # ------------------------------------------------------------------
    # page walking
    # ------------------------------------------------------------------

    def _page_table_entry_paddr(self, level: int, vpn: int) -> int:
        """Synthetic physical address of the page-table entry for
        (walk level, vpn) — gives walker accesses realistic locality."""
        return PAGE_TABLE_BASE + (level << 36) + (vpn >> (9 * level)) * 8

    def _walk(self, side: str, vaddr: int, sink: FillSink,
              result: AccessResult) -> Optional[Translation]:
        """Walk the page table, charging one d-cache-path access per level.

        Page-table lines fill through the *sink* (shadowed under SafeSpec).
        Returns the translation, or None when the page is unmapped (the
        walk still costs its full latency in that case).
        """
        self._walks.increment()
        vpn = vaddr >> PAGE_SHIFT
        walk_latency = 0
        for level in range(self.page_table.walk_levels):
            pte_paddr = self._page_table_entry_paddr(level, vpn)
            line = self.l1d.line_address(pte_paddr)
            level_name = self._lookup_line_level("d", line, sink)
            walk_latency += self.level_latency(level_name)
            if level_name == "MEM":
                sink.fill_line("d", line)
                result.walked_lines.append(line)
        result.walk_latency = walk_latency
        translation = self.page_table.lookup(vaddr)
        if translation is not None:
            sink.fill_translation(side, translation)
        return translation

    def _lookup_line_level(self, side: str, line_addr: int,
                           sink: FillSink) -> str:
        """Where a line currently lives, honouring the sink's shadow state.

        Speculative sinks must not perturb real replacement state, so the
        committed levels are checked with non-perturbing ``contains``;
        the baseline sink uses the normal ``touch`` path.
        """
        if sink.lookup_line(side, line_addr):
            return "shadow"
        if sink.speculative:
            level = self.committed_hit_level(side, line_addr)
            return level if level is not None else "MEM"
        l1 = self._l1(side)
        if l1.touch(line_addr):
            return "L1"
        if self.l2.touch(line_addr):
            return "L2"
        if self.l3.touch(line_addr):
            return "L3"
        return "MEM"

    # ------------------------------------------------------------------
    # translation (shared by data and instruction paths)
    # ------------------------------------------------------------------

    def translate(self, side: str, vaddr: int, sink: FillSink,
                  result: AccessResult) -> Optional[Translation]:
        """TLB lookup, walking on a miss.  Latency accrues into ``result``."""
        vpn = vaddr >> PAGE_SHIFT
        tlb = self._tlb(side)
        shadow_entry = sink.lookup_translation(side, vpn)
        if shadow_entry is not None:
            result.latency += tlb.config.hit_latency
            result.tlb_hit = True
            return shadow_entry
        if sink.speculative:
            entry = tlb.peek(vpn)
            if entry is not None:
                result.latency += tlb.config.hit_latency
                result.tlb_hit = True
                return entry
        else:
            entry = tlb.lookup(vpn)
            if entry is not None:
                result.latency += tlb.config.hit_latency
                result.tlb_hit = True
                return entry
        translation = self._walk(side, vaddr, sink, result)
        result.latency += result.walk_latency
        return translation

    # ------------------------------------------------------------------
    # the two access front doors
    # ------------------------------------------------------------------

    def data_access(self, vaddr: int, *, is_write: bool,
                    privilege: PrivilegeLevel,
                    sink: Optional[FillSink] = None) -> AccessResult:
        """One data-side access: translate + cache lookup + fill-on-miss.

        Permission violations do NOT abort the access (paper property P1):
        the data path completes, caches/TLBs are affected, and the fault is
        reported in ``result.fault`` for the pipeline to raise at commit.
        """
        sink = sink or self._direct_sink
        result = AccessResult(latency=0)
        translation = self.translate("d", vaddr, sink, result)
        if translation is None:
            result.fault = "unmapped"
            result.hit_level = "MEM"
            return result
        result.translation = translation
        if not translation.permissions.allows(
                write=is_write, execute=False, privilege=privilege):
            result.fault = "permission"
        paddr = translation.physical(vaddr)
        result.paddr = paddr
        line = self.l1d.line_address(paddr)
        result.line_addr = line
        level = self._lookup_line_level("d", line, sink)
        result.hit_level = "shadow" if level == "shadow" else level
        result.latency += self.level_latency(level)
        if level == "MEM" or (sink.speculative and level in ("L2", "L3")):
            # A miss (or, speculatively, a line that would be promoted into
            # L1) produces new L1-visible state: route it through the sink.
            sink.fill_line("d", line)
            result.filled = True
        elif level in ("L2", "L3"):
            # Baseline promotion into L1 on an inner-level hit.
            self._l1("d").fill(line)
            result.filled = True
        return result

    def fetch_access(self, vaddr: int, *, privilege: PrivilegeLevel,
                     sink: Optional[FillSink] = None) -> AccessResult:
        """One instruction-fetch access (iTLB + L1I path)."""
        sink = sink or self._direct_sink
        result = AccessResult(latency=0)
        translation = self.translate("i", vaddr, sink, result)
        if translation is None:
            result.fault = "unmapped"
            result.hit_level = "MEM"
            return result
        result.translation = translation
        if not translation.permissions.allows(
                write=False, execute=True, privilege=privilege):
            result.fault = "permission"
        paddr = translation.physical(vaddr)
        result.paddr = paddr
        line = self.l1i.line_address(paddr)
        result.line_addr = line
        level = self._lookup_line_level("i", line, sink)
        result.hit_level = "shadow" if level == "shadow" else level
        result.latency += self.level_latency(level)
        if level == "MEM" or (sink.speculative and level in ("L2", "L3")):
            sink.fill_line("i", line)
            result.filled = True
        elif level in ("L2", "L3"):
            self._l1("i").fill(line)
            result.filled = True
        return result

    # ------------------------------------------------------------------
    # store commit (TSO: stores update memory state only at commit)
    # ------------------------------------------------------------------

    def commit_store(self, paddr: int, value: int) -> None:
        """Architecturally perform a store: write memory, install the line
        (write-allocate) into the committed hierarchy."""
        self.memory.write_word(paddr, value)
        self.install_line("d", self.l1d.line_address(paddr))

    # ------------------------------------------------------------------
    # attacker conveniences
    # ------------------------------------------------------------------

    def clflush(self, paddr: int) -> None:
        """Flush a line from every level (the x86 ``clflush``)."""
        line = self.l1d.line_address(paddr)
        self.l1d.flush_line(line)
        self.l1i.flush_line(line)
        self.l2.flush_line(line)
        self.l3.flush_line(line)

    def probe_data_latency(self, vaddr: int) -> int:
        """Latency an attacker's timed *committed* load would observe now.

        Non-perturbing — used by receivers to model the timing loop of
        flush+reload without disturbing the state being measured.
        """
        translation = self.page_table.lookup(vaddr)
        if translation is None:
            return self.config.memory_latency
        latency = self.probe_translation_latency("d", vaddr)
        paddr = translation.physical(vaddr)
        level = self.committed_hit_level("d", paddr)
        return latency + self.level_latency(level if level else "MEM")

    def probe_fetch_latency(self, vaddr: int) -> int:
        """Latency a committed, timed instruction fetch at ``vaddr`` would
        observe now (the i-cache variant's receiver measurement)."""
        translation = self.page_table.lookup(vaddr)
        if translation is None:
            return self.config.memory_latency
        latency = self.probe_translation_latency("i", vaddr)
        paddr = translation.physical(vaddr)
        level = self.committed_hit_level("i", paddr)
        return latency + self.level_latency(level if level else "MEM")

    def probe_translation_latency(self, side: str, vaddr: int) -> int:
        """Translation latency a committed access would observe now.

        On a TLB hit this is the TLB hit latency; on a miss it is the sum
        of per-level page-walk accesses at the walked lines' *current*
        committed cache levels.  This is the measurement the TLB-variant
        receivers use to detect a speculatively installed translation.
        """
        tlb = self._tlb(side)
        if tlb.contains(vaddr >> PAGE_SHIFT):
            return tlb.config.hit_latency
        vpn = vaddr >> PAGE_SHIFT
        latency = 0
        for level in range(self.page_table.walk_levels):
            pte_paddr = self._page_table_entry_paddr(level, vpn)
            line = self.l1d.line_address(pte_paddr)
            hit_level = self.committed_hit_level("d", line)
            latency += self.level_latency(hit_level if hit_level else "MEM")
        return latency
