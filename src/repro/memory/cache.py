"""Set-associative cache model with true-LRU replacement.

The cache stores *line presence*, not data — data lives in the backing
:class:`~repro.memory.dram.MainMemory`.  That is sufficient for both timing
(hit/miss latency) and the side-channel experiments (flush+reload and
prime+probe observe presence, not contents).

Design notes mapping to the paper:

* ``fill`` is the leaky operation SafeSpec intercepts: in the baseline it
  is called during speculative execution, in SafeSpec only when shadow
  state is committed.
* ``flush_line`` models ``clflush`` (paper Section IV: "with the
  availability of instructions such as clflush on x86, an attacker is able
  to evict data").
* ``probe``/``contains`` are non-perturbing inspection used by the attack
  receivers and by tests; ``touch`` is the timing-path access that updates
  replacement state.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ConfigError
from repro.statistics import StatRegistry


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    name: str
    size_bytes: int
    associativity: int
    line_bytes: int = 64
    hit_latency: int = 4

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.line_bytes):
            raise ConfigError(
                f"{self.name}: line size must be a power of two, "
                f"got {self.line_bytes}")
        if self.size_bytes <= 0 or self.size_bytes % self.line_bytes:
            raise ConfigError(
                f"{self.name}: size {self.size_bytes} not a positive "
                f"multiple of the line size {self.line_bytes}")
        lines = self.size_bytes // self.line_bytes
        if self.associativity <= 0:
            raise ConfigError(
                f"{self.name}: associativity must be >= 1, "
                f"got {self.associativity}")
        if lines % self.associativity:
            raise ConfigError(
                f"{self.name}: {lines} lines not divisible by "
                f"associativity {self.associativity}")
        if not _is_power_of_two(lines // self.associativity):
            raise ConfigError(f"{self.name}: set count must be a power of two")
        if self.hit_latency < 1:
            raise ConfigError(f"{self.name}: hit latency must be >= 1")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // self.line_bytes // self.associativity

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes


class Cache:
    """One set-associative cache level with true-LRU replacement.

    Addresses handed to the cache are *physical* addresses; the caller is
    responsible for translation.  All methods operate on line granularity.
    """

    __slots__ = ("config", "stats", "_hits", "_misses", "_fills",
                 "_evictions", "_flushes", "_sets", "_line_mask",
                 "_set_shift", "_set_mask", "_associativity")

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.stats = StatRegistry(config.name)
        self._hits = self.stats.counter("hits")
        self._misses = self.stats.counter("misses")
        self._fills = self.stats.counter("fills")
        self._evictions = self.stats.counter("evictions")
        self._flushes = self.stats.counter("flushes")
        # Precomputed indexing: line size and set count are powers of two
        # (enforced by CacheConfig), so line/set extraction is mask+shift.
        self._line_mask = ~(config.line_bytes - 1)
        self._set_shift = config.line_bytes.bit_length() - 1
        self._set_mask = config.num_sets - 1
        self._associativity = config.associativity
        # One OrderedDict per set: line_addr -> True, LRU order = insertion
        # order with move_to_end on touch.
        self._sets: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(config.num_sets)
        ]

    # -- address helpers -------------------------------------------------

    def line_address(self, addr: int) -> int:
        """Address of the line containing ``addr``."""
        return addr & self._line_mask

    def set_index(self, addr: int) -> int:
        """Set index selected by ``addr``."""
        return (addr >> self._set_shift) & self._set_mask

    # -- timing-path operations ------------------------------------------

    def touch(self, addr: int) -> bool:
        """Look up ``addr``; update LRU on hit.  Returns hit/miss.

        This is the normal access path: it perturbs replacement state and
        counts into hit/miss statistics.  It does *not* fill on miss — the
        hierarchy (or SafeSpec) decides where fills go.
        """
        line = addr & self._line_mask
        cache_set = self._sets[(addr >> self._set_shift) & self._set_mask]
        if line in cache_set:
            cache_set.move_to_end(line)
            self._hits.value += 1
            return True
        self._misses.value += 1
        return False

    def fill(self, addr: int) -> Optional[int]:
        """Install the line containing ``addr``.

        Returns the evicted line address when the set was full, else
        ``None``.  Filling a line that is already present just refreshes
        its LRU position.
        """
        line = addr & self._line_mask
        cache_set = self._sets[(addr >> self._set_shift) & self._set_mask]
        if line in cache_set:
            cache_set.move_to_end(line)
            return None
        self._fills.value += 1
        victim: Optional[int] = None
        if len(cache_set) >= self._associativity:
            victim, _ = cache_set.popitem(last=False)
            self._evictions.value += 1
        cache_set[line] = True
        return victim

    def refresh(self, addr: int) -> bool:
        """Refresh LRU recency of the line *if present* — no installation,
        no statistics (commit-time recency restoration).  Returns whether
        the line was present, so callers can fold a presence check and
        the recency update into one operation."""
        line = addr & self._line_mask
        cache_set = self._sets[(addr >> self._set_shift) & self._set_mask]
        if line in cache_set:
            cache_set.move_to_end(line)
            return True
        return False

    # -- non-perturbing inspection ----------------------------------------

    def contains(self, addr: int) -> bool:
        """Whether the line holding ``addr`` is present (no LRU update)."""
        return (addr & self._line_mask) in \
            self._sets[(addr >> self._set_shift) & self._set_mask]

    def probe_set(self, addr: int) -> Tuple[int, ...]:
        """Resident line addresses of the set selected by ``addr``
        (LRU-first order), without perturbing state."""
        return tuple(self._sets[self.set_index(addr)])

    def occupancy(self) -> int:
        """Total number of resident lines."""
        return sum(len(s) for s in self._sets)

    # -- invalidation ------------------------------------------------------

    def flush_line(self, addr: int) -> bool:
        """Evict the line containing ``addr`` (clflush).  Returns whether
        the line was present."""
        line = self.line_address(addr)
        cache_set = self._sets[self.set_index(addr)]
        if line in cache_set:
            del cache_set[line]
            self._flushes.increment()
            return True
        return False

    def flush_all(self) -> None:
        """Invalidate the entire cache."""
        for cache_set in self._sets:
            cache_set.clear()

    # -- checkpointing ------------------------------------------------------

    def snapshot(self) -> List[Tuple[int, ...]]:
        """Resident line addresses per set, LRU-first (warm-state dump).

        Statistics are deliberately excluded: a restored cache is warm but
        starts counting from zero, like a measurement window should.
        """
        return [tuple(cache_set) for cache_set in self._sets]

    def restore(self, sets: List[Tuple[int, ...]]) -> None:
        """Replace contents with a :meth:`snapshot` (LRU order preserved)."""
        if len(sets) != len(self._sets):
            raise ConfigError(
                f"{self.config.name}: snapshot has {len(sets)} sets, "
                f"cache has {len(self._sets)}")
        for cache_set, lines in zip(self._sets, sets):
            cache_set.clear()
            for line in lines:
                cache_set[line] = True

    # -- statistics ---------------------------------------------------------

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def accesses(self) -> int:
        return self._hits.value + self._misses.value

    def miss_rate(self) -> float:
        total = self.accesses
        return self._misses.value / total if total else 0.0

    def __repr__(self) -> str:
        cfg = self.config
        return (f"Cache({cfg.name}, {cfg.size_bytes // 1024}KB, "
                f"{cfg.associativity}-way, {cfg.num_sets} sets)")
