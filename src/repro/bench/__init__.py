"""Performance benchmarking: timed simulator runs and regression gating.

The bench subsystem answers one question continuously: *how fast is the
cycle loop, and did a change slow it down?*  It has two halves:

* :mod:`repro.bench.harness` — runs a fixed set of simulation specs
  (deterministic :class:`~repro.exec.job.SimJob` keys from
  :mod:`repro.api`) under wall-clock timing with warmup and repeats, and
  emits a schema-versioned ``BENCH_<rev>.json`` payload.
* :mod:`repro.bench.compare` — compares a payload against a committed
  baseline (``benchmarks/baseline.json``) and flags slowdowns beyond a
  threshold; the CI ``bench-smoke`` job fails on >10% regressions.

Scores are normalised by a pure-Python calibration spin so the gate
tracks simulator efficiency (simulated cycles per unit of interpreter
work) rather than raw host speed.
"""

from repro.bench.compare import (ComparisonReport,
                                 annotate_calibration_drift,
                                 backend_speedups, compare_payloads,
                                 render_calibration_drift,
                                 render_speedups)
from repro.bench.harness import (BENCH_SCHEMA_VERSION, BenchHarness,
                                 BenchSpec, FULL_SPECS, QUICK_SPECS,
                                 payload_fingerprint, with_backend)
from repro.bench.sampled import render_sampled_rows, sampled_roundtrip
from repro.bench.service import render_service_rows, service_roundtrip

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchHarness",
    "BenchSpec",
    "ComparisonReport",
    "FULL_SPECS",
    "QUICK_SPECS",
    "annotate_calibration_drift",
    "backend_speedups",
    "compare_payloads",
    "payload_fingerprint",
    "render_calibration_drift",
    "render_sampled_rows",
    "render_service_rows",
    "render_speedups",
    "sampled_roundtrip",
    "service_roundtrip",
    "with_backend",
]
