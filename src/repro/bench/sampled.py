"""Sampled-vs-full benchmark row: what sampling buys in wall-clock.

One sampled row answers the question the sample subsystem exists for:
*how much faster is a stitched estimate than simulating the whole
budget, and how close does it land?*  It times the same (benchmark,
policy, budget) twice:

* **full** — every instruction through the detailed backend;
* **sampled** — the same budget through
  :func:`repro.sample.driver.run_sample`: one fast-forward scan plus
  the plan's measured windows, stitched back together.

Both runs go through an uncached executor, so the row measures
simulation cost, not corpus hits.  Rows land under the ``sampled`` key
of the bench payload, separate from the gated ``results`` rows (the
row's wall-clock depends on the sampling plan, not just the cycle loop
the gate protects).
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

from repro.core.policy import CommitPolicy
from repro.exec.cache import NullCache
from repro.exec.executor import make_executor
from repro.sample.driver import run_sample
from repro.sample.plan import SamplePlan
from repro.workloads.suite import run_workload

# The default sampled-row shape: a budget long enough that sampling has
# room to win (8 slices), small enough that the full run stays
# seconds-scale in CI.  The stitched-vs-full gap scales *down* with
# longer budgets (the anchor slice amortises), so this is the
# pessimistic end of the accuracy story.
DEFAULT_BENCHMARK = "mcf"
DEFAULT_POLICY = CommitPolicy.BASELINE
DEFAULT_INSTRUCTIONS = 200_000
DEFAULT_PLAN = SamplePlan(interval=25_000, warmup=2_000, windows=4,
                          window=5_000)


def sampled_roundtrip(benchmark: str = DEFAULT_BENCHMARK,
                      policy: CommitPolicy = DEFAULT_POLICY,
                      instructions: int = DEFAULT_INSTRUCTIONS,
                      plan: Optional[SamplePlan] = None,
                      backend: str = "cycle",
                      ff_backend: str = "fast",
                      jobs: int = 1) -> Dict[str, Any]:
    """Time one sampled-vs-full pair; returns the row.

    ``backend`` is the detailed (measured) backend for both runs;
    ``jobs`` fans the window batch out the way ``repro sample --jobs``
    would (the full run is inherently serial either way).
    """
    plan = plan or DEFAULT_PLAN

    start = time.perf_counter()
    full = run_workload(benchmark, policy, instructions=instructions,
                        backend=backend)
    full_s = time.perf_counter() - start
    full_ipc = full.ipc

    executor = make_executor(workers=jobs, cache=NullCache())
    start = time.perf_counter()
    report = run_sample(executor, benchmark, policy, plan=plan,
                        total_instructions=instructions,
                        backend=backend, ff_backend=ff_backend)
    sampled_s = time.perf_counter() - start

    rel_err = (abs(report.stitched_ipc - full_ipc) / full_ipc
               if full_ipc else 0.0)
    return {
        "benchmark": benchmark,
        "policy": policy.value,
        "instructions": instructions,
        "backend": backend,
        "ff_backend": ff_backend,
        "plan": plan.to_params(),
        "jobs": jobs,
        "windows_measured": report.measured_windows,
        "coverage": round(report.coverage, 4),
        "full_s": round(full_s, 6),
        "full_ipc": round(full_ipc, 6),
        "sampled_s": round(sampled_s, 6),
        "stitched_ipc": round(report.stitched_ipc, 6),
        "ipc_rel_err": round(rel_err, 6),
        # The headline number: wall-clock bought by sampling.
        "speedup": round(full_s / max(sampled_s, 1e-9), 2),
    }


def render_sampled_rows(rows) -> str:
    lines = ["sampled vs full (same budget, same detailed backend):"]
    for row in rows:
        lines.append(
            f"  {row['benchmark']}/{row['policy']}@{row['backend']} "
            f"x{row['instructions']}: full {row['full_s']:.2f}s "
            f"(ipc {row['full_ipc']:.4f}) -> sampled "
            f"{row['sampled_s']:.2f}s (ipc {row['stitched_ipc']:.4f}, "
            f"err {row['ipc_rel_err']:.2%}), {row['speedup']:.1f}x")
    return "\n".join(lines)
