"""Baseline comparison: flag benches that got slower than allowed.

The committed ``benchmarks/baseline.json`` is a full harness payload.
Comparison uses each bench's ``normalized_score`` (cycles/sec divided by
the host calibration spin) so a faster or slower CI machine moves the
numerator and denominator together; raw ``cycles_per_sec`` is the
fallback when either payload predates calibration.

A bench regresses when ``current/baseline < 1 - threshold``; the default
threshold (10%) is the CI gate.  Benches present on only one side are
reported but never fail the gate — adding a bench must not break CI.
Only cycle-backend rows are speed-gated: fast-backend wall times are
milliseconds-scale and noise-dominated, and their performance contract
is the dedicated speedup gate (:func:`backend_speedups` plus the CLI's
``--min-speedup``) rather than this row-by-row comparison.

The determinism fields are cross-checked before any score is trusted:

* a changed ``job_key`` means the baseline describes a *different*
  simulation (a spec or schema change) — the bench is marked stale,
  excluded from score gating, and reported so the baseline gets
  refreshed;
* a changed simulated ``cycles`` count under an *unchanged* job key
  means simulator semantics drifted without a schema bump — that is a
  correctness failure and fails the gate regardless of speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

DEFAULT_THRESHOLD = 0.10


@dataclass
class BenchDelta:
    """One bench's current-vs-baseline comparison."""

    name: str
    metric: str
    baseline: float
    current: float
    ratio: float                      # current / baseline (higher = faster)
    regression: bool
    stale: bool = False               # baseline is for a different job
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        if self.stale:
            verdict = "STALE BASELINE"
        elif self.regression:
            verdict = "REGRESSION"
        else:
            verdict = "ok"
        line = (f"{self.name:28s} {self.baseline:12.1f} -> "
                f"{self.current:12.1f}  ({self.ratio:5.2f}x)  {verdict}")
        for note in self.notes:
            line += f"\n    note: {note}"
        return line


@dataclass
class ComparisonReport:
    """The comparator's verdict over a whole payload."""

    metric: str
    threshold: float
    deltas: List[BenchDelta] = field(default_factory=list)
    only_in_baseline: List[str] = field(default_factory=list)
    only_in_current: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[BenchDelta]:
        return [d for d in self.deltas if d.regression]

    @property
    def passed(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = [f"bench comparison ({self.metric}, "
                 f"threshold {self.threshold:.0%})"]
        lines.extend(delta.render() for delta in self.deltas)
        if self.only_in_baseline:
            lines.append("only in baseline (not run): "
                         + ", ".join(self.only_in_baseline))
        if self.only_in_current:
            lines.append("only in current (no baseline): "
                         + ", ".join(self.only_in_current))
        lines.append(
            f"verdict: {'PASS' if self.passed else 'FAIL'} "
            f"({len(self.regressions)} regression(s) / "
            f"{len(self.deltas)} compared)")
        return "\n".join(lines)


def _pick_metric(current: Dict[str, Any], baseline: Dict[str, Any]) -> str:
    def has_normalized(payload: Dict[str, Any]) -> bool:
        rows = payload.get("results", [])
        return bool(rows) and all("normalized_score" in row for row in rows)

    if has_normalized(current) and has_normalized(baseline):
        return "normalized_score"
    return "cycles_per_sec"


def backend_speedups(current: Dict[str, Any],
                     baseline: Optional[Dict[str, Any]] = None,
                     reference_backend: str = "cycle"
                     ) -> Dict[str, Any]:
    """Pair every non-reference-backend row with its cycle-core twin.

    Rows pair on (benchmark, policy, instructions, machine_spec_digest).
    The reference row is taken from ``current`` when present, falling
    back to ``baseline`` (the committed snapshot) — so
    ``repro bench --backend fast`` reports its speedup against the
    committed cycle scores without re-timing the cycle core.
    Speedups divide ``normalized_score`` (host-calibrated cycles/sec),
    which is what makes the cross-payload fallback meaningful.

    Returns ``{"reference": ..., "pairs": [...], "geomean": g,
    "min": m}`` with an empty ``pairs`` list when nothing pairs up.
    """
    def key(row: Dict[str, Any]) -> tuple:
        return (row.get("benchmark"), row.get("policy"),
                row.get("instructions"), row.get("machine_spec_digest"))

    def backend_of(row: Dict[str, Any]) -> str:
        return str(row.get("backend", reference_backend))

    references: Dict[tuple, tuple] = {}
    for source, payload in (("baseline", baseline), ("current", current)):
        for row in (payload or {}).get("results", []):
            if backend_of(row) == reference_backend \
                    and "normalized_score" in row:
                references[key(row)] = (source, row)

    pairs: List[Dict[str, Any]] = []
    for row in current.get("results", []):
        if backend_of(row) == reference_backend:
            continue
        ref = references.get(key(row))
        if ref is None or not float(ref[1]["normalized_score"]):
            continue
        source, ref_row = ref
        speedup = (float(row["normalized_score"])
                   / float(ref_row["normalized_score"]))
        pairs.append({
            "name": row["name"],
            "backend": backend_of(row),
            "reference_name": ref_row["name"],
            "reference_source": source,
            "reference_score": float(ref_row["normalized_score"]),
            "score": float(row["normalized_score"]),
            "speedup": round(speedup, 2),
        })
    report: Dict[str, Any] = {"reference": reference_backend,
                              "pairs": pairs}
    if pairs:
        speedups = [pair["speedup"] for pair in pairs]
        product = 1.0
        for value in speedups:
            product *= value
        report["geomean"] = round(product ** (1.0 / len(speedups)), 2)
        report["min"] = min(speedups)
    return report


def annotate_calibration_drift(current: Dict[str, Any],
                               baseline: Optional[Dict[str, Any]],
                               threshold: float = DEFAULT_THRESHOLD
                               ) -> Dict[str, Any]:
    """Flag host-calibration drift against the committed baseline.

    ``normalized_score`` trends are only comparable across runs when
    the calibration spin (kloops/sec) describes comparable hosts: a
    drifted host moves every normalized score even though the simulator
    did not change.  This annotates ``current`` *in place* — so the
    flags land in the written ``BENCH_<rev>.json`` and ride into the
    telemetry store — and returns a report for the CLI warning:

    * ``current["calibration"]["drift_vs_baseline"]`` — signed fraction
      (``current/baseline - 1``), plus ``drifted`` when ``abs`` exceeds
      ``threshold``;
    * each result row gains ``calibration_drift`` / a
      ``calibration_drifted`` flag, marking its normalized score as
      cross-run-comparable or not.
    """
    report: Dict[str, Any] = {"checked": False, "drifted": False,
                              "threshold": threshold}
    calibration = current.get("calibration") or {}
    current_kloops = float(calibration.get("kloops_per_sec") or 0.0)
    baseline_kloops = float(((baseline or {}).get("calibration") or {})
                            .get("kloops_per_sec") or 0.0)
    if not current_kloops or not baseline_kloops:
        return report
    drift = current_kloops / baseline_kloops - 1.0
    drifted = abs(drift) > threshold
    report.update(checked=True, drifted=drifted,
                  drift=round(drift, 4),
                  current_kloops_per_sec=current_kloops,
                  baseline_kloops_per_sec=baseline_kloops)
    calibration["drift_vs_baseline"] = round(drift, 4)
    calibration["drifted"] = drifted
    for row in current.get("results", []):
        row["calibration_drift"] = round(drift, 4)
        row["calibration_drifted"] = drifted
    return report


def render_calibration_drift(report: Dict[str, Any]) -> str:
    """One warning line for an :func:`annotate_calibration_drift` report."""
    if not report.get("checked"):
        return "calibration drift: no baseline calibration to compare"
    verdict = ("DRIFTED — normalized-score trends vs the baseline host "
               "are suspect" if report["drifted"] else "ok")
    return (f"calibration drift vs baseline: {report['drift']:+.1%} "
            f"({report['current_kloops_per_sec']:,.0f} vs "
            f"{report['baseline_kloops_per_sec']:,.0f} kloops/s, "
            f"threshold {report['threshold']:.0%}): {verdict}")


def render_speedups(report: Dict[str, Any]) -> str:
    """Human-readable lines for a :func:`backend_speedups` report."""
    lines = [f"backend speedup vs {report['reference']} "
             f"(normalized_score)"]
    for pair in report["pairs"]:
        lines.append(
            f"{pair['name']:34s} {pair['reference_score']:10.1f} -> "
            f"{pair['score']:10.1f}  ({pair['speedup']:5.2f}x vs "
            f"{pair['reference_source']})")
    if report["pairs"]:
        lines.append(f"geomean {report['geomean']:.2f}x, "
                     f"min {report['min']:.2f}x over "
                     f"{len(report['pairs'])} pair(s)")
    else:
        lines.append("no backend pairs to compare")
    return "\n".join(lines)


def compare_payloads(current: Dict[str, Any], baseline: Dict[str, Any],
                     threshold: float = DEFAULT_THRESHOLD
                     ) -> ComparisonReport:
    """Compare two harness payloads; see module docstring for rules."""
    if not 0 < threshold < 1:
        raise ValueError(f"threshold must be in (0, 1), got {threshold}")
    metric = _pick_metric(current, baseline)
    current_rows = {row["name"]: row for row in current.get("results", [])}
    baseline_rows = {row["name"]: row for row in baseline.get("results", [])}
    report = ComparisonReport(metric=metric, threshold=threshold)
    report.only_in_baseline = sorted(set(baseline_rows) - set(current_rows))
    report.only_in_current = sorted(set(current_rows) - set(baseline_rows))
    for name in (n for n in current_rows if n in baseline_rows):
        cur, base = current_rows[name], baseline_rows[name]
        cur_score = float(cur[metric])
        base_score = float(base[metric])
        ratio = cur_score / base_score if base_score else float("inf")
        # Speed-gate only the cycle-backend rows.  Fast-backend runs
        # finish in tens of milliseconds, so host noise swamps a
        # percent-level threshold; their performance contract is the
        # dedicated speedup gate (--min-speedup), while the job-key and
        # simulated-cycles checks below still apply to every row.
        speed_gated = str(cur.get("backend", "cycle")) == "cycle"
        delta = BenchDelta(
            name=name, metric=metric,
            baseline=base_score, current=cur_score, ratio=ratio,
            regression=speed_gated and ratio < 1.0 - threshold)
        if cur.get("job_key") != base.get("job_key"):
            # Different simulation: the score comparison is meaningless,
            # so it neither passes nor fails on speed.
            delta.stale = True
            delta.regression = False
            delta.notes.append(
                "job key changed — baseline describes a different "
                "simulation; refresh it (repro bench --update-baseline)")
        elif cur.get("cycles") != base.get("cycles"):
            # Same spec, different simulated result: semantics drifted
            # without a schema bump — a correctness failure, not a
            # performance question.
            delta.regression = True
            delta.notes.append(
                "simulated cycle count changed under an unchanged job "
                "key — simulator semantics drifted; bump SCHEMA_VERSION "
                "or fix the change, then refresh the baseline")
        report.deltas.append(delta)
    report.deltas.sort(key=lambda d: d.ratio)
    return report
