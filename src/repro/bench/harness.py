"""Timed-run harness: wall-clock the simulator over fixed job specs.

Every spec lowers to the same declarative :class:`~repro.exec.job.SimJob`
the rest of the system runs (via :class:`~repro.api.scenario.Scenario`),
so the emitted payload carries the job's deterministic content hash —
two payloads produced from the same tree describe byte-identical
simulations, and only the timing fields differ.

Timing methodology:

* every spec is simulated ``warmup`` times untimed, then ``repeats``
  times timed; the reported wall-clock is the *fastest* repeat (system
  noise only ever adds time, so the minimum is the robust estimator);
* timed runs always simulate from scratch (:func:`execute_job`), never
  through the result cache — the cache would time a JSON read;
* a pure-Python calibration spin measures the host interpreter
  *immediately before each spec's timed repeats*, and the spec's
  ``normalized_score`` divides simulated cycles/sec by it — so the
  score tracks simulator efficiency, not host speed, and stays stable
  under machine changes and load varying across the run.

The result cache still participates for accounting: each spec's job is
looked up before timing and its fresh result stored after, so a
cache-backed session (``repro figures``) reuses bench simulations and
the payload records the hit/miss counts.
"""

from __future__ import annotations

import json
import statistics as _stats
import subprocess
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.api.scenario import Scenario
from repro.backends import DEFAULT_BACKEND
from repro.core.policy import CommitPolicy
from repro.exec.cache import NullCache
from repro.exec.executor import execute_job
from repro.exec.job import SimJob
from repro.spec import MachineSpec

# Bump when the payload layout changes incompatibly.
BENCH_SCHEMA_VERSION = 1

# Calibration spin: fixed interpreter work per loop, so ``loops / time``
# measures host Python speed in a unit stable across repo revisions.
_CALIBRATION_LOOPS = 200_000


@dataclass(frozen=True)
class BenchSpec:
    """One named, timed simulation.

    ``machine_spec`` selects the hardware shape (CLI ``--preset`` /
    ``--set``); attaching one changes the job key, so the comparator
    marks baseline rows stale rather than gating scores across
    different machines.  ``backend`` selects the execution backend
    (``repro.backends``); non-default backends carry their name as a
    row-name suffix so cycle and fast rows coexist in one payload.
    """

    name: str
    benchmark: str
    policy: CommitPolicy
    instructions: int
    machine_spec: Optional[MachineSpec] = None
    backend: str = DEFAULT_BACKEND

    def scenario(self) -> Scenario:
        return Scenario.workload(self.benchmark, self.policy,
                                 instructions=self.instructions,
                                 spec=self.machine_spec,
                                 backend=self.backend)

    def job(self) -> SimJob:
        """The content-hashed job this spec times (see repro.api)."""
        return self.scenario().job()


def _specs(entries: Sequence[Tuple[str, CommitPolicy, int]]
           ) -> Tuple[BenchSpec, ...]:
    return tuple(
        BenchSpec(name=f"{bench}_{policy.value}_{instructions}",
                  benchmark=bench, policy=policy, instructions=instructions)
        for bench, policy, instructions in entries)


def with_backend(specs: Sequence[BenchSpec],
                 backend: str) -> Tuple[BenchSpec, ...]:
    """The same workload rows retargeted to another execution backend.

    Non-default backends get a ``_<backend>`` row-name suffix, keeping
    cycle and fast rows distinct in payloads and in the committed
    baseline.
    """
    if backend == DEFAULT_BACKEND:
        return tuple(specs)
    return tuple(replace(spec, backend=backend,
                         name=f"{spec.name}_{backend}")
                 for spec in specs)


# The CI smoke set: the Figure 11 IPC workload pair (insecure baseline
# vs WFC SafeSpec) over three suite benchmarks, small enough for a
# minutes-scale CI job.  benchmarks/baseline.json is generated from
# exactly this set (both backends).  The budget is large enough that
# per-job fixed costs (machine build, memory image, closure lowering)
# do not dominate the fast backend's wall time.
QUICK_SPECS = _specs([
    ("namd", CommitPolicy.BASELINE, 32_000),
    ("namd", CommitPolicy.WFC, 32_000),
    ("povray", CommitPolicy.BASELINE, 32_000),
    ("povray", CommitPolicy.WFC, 32_000),
    ("mcf", CommitPolicy.BASELINE, 32_000),
    ("mcf", CommitPolicy.WFC, 32_000),
])

# The fuller sweep for local performance work.
FULL_SPECS = QUICK_SPECS + _specs([
    ("xz", CommitPolicy.BASELINE, 8_000),
    ("xz", CommitPolicy.WFC, 8_000),
    ("perlbench", CommitPolicy.WFC, 8_000),
    ("xalancbmk", CommitPolicy.WFC, 8_000),
    ("namd", CommitPolicy.WFB, 8_000),
    ("povray", CommitPolicy.WFB, 8_000),
])


def git_revision(default: str = "local") -> str:
    """Short revision of the working tree, or ``default`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10, check=False)
    except OSError:
        return default
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else default


def calibration_score(loops: int = _CALIBRATION_LOOPS,
                      repeats: int = 3) -> float:
    """Host interpreter speed in kilo-loops/sec (best of ``repeats``)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        acc = 0
        for i in range(loops):
            acc += i & 7
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return loops / best / 1000.0


class BenchHarness:
    """Times a set of :class:`BenchSpec` and assembles the payload."""

    def __init__(self, warmup: int = 1, repeats: int = 3,
                 cache: Optional[Any] = None,
                 rev: Optional[str] = None) -> None:
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        if warmup < 0:
            raise ValueError("warmup must be >= 0")
        self.warmup = warmup
        self.repeats = repeats
        self.cache = cache if cache is not None else NullCache()
        self.rev = rev if rev is not None else git_revision()

    def time_spec(self, spec: BenchSpec) -> Dict[str, Any]:
        """Run one spec (warmup + timed repeats) and report its row."""
        job = spec.job()
        # Cache accounting only: a prior result counts a hit, and the
        # fresh result is stored afterwards so figure sessions reuse it.
        self.cache.get(job)
        result = None
        for _ in range(self.warmup):
            result = execute_job(job)
        # Calibrate against *current* host conditions: the spin runs in
        # the same load environment as the repeats it normalises.
        calibration = calibration_score()
        walls: List[float] = []
        for _ in range(self.repeats):
            start = time.perf_counter()
            result = execute_job(job)
            walls.append(time.perf_counter() - start)
        self.cache.put(job, result)
        best_wall = min(walls)
        cycles = result.cycles
        cycles_per_sec = cycles / best_wall
        return {
            "name": spec.name,
            "benchmark": spec.benchmark,
            "policy": spec.policy.value,
            "instructions": spec.instructions,
            "backend": spec.backend,
            # Spec-less rows run the default machine, so they carry the
            # default spec's digest rather than null — every row names
            # the hardware shape it timed.
            "machine_spec_digest": (spec.machine_spec
                                    or MachineSpec()).short_digest(),
            "job_key": job.key(),
            "cycles": cycles,
            "sim_instructions": result.instructions,
            "wall_s": [round(w, 6) for w in walls],
            "best_wall_s": round(best_wall, 6),
            "median_wall_s": round(_stats.median(walls), 6),
            "cycles_per_sec": round(cycles_per_sec, 1),
            "kloops_per_sec": round(calibration, 1),
            "normalized_score": round(cycles_per_sec / calibration, 3),
        }

    def run(self, specs: Sequence[BenchSpec],
            progress=None) -> Dict[str, Any]:
        """Time every spec and return the schema-versioned payload."""
        results = []
        for index, spec in enumerate(specs):
            row = self.time_spec(spec)
            results.append(row)
            if progress:
                progress(index + 1, len(specs), spec, row)
        calibrations = [row["kloops_per_sec"] for row in results]
        return {
            "schema": BENCH_SCHEMA_VERSION,
            "rev": self.rev,
            "warmup": self.warmup,
            "repeats": self.repeats,
            "calibration": {
                "loops": _CALIBRATION_LOOPS,
                "kloops_per_sec": round(
                    _stats.median(calibrations), 1) if calibrations else 0.0,
            },
            "results": results,
            "cache": {"hits": self.cache.hits,
                      "misses": self.cache.misses,
                      "stores": self.cache.stores},
        }


def payload_fingerprint(payload: Dict[str, Any]) -> Dict[str, Any]:
    """The deterministic subset of a payload (no timing fields).

    Two payloads produced from the same tree have equal fingerprints;
    the determinism tests and cache-validity reasoning rely on this.
    """
    return {
        "schema": payload["schema"],
        "results": [
            {"name": row["name"], "job_key": row["job_key"],
             "cycles": row["cycles"],
             "sim_instructions": row["sim_instructions"]}
            for row in payload["results"]],
    }


def dump_payload(payload: Dict[str, Any], path: str) -> None:
    """Write a payload as stable, sorted-key JSON."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_payload(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        return json.load(handle)
