"""Service-mode benchmark: warm-vs-cold round-trip through the server.

One service row answers the question the serve subsystem exists for:
*what does a client pay for a simulation the corpus already holds?*
It measures two full HTTP round-trips of the same submission payload:

* **cold** — a fresh server over an empty shared store: the job is
  simulated on a background worker;
* **warm** — a *second* server instance over the same store file: the
  job comes back from the shared SQLite corpus without simulating
  (which is also how a restarted or scaled-out server behaves).

Using two server instances (rather than resubmitting to the first)
makes the warm path exercise the store, not the server's in-memory
record table — the measured speedup is the one a new client on a new
server actually sees.

Rows land under the ``service`` key of the bench payload, separate
from the gated ``results`` rows (round-trip time is dominated by
polling/transport, not the cycle loop the gate protects).
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

from repro.core.policy import CommitPolicy
from repro.serve.client import ServeClient
from repro.serve.server import BackgroundServer, JobService
from repro.serve.store import SQLiteResultStore

# The default service-row workload: small enough that the cold trip is
# seconds-scale in CI, large enough that simulation dominates it.
DEFAULT_BENCHMARK = "namd"
DEFAULT_POLICY = CommitPolicy.WFC
DEFAULT_INSTRUCTIONS = 4_000


def _roundtrip(store: SQLiteResultStore, payload: Dict[str, Any],
               workers: int) -> Dict[str, Any]:
    """One full submit->poll round-trip on a fresh server instance."""
    service = JobService(store=store, workers=workers)
    with BackgroundServer(service) as background:
        client = ServeClient(background.url)
        start = time.perf_counter()
        envelope = client.submit(payload)
        final = client.wait_batch(envelope["batch"], timeout=600.0)
        elapsed = time.perf_counter() - start
    if final["failed"]:
        errors = [job.get("error") for job in final["jobs"]
                  if job.get("error")]
        raise RuntimeError(f"service bench job failed: {errors}")
    job = final["jobs"][0]
    return {
        "elapsed_s": elapsed,
        "source": envelope["jobs"][0]["source"],
        "job_key": job["key"],
        "cycles": (job.get("result") or {}).get("cycles"),
    }


def service_roundtrip(benchmark: str = DEFAULT_BENCHMARK,
                      policy: CommitPolicy = DEFAULT_POLICY,
                      instructions: int = DEFAULT_INSTRUCTIONS,
                      backend: str = "cycle",
                      workers: int = 1,
                      store_dir: Optional[str] = None) -> Dict[str, Any]:
    """Measure one warm-vs-cold served round-trip; returns the row.

    ``store_dir`` locates the shared SQLite store both server
    instances use; pass a fresh temporary directory (the CLI does) so
    the cold trip is genuinely cold.
    """
    payload = {"kind": "workload", "target": benchmark,
               "policy": policy.value, "instructions": instructions,
               "backend": backend}
    cold = _roundtrip(SQLiteResultStore(store_dir), payload, workers)
    warm = _roundtrip(SQLiteResultStore(store_dir), payload, workers)
    if warm["job_key"] != cold["job_key"]:
        raise RuntimeError("service bench job keys diverged: "
                           f"{cold['job_key']} != {warm['job_key']}")
    return {
        "benchmark": benchmark,
        "policy": policy.value,
        "instructions": instructions,
        "backend": backend,
        "job_key": cold["job_key"],
        "cycles": cold["cycles"],
        "cold_s": round(cold["elapsed_s"], 6),
        "warm_s": round(warm["elapsed_s"], 6),
        # The headline number: how much faster the corpus serves a
        # known job than simulating it.
        "warm_speedup": round(cold["elapsed_s"]
                              / max(warm["elapsed_s"], 1e-9), 1),
        "cold_source": cold["source"],     # "executed" when truly cold
        "warm_source": warm["source"],     # "store" when served
    }


def render_service_rows(rows) -> str:
    lines = ["service round-trip (cold = simulated on a worker, "
             "warm = served from the shared store):"]
    for row in rows:
        lines.append(
            f"  {row['benchmark']}/{row['policy']}@{row['backend']}: "
            f"cold {row['cold_s']:.3f}s ({row['cold_source']}) -> "
            f"warm {row['warm_s']:.3f}s ({row['warm_source']}), "
            f"{row['warm_speedup']:.1f}x")
    return "\n".join(lines)
