"""CACTI-like hardware area/power/timing model (paper Table V)."""

from repro.hwmodel.sram import (CamModel, SramModel, StructureEstimate,
                                TECH_40NM, TechnologyNode)
from repro.hwmodel.overhead import (OverheadReport, ShadowSizing,
                                    l1_reference_estimate,
                                    shadow_overhead_report, table5)

__all__ = [
    "CamModel",
    "OverheadReport",
    "ShadowSizing",
    "SramModel",
    "StructureEstimate",
    "TECH_40NM",
    "TechnologyNode",
    "l1_reference_estimate",
    "shadow_overhead_report",
    "table5",
]
