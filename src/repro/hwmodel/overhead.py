"""Table V: SafeSpec hardware overhead at 40 nm.

Two configurations are compared, exactly as in the paper:

* **Secure** — shadow structures sized for the worst case (shadow
  d-cache/dTLB bounded by the load-store queue, shadow i-cache/iTLB by
  the reorder buffer), which closes transient speculation attacks.
* **WFC** — shadow structures sized to the 99.99th-percentile occupancy
  measured across the workload suite (the Figures 6-9 result).

Costs are reported absolutely and as a percentage of the Skylake L1
cache configuration (32 KB L1I + 32 KB L1D, Table II), matching the
paper's normalization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.safespec import PERFORMANCE_SIZES
from repro.hwmodel.sram import (CamModel, SramModel, StructureEstimate,
                                TECH_40NM, TechnologyNode)

_LINE_BITS = 64 * 8          # 64-byte cache line payload
_LINE_TAG_BITS = 40          # physical line tag + bookkeeping
_TLB_TAG_BITS = 36           # virtual page number tag
_TLB_DATA_BITS = 44          # physical page number + permissions


@dataclass(frozen=True)
class ShadowSizing:
    """Entry counts for the four shadow structures."""

    dcache: int
    icache: int
    itlb: int
    dtlb: int


SECURE_SIZING = ShadowSizing(dcache=72 + 56, icache=224, itlb=224,
                             dtlb=72 + 56)
WFC_SIZING = ShadowSizing(
    dcache=PERFORMANCE_SIZES["shadow_dcache"],
    icache=PERFORMANCE_SIZES["shadow_icache"],
    itlb=PERFORMANCE_SIZES["shadow_itlb"],
    dtlb=PERFORMANCE_SIZES["shadow_dtlb"],
)


@dataclass
class OverheadReport:
    """One Table V row."""

    config: str
    estimate: StructureEstimate
    power_percent_of_l1: float
    area_percent_of_l1: float

    def row(self) -> str:
        return (f"{self.config:8s} {self.estimate.total_power_mw:10.2f} "
                f"{self.power_percent_of_l1:9.1f} "
                f"{self.estimate.area_mm2:10.3f} "
                f"{self.area_percent_of_l1:8.1f}")


def shadow_estimate(sizing: ShadowSizing, config_name: str,
                    tech: TechnologyNode = TECH_40NM) -> StructureEstimate:
    """Aggregate estimate of the four shadow structures."""
    cam = CamModel(tech)
    parts = [
        cam.estimate(f"{config_name}.shadow_dcache", entries=sizing.dcache,
                     tag_bits=_LINE_TAG_BITS, data_bits=_LINE_BITS),
        cam.estimate(f"{config_name}.shadow_icache", entries=sizing.icache,
                     tag_bits=_LINE_TAG_BITS, data_bits=_LINE_BITS),
        cam.estimate(f"{config_name}.shadow_itlb", entries=sizing.itlb,
                     tag_bits=_TLB_TAG_BITS, data_bits=_TLB_DATA_BITS),
        cam.estimate(f"{config_name}.shadow_dtlb", entries=sizing.dtlb,
                     tag_bits=_TLB_TAG_BITS, data_bits=_TLB_DATA_BITS),
    ]
    total = parts[0]
    for part in parts[1:]:
        total = total + part
    return StructureEstimate(config_name, total.area_mm2,
                             total.dynamic_power_mw,
                             total.leakage_power_mw,
                             total.access_time_ns)


def l1_reference_estimate(tech: TechnologyNode = TECH_40NM
                          ) -> StructureEstimate:
    """The paper's normalization base: "the Skylake CPU L1 cache
    configuration (shown in Table II)".

    Table II describes the per-core cache configuration — 32 KB L1I,
    32 KB L1D and the 256 KB private L2 — so the reference aggregates
    those three arrays.  (Normalizing against the two 32 KB L1s alone
    would make the shadow structures, which hold ~22 KB of lines in the
    Secure sizing, cost over half of the reference — far from the
    paper's 17%/26.4%.)
    """
    sram = SramModel(tech)
    l1d = sram.estimate("L1D", entries=512, entry_bits=_LINE_BITS,
                        tag_bits=_LINE_TAG_BITS, associativity=8,
                        activity=1.0)
    l1i = sram.estimate("L1I", entries=512, entry_bits=_LINE_BITS,
                        tag_bits=_LINE_TAG_BITS, associativity=8,
                        activity=0.8)
    l2 = sram.estimate("L2", entries=4096, entry_bits=_LINE_BITS,
                       tag_bits=_LINE_TAG_BITS, associativity=4,
                       activity=0.3)
    combined = l1d + l1i + l2
    return StructureEstimate("cache-reference", combined.area_mm2,
                             combined.dynamic_power_mw,
                             combined.leakage_power_mw,
                             combined.access_time_ns)


def shadow_overhead_report(sizing: ShadowSizing, config_name: str,
                           tech: TechnologyNode = TECH_40NM
                           ) -> OverheadReport:
    """One Table V row: shadow cost relative to the L1 reference."""
    estimate = shadow_estimate(sizing, config_name, tech)
    reference = l1_reference_estimate(tech)
    return OverheadReport(
        config=config_name,
        estimate=estimate,
        power_percent_of_l1=100.0 * estimate.total_power_mw
        / reference.total_power_mw,
        area_percent_of_l1=100.0 * estimate.area_mm2 / reference.area_mm2,
    )


def table5(tech: TechnologyNode = TECH_40NM) -> Dict[str, OverheadReport]:
    """Both Table V rows: Secure (worst case) and WFC (p99.99 sized)."""
    return {
        "Secure": shadow_overhead_report(SECURE_SIZING, "Secure", tech),
        "WFC": shadow_overhead_report(WFC_SIZING, "WFC", tech),
    }


def render_table5(tech: TechnologyNode = TECH_40NM) -> str:
    """Render Table V as text."""
    rows = table5(tech)
    header = (f"{'config':8s} {'Power(mW)':>10s} {'Power(%)':>9s} "
              f"{'Area(mm2)':>10s} {'Area(%)':>8s}")
    lines = ["Table V: SafeSpec hardware overhead at 40nm",
             "=" * len(header), header, "-" * len(header)]
    for name in ("Secure", "WFC"):
        lines.append(rows[name].row())
    return "\n".join(lines)
