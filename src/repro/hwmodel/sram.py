"""Analytical SRAM/CAM area, power and access-time model.

The paper evaluates its hardware overhead with CACTI v5.3 at a 40 nm
technology node.  CACTI is a large C++ tool; this module implements the
small analytical core needed for Table V: per-bit cell area with
periphery overhead, fully associative (CAM) match overhead that grows
with entry count, dynamic read energy, and leakage proportional to area.

Constants are calibrated so a 32 KB 8-way L1 at 40 nm lands in the
plausible published range (~0.3-0.6 mm², a few hundred mW at 3 GHz) and,
more importantly, so the *relative* costs the paper reports — the
"Secure" worst-case sizing versus the performance-sized WFC
configuration — hold (roughly an order of magnitude apart).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class TechnologyNode:
    """Per-node constants for the analytical model."""

    name: str
    feature_nm: float
    sram_cell_um2: float          # 6T SRAM cell area
    cam_cell_um2: float           # 10T CAM cell area (search + storage)
    periphery_factor: float       # decoders, sense amps, drivers
    read_energy_pj_per_bit: float
    leakage_mw_per_mm2: float
    wire_delay_ns_per_mm: float
    base_access_ns: float


# 40 nm node: 6T cell ~ 146 F^2, CAM cell ~ 2.1x that; periphery ~35%.
TECH_40NM = TechnologyNode(
    name="40nm",
    feature_nm=40.0,
    sram_cell_um2=146 * 0.040 * 0.040,
    cam_cell_um2=2.1 * 146 * 0.040 * 0.040,
    periphery_factor=1.35,
    read_energy_pj_per_bit=0.012,
    leakage_mw_per_mm2=18.0,
    wire_delay_ns_per_mm=0.60,
    base_access_ns=0.25,
)


@dataclass(frozen=True)
class StructureEstimate:
    """Area/power/timing estimate for one hardware structure."""

    name: str
    area_mm2: float
    dynamic_power_mw: float
    leakage_power_mw: float
    access_time_ns: float

    @property
    def total_power_mw(self) -> float:
        return self.dynamic_power_mw + self.leakage_power_mw

    def __add__(self, other: "StructureEstimate") -> "StructureEstimate":
        return StructureEstimate(
            name=f"{self.name}+{other.name}",
            area_mm2=self.area_mm2 + other.area_mm2,
            dynamic_power_mw=self.dynamic_power_mw + other.dynamic_power_mw,
            leakage_power_mw=self.leakage_power_mw + other.leakage_power_mw,
            access_time_ns=max(self.access_time_ns, other.access_time_ns),
        )


class SramModel:
    """Set-associative SRAM array (caches, set-indexed tables)."""

    def __init__(self, tech: TechnologyNode = TECH_40NM) -> None:
        self.tech = tech

    def estimate(self, name: str, *, entries: int, entry_bits: int,
                 tag_bits: int = 0, associativity: int = 1,
                 frequency_ghz: float = 3.0,
                 activity: float = 0.3) -> StructureEstimate:
        """Estimate one SRAM structure.

        ``activity`` is the fraction of cycles the structure is accessed
        (drives dynamic power); a set-associative read activates every
        way of the selected set.
        """
        if entries <= 0 or entry_bits <= 0:
            raise ConfigError(f"{name}: entries/entry_bits must be positive")
        total_bits = entries * (entry_bits + tag_bits)
        area_um2 = (total_bits * self.tech.sram_cell_um2
                    * self.tech.periphery_factor)
        area_mm2 = area_um2 / 1e6
        read_bits = associativity * (entry_bits + tag_bits)
        dynamic_mw = (read_bits * self.tech.read_energy_pj_per_bit
                      * frequency_ghz * activity)
        leakage_mw = area_mm2 * self.tech.leakage_mw_per_mm2
        access_ns = (self.tech.base_access_ns
                     + self.tech.wire_delay_ns_per_mm * (area_mm2 ** 0.5))
        return StructureEstimate(name, area_mm2, dynamic_mw, leakage_mw,
                                 access_ns)


class CamModel:
    """Fully associative structure (the shadow tables).

    The shadow structures are "filled associatively but accessed as a
    lookup table" (paper Section IV-A): every entry carries a match
    (CAM) tag searched on each access.  Match-line and priority-encoder
    wiring grows with the entry count, so large CAMs cost superlinearly
    — captured by the ``wiring_factor``.
    """

    # Extra wiring/encoder overhead per entry, normalized at 256 entries.
    _WIRING_NORM = 256.0

    def __init__(self, tech: TechnologyNode = TECH_40NM) -> None:
        self.tech = tech

    def wiring_factor(self, entries: int) -> float:
        return 1.0 + entries / self._WIRING_NORM

    def estimate(self, name: str, *, entries: int, tag_bits: int,
                 data_bits: int, frequency_ghz: float = 3.0,
                 activity: float = 0.1) -> StructureEstimate:
        if entries <= 0 or tag_bits <= 0 or data_bits < 0:
            raise ConfigError(f"{name}: invalid geometry")
        factor = self.wiring_factor(entries)
        cam_area_um2 = entries * tag_bits * self.tech.cam_cell_um2 * factor
        data_area_um2 = entries * data_bits * self.tech.sram_cell_um2
        area_um2 = ((cam_area_um2 + data_area_um2)
                    * self.tech.periphery_factor)
        area_mm2 = area_um2 / 1e6
        # A search broadcasts across every tag (matchline cost grows with
        # the wiring factor); a read activates one data entry.
        search_bits = entries * tag_bits * 0.5 * factor
        dynamic_mw = ((search_bits + data_bits)
                      * self.tech.read_energy_pj_per_bit
                      * frequency_ghz * activity)
        leakage_mw = area_mm2 * self.tech.leakage_mw_per_mm2
        access_ns = (self.tech.base_access_ns
                     + self.tech.wire_delay_ns_per_mm * (area_mm2 ** 0.5)
                     + 0.0005 * entries)
        return StructureEstimate(name, area_mm2, dynamic_mw, leakage_mw,
                                 access_ns)
