"""Shadow-occupancy anomaly detection (paper Section VII future work).

The paper observes that normal programs leave the worst-case-sized shadow
structures mostly empty, and suggests that "abnormal growth of the
structures [can be used] as an indicator of a possible attack".  This
module implements that detector: it watches per-cycle shadow occupancy
against per-structure thresholds learned from benign executions and
raises an alert when a speculation window pushes occupancy past them.

The TSA Trojan is exactly such an anomaly: to create contention it must
drive a shadow structure to (near) capacity inside one speculation
window, far above the p99.99 occupancy of any benign workload
(EXPERIMENTS.md, Figures 6-9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.safespec import SafeSpecEngine
from repro.errors import ConfigError

# Default alert thresholds: comfortably above the suite's p99.99
# occupancies (Figures 6-9 reproduction) and far below the Secure bounds.
DEFAULT_THRESHOLDS = {
    "shadow_dcache": 48,
    "shadow_icache": 32,
    "shadow_itlb": 12,
    "shadow_dtlb": 12,
}


@dataclass(frozen=True)
class AnomalyEvent:
    """One threshold crossing."""

    cycle: int
    structure: str
    occupancy: int
    threshold: int

    def __str__(self) -> str:
        return (f"cycle {self.cycle}: {self.structure} occupancy "
                f"{self.occupancy} > threshold {self.threshold}")


@dataclass
class DetectorReport:
    """Summary of one monitored execution."""

    events: List[AnomalyEvent] = field(default_factory=list)
    peak_occupancy: Dict[str, int] = field(default_factory=dict)

    @property
    def attack_suspected(self) -> bool:
        return bool(self.events)


class ShadowAnomalyDetector:
    """Watches a SafeSpec engine's shadow occupancy for abnormal growth.

    Attach with :meth:`attach`; the detector samples on every engine
    cycle tick (piggybacking on ``set_cycle``) and records an
    :class:`AnomalyEvent` whenever a structure exceeds its threshold.
    Detach restores the engine.
    """

    def __init__(self, thresholds: Optional[Dict[str, int]] = None) -> None:
        self.thresholds = dict(DEFAULT_THRESHOLDS)
        if thresholds:
            for name, value in thresholds.items():
                if name not in self.thresholds:
                    raise ConfigError(f"unknown shadow structure {name!r}")
                if value < 1:
                    raise ConfigError(f"{name}: threshold must be >= 1")
                self.thresholds[name] = value
        self.report = DetectorReport(
            peak_occupancy={name: 0 for name in self.thresholds})
        self._engine: Optional[SafeSpecEngine] = None
        self._original_set_cycle = None
        self._alarmed_cycles: Dict[str, int] = {}

    # ------------------------------------------------------------------

    def attach(self, engine: SafeSpecEngine) -> "ShadowAnomalyDetector":
        """Start monitoring ``engine``; returns self for chaining."""
        if self._engine is not None:
            raise ConfigError("detector is already attached")
        self._engine = engine
        self._original_set_cycle = engine.set_cycle

        def monitored_set_cycle(cycle: int) -> None:
            self._original_set_cycle(cycle)
            self._sample(cycle)

        engine.set_cycle = monitored_set_cycle
        return self

    def detach(self) -> DetectorReport:
        """Stop monitoring and return the report."""
        if self._engine is None:
            raise ConfigError("detector is not attached")
        # attach() shadowed the class method with an instance attribute;
        # removing it restores the engine's own method.
        del self._engine.set_cycle
        self._engine = None
        self._original_set_cycle = None
        return self.report

    # ------------------------------------------------------------------

    def _sample(self, cycle: int) -> None:
        for structure in self._engine.all_structures():
            name = structure.name
            occupancy = structure.occupancy()
            if occupancy > self.report.peak_occupancy.get(name, 0):
                self.report.peak_occupancy[name] = occupancy
            threshold = self.thresholds.get(name)
            if threshold is None or occupancy <= threshold:
                self._alarmed_cycles.pop(name, None)
                continue
            # De-bounce: one event per continuous excursion.
            if name not in self._alarmed_cycles:
                self._alarmed_cycles[name] = cycle
                self.report.events.append(AnomalyEvent(
                    cycle=cycle, structure=name, occupancy=occupancy,
                    threshold=threshold))
