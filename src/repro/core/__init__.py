"""SafeSpec: the paper's primary contribution.

Shadow structures hold all micro-architectural state produced by
speculative instructions; the engine moves that state into the committed
structures when instructions become safe (per the commit policy) and
annuls it when they are squashed.
"""

from repro.core.policy import CommitPolicy
from repro.core.safespec import SafeSpecConfig, SafeSpecEngine, SizingMode
from repro.core.shadow import FullPolicy, ShadowStructure

__all__ = [
    "CommitPolicy",
    "FullPolicy",
    "SafeSpecConfig",
    "SafeSpecEngine",
    "ShadowStructure",
    "SizingMode",
]
