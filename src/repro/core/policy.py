"""Commit policies: when speculative state may become visible.

The paper's two SafeSpec variants plus the insecure baseline:

* ``BASELINE`` — no shadow state; fills land in the real structures at
  execute time.  Vulnerable to Spectre and Meltdown.
* ``WFB`` (wait-for-branch) — shadow state is promoted once every older
  control-flow instruction has resolved.  Stops Spectre v1/v2 (which
  require a branch misprediction) but **not** Meltdown (a faulting load
  with no unresolved older branch promotes its line before the fault is
  detected at commit).
* ``WFC`` (wait-for-commit) — shadow state is promoted only when its
  owning instruction commits.  Stops Spectre *and* Meltdown.
"""

from __future__ import annotations

import enum


class CommitPolicy(enum.Enum):
    """Selects when speculative micro-architectural state is promoted."""

    BASELINE = "baseline"
    WFB = "wfb"
    WFC = "wfc"

    @property
    def uses_shadow(self) -> bool:
        """Whether this policy routes fills through shadow structures."""
        return self is not CommitPolicy.BASELINE

    @property
    def stops_spectre(self) -> bool:
        """Paper Table III: both WFB and WFC close Spectre 1/2."""
        return self.uses_shadow

    @property
    def stops_meltdown(self) -> bool:
        """Paper Table III: only WFC closes Meltdown."""
        return self is CommitPolicy.WFC
