"""The SafeSpec engine: shadow bookkeeping wired into the pipeline.

The engine owns the four shadow structures and implements the three hooks
the pipeline calls:

* ``sink_for(uop)`` — a :class:`ShadowFillSink` bound to the requesting
  micro-op; every cache-line or translation fill the memory hierarchy
  produces on behalf of that micro-op lands in shadow state tagged with
  the micro-op's sequence number.
* ``on_commit(uop)`` / ``on_branch_resolved(...)`` — promotion: entries
  move into the committed structures per the active
  :class:`~repro.core.policy.CommitPolicy` (WFC promotes at commit, WFB
  when the owning micro-op's older branches have all resolved).
* ``on_squash(uop)`` — annulment: the squashed micro-op's entries vanish
  without ever touching committed state.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.core.policy import CommitPolicy
from repro.core.shadow import FullPolicy, ShadowEntry, ShadowStructure
from repro.errors import ConfigError
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.paging import Translation

if TYPE_CHECKING:  # pragma: no cover - circular-import guard
    from repro.pipeline.uop import DynUop


class SizingMode(enum.Enum):
    """How the shadow structures are sized.

    * ``SECURE`` — worst case: shadow d-cache/dTLB sized to the load-store
      queue, shadow i-cache/iTLB to the ROB.  No contention is possible,
      which closes the TSA channel (paper Sections V and VII).
    * ``PERFORMANCE`` — sized to the 99.99th percentile of observed
      occupancy (the paper's Figures 6-9 sizing study); contention is
      possible and TSAs become expressible.
    * ``CUSTOM`` — explicit sizes, used by the TSA experiments to make the
      covert channel easy to demonstrate.
    """

    SECURE = "secure"
    PERFORMANCE = "performance"
    CUSTOM = "custom"


# Performance-mode sizes: the paper's Figures 6-9 p99.99 results (shadow
# i-cache ~25 lines, d-cache bounded by ~48, iTLB <10, dTLB up to 25).
# Our synthetic suite measures *smaller* percentiles (see EXPERIMENTS.md),
# so these paper-derived sizes are conservative for the reproduction.
PERFORMANCE_SIZES = {
    "shadow_dcache": 48,
    "shadow_icache": 25,
    "shadow_itlb": 10,
    "shadow_dtlb": 25,
}


@dataclass(frozen=True)
class SafeSpecConfig:
    """Engine configuration."""

    policy: CommitPolicy = CommitPolicy.WFC
    sizing: SizingMode = SizingMode.SECURE
    full_policy: FullPolicy = FullPolicy.DROP
    # CUSTOM sizing only:
    dcache_entries: Optional[int] = None
    icache_entries: Optional[int] = None
    itlb_entries: Optional[int] = None
    dtlb_entries: Optional[int] = None

    def __post_init__(self) -> None:
        if self.sizing is SizingMode.CUSTOM:
            for name in ("dcache_entries", "icache_entries",
                         "itlb_entries", "dtlb_entries"):
                value = getattr(self, name)
                if value is None or value < 1:
                    raise ConfigError(
                        f"CUSTOM sizing requires {name} >= 1, got {value}")


class ShadowFillSink:
    """A :class:`~repro.memory.hierarchy.FillSink` bound to one micro-op."""

    __slots__ = ("_engine", "_uop")

    speculative = True

    def __init__(self, engine: "SafeSpecEngine", uop: "DynUop") -> None:
        self._engine = engine
        self._uop = uop

    def lookup_line(self, side: str, line_addr: int) -> bool:
        structure = self._engine.cache_shadow(side)
        return structure.lookup(line_addr) is not None

    def fill_line(self, side: str, line_addr: int) -> None:
        self._engine.record_line(side, line_addr, self._uop)

    def lookup_translation(self, side: str, vpn: int) -> Optional[Translation]:
        structure = self._engine.tlb_shadow(side)
        entry = structure.lookup(vpn)
        if entry is None:
            return None
        payload = entry.payload
        return payload if isinstance(payload, Translation) else None

    def fill_translation(self, side: str, translation: Translation) -> None:
        self._engine.record_translation(side, translation, self._uop)


class SafeSpecEngine:
    """Owns shadow state and implements promotion/annulment."""

    def __init__(self, config: SafeSpecConfig,
                 hierarchy: MemoryHierarchy,
                 ldq_entries: int = 72, stq_entries: int = 56,
                 rob_entries: int = 224) -> None:
        self.config = config
        self.hierarchy = hierarchy
        sizes = self._resolve_sizes(ldq_entries, stq_entries, rob_entries)
        full = config.full_policy
        self.shadow_dcache = ShadowStructure(
            "shadow_dcache", sizes["shadow_dcache"], full)
        self.shadow_icache = ShadowStructure(
            "shadow_icache", sizes["shadow_icache"], full)
        self.shadow_itlb = ShadowStructure(
            "shadow_itlb", sizes["shadow_itlb"], full)
        self.shadow_dtlb = ShadowStructure(
            "shadow_dtlb", sizes["shadow_dtlb"], full)
        self._structures = (self.shadow_dcache, self.shadow_icache,
                            self.shadow_itlb, self.shadow_dtlb)
        # owner seq -> entries, so commit/squash are O(owner's entries)
        self._entries_by_owner: Dict[int, List[_OwnedEntry]] = {}
        self._now = 0
        # Leakage bookkeeping (read by repro.verify): a squashed micro-op
        # whose shadow state was already promoted is committed-state
        # leakage from a wrong path.  WFC can never produce one; WFB can
        # only via the fault hole the paper describes (Section VI).
        self.promotions = 0
        self.promoted_then_squashed = 0

    def _resolve_sizes(self, ldq: int, stq: int, rob: int) -> Dict[str, int]:
        mode = self.config.sizing
        if mode is SizingMode.SECURE:
            # Worst case (paper Section VII): d-side bounded by the
            # load-store queue, i-side by the reorder buffer.  The d-side
            # bound includes page-walker lines, hence ldq + stq.
            return {
                "shadow_dcache": ldq + stq,
                "shadow_icache": rob,
                "shadow_itlb": rob,
                "shadow_dtlb": ldq + stq,
            }
        if mode is SizingMode.PERFORMANCE:
            return dict(PERFORMANCE_SIZES)
        return {
            "shadow_dcache": self.config.dcache_entries,
            "shadow_icache": self.config.icache_entries,
            "shadow_itlb": self.config.itlb_entries,
            "shadow_dtlb": self.config.dtlb_entries,
        }

    # -- structure selection ---------------------------------------------

    def cache_shadow(self, side: str) -> ShadowStructure:
        return self.shadow_icache if side == "i" else self.shadow_dcache

    def tlb_shadow(self, side: str) -> ShadowStructure:
        return self.shadow_itlb if side == "i" else self.shadow_dtlb

    def all_structures(self) -> List[ShadowStructure]:
        return list(self._structures)

    # -- pipeline interface -------------------------------------------------

    def set_cycle(self, cycle: int) -> None:
        self._now = cycle

    def sink_for(self, uop: "DynUop") -> ShadowFillSink:
        """Fill sink routing this micro-op's state into shadow."""
        return ShadowFillSink(self, uop)

    def can_accept_data_access(self) -> bool:
        """BLOCK policy: whether a new data-side access may issue.

        A single access can produce at most walk_levels page-table lines
        plus one data line plus one translation; we require one free slot
        in each d-side structure, which is the conservative stall rule.
        """
        if self.config.full_policy is not FullPolicy.BLOCK:
            return True
        return (self.shadow_dcache.has_space()
                and self.shadow_dtlb.has_space())

    def record_line(self, side: str, line_addr: int, uop: "DynUop") -> None:
        structure = self.cache_shadow(side)
        entry = structure.fill(line_addr, uop.seq, None, self._now)
        if entry is not None:
            self._entries_by_owner.setdefault(uop.seq, []).append(
                _OwnedEntry(structure, entry, side, "line"))

    def record_translation(self, side: str, translation: Translation,
                           uop: "DynUop") -> None:
        structure = self.tlb_shadow(side)
        entry = structure.fill(translation.vpn, uop.seq, translation,
                               self._now)
        if entry is not None:
            self._entries_by_owner.setdefault(uop.seq, []).append(
                _OwnedEntry(structure, entry, side, "translation"))

    # -- promotion / annulment ----------------------------------------------

    def promote(self, uop: "DynUop") -> int:
        """Move the micro-op's shadow state into the committed structures.

        Returns the number of entries promoted.  Idempotent: WFB promotes
        when branch dependences clear, and the later commit of the same
        micro-op finds nothing left to move.
        """
        # The flag is meaningful even when nothing has been recorded
        # yet: WFB may promote before the micro-op has executed (no
        # older unresolved branches), and from then on its fills are
        # non-speculative — the core routes them straight to the
        # committed structures (see ``Core._sink``).
        uop.promoted = True
        owned = self._entries_by_owner.pop(uop.seq, None)
        if not owned:
            return 0
        for item in owned:
            if item.kind == "line":
                self.hierarchy.install_line(item.side, item.entry.key)
            else:
                translation = item.entry.payload
                if isinstance(translation, Translation):
                    self.hierarchy.install_translation(item.side, translation)
            item.structure.release_committed(item.entry)
        self.promotions += len(owned)
        return len(owned)

    def annul(self, uop: "DynUop") -> int:
        """Discard the squashed micro-op's shadow state in place."""
        owned = self._entries_by_owner.pop(uop.seq, None)
        if not owned:
            return 0
        for item in owned:
            item.structure.annul(item.entry)
        return len(owned)

    def on_commit(self, uop: "DynUop") -> None:
        """Commit-time hook (both policies promote whatever remains)."""
        self.promote(uop)

    def on_squash(self, uop: "DynUop") -> None:
        """Squash-time hook: annul everything the micro-op produced.

        Under WFB a squashed micro-op may already have been promoted
        (its branches resolved before an older *fault* squashed it) —
        that is exactly the WFB/Meltdown hole the paper describes, and it
        is preserved faithfully here: promoted state stays in the caches.
        """
        if uop.promoted:
            self.promoted_then_squashed += 1
        self.annul(uop)

    def on_branch_resolved(self, uop: "DynUop") -> None:
        """WFB promotion point, called by the core when a micro-op's last
        older unresolved branch resolves correctly."""
        if self.config.policy is CommitPolicy.WFB:
            self.promote(uop)

    # -- sampling -----------------------------------------------------------

    def sample_occupancy(self) -> None:
        for structure in self._structures:
            structure.sample_occupancy()

    # -- invariant surface ---------------------------------------------------

    def invariant_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-structure accounting read by the verification harness.

        For every shadow structure: accepted ``fills`` must equal
        ``committed + annulled + residual`` at any quiescent point, and
        after a run drains, ``residual`` must be zero — squashed
        speculative state never lingers.  ``promoted_then_squashed``
        (engine-wide) counts wrong-path micro-ops whose state reached
        the committed structures before the squash.
        """
        stats: Dict[str, Dict[str, int]] = {}
        for structure in self._structures:
            stats[structure.name] = {
                "fills": structure.stats.counter("fills").value,
                "drops": structure.stats.counter("drops").value,
                "blocks": structure.stats.counter("blocks").value,
                "committed": structure.commit_count,
                "annulled": structure.annul_count,
                "residual": structure.occupancy(),
            }
        stats["engine"] = {
            "promotions": self.promotions,
            "promoted_then_squashed": self.promoted_then_squashed,
        }
        return stats


class _OwnedEntry:
    """Bookkeeping triple: which structure, which entry, what kind."""

    __slots__ = ("structure", "entry", "side", "kind")

    def __init__(self, structure: ShadowStructure, entry: ShadowEntry,
                 side: str, kind: str) -> None:
        self.structure = structure
        self.entry = entry
        self.side = side
        self.kind = kind
