"""Shadow structures: associatively filled, table-looked-up speculative state.

One :class:`ShadowStructure` instance backs each of the four shadowed
components (shadow d-cache, shadow i-cache, shadow iTLB, shadow dTLB).
Entries are keyed by cache-line address (caches) or virtual page number
(TLBs) and tagged with the sequence number of the owning micro-op so that
commit/squash can move or annul exactly the right state.

When the structure is full, behaviour follows the configured
:class:`FullPolicy` — both options the paper discusses in Section V:

* ``DROP``  — the incoming fill is discarded (loss of an update to the
  committed state; performance effect only).
* ``BLOCK`` — the requesting instruction stalls until space frees up.

Both behaviours are *observable* by co-speculative code, which is exactly
the transient-speculation-attack (TSA) channel; the mitigation is
worst-case sizing, at which neither policy ever triggers.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigError
from repro.statistics import StatRegistry


class FullPolicy(enum.Enum):
    """What happens when a fill arrives and the structure is full."""

    DROP = "drop"
    BLOCK = "block"


class ShadowEntry:
    """One speculatively produced item (cache line or translation)."""

    __slots__ = ("key", "owner_seq", "payload", "fill_cycle")

    def __init__(self, key: int, owner_seq: int, payload: object,
                 fill_cycle: int) -> None:
        self.key = key
        self.owner_seq = owner_seq
        self.payload = payload
        self.fill_cycle = fill_cycle


class ShadowStructure:
    """A bounded associative table of speculative entries.

    Lookups are by key (any in-flight instruction on the same path may hit
    on a line another instruction fetched, paper Section IV-A); ownership
    is by micro-op sequence number, so commit and squash operate on the
    owner's entries only.
    """

    __slots__ = ("name", "capacity", "full_policy", "stats", "_lookups",
                 "_hits", "_fills", "_drops", "_blocks", "_committed",
                 "_annulled", "_occupancy_hist", "_occ_value", "_occ_run",
                 "_by_key", "_count", "_is_drop")

    def __init__(self, name: str, capacity: int,
                 full_policy: FullPolicy = FullPolicy.DROP) -> None:
        if capacity < 1:
            raise ConfigError(f"{name}: capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self.full_policy = full_policy
        self._is_drop = full_policy is FullPolicy.DROP
        self.stats = StatRegistry(name)
        self._lookups = self.stats.counter("lookups")
        self._hits = self.stats.counter("hits")
        self._fills = self.stats.counter("fills")
        self._drops = self.stats.counter("drops")
        self._blocks = self.stats.counter("blocks")
        self._committed = self.stats.counter("committed_entries")
        self._annulled = self.stats.counter("annulled_entries")
        self._occupancy_hist = self.stats.histogram("occupancy")
        # Run-length sampling state: per-cycle samples at an unchanged
        # occupancy accumulate in a counter and are folded into the
        # histogram in bulk (the histogram is identical, the per-cycle
        # cost drops to one comparison).
        self._occ_value = 0
        self._occ_run = 0
        # key -> list of entries (multiple owners may fetch the same key
        # on diverging paths before one of them is squashed)
        self._by_key: Dict[int, List[ShadowEntry]] = {}
        self._count = 0

    @property
    def occupancy_histogram(self):
        """The occupancy histogram with all pending samples folded in."""
        if self._occ_run:
            self._occupancy_hist.record(self._occ_value, self._occ_run)
            self._occ_run = 0
        return self._occupancy_hist

    # -- capacity -----------------------------------------------------------

    def occupancy(self) -> int:
        return self._count

    @property
    def full(self) -> bool:
        return self._count >= self.capacity

    def has_space(self) -> bool:
        return self._count < self.capacity

    # -- lookup / fill -------------------------------------------------------

    def lookup(self, key: int) -> Optional[ShadowEntry]:
        """Associative lookup by key; newest entry wins."""
        self._lookups.value += 1
        entries = self._by_key.get(key)
        if not entries:
            return None
        self._hits.value += 1
        return entries[-1]

    def fill(self, key: int, owner_seq: int, payload: object,
             cycle: int) -> Optional[ShadowEntry]:
        """Insert a new entry owned by ``owner_seq``.

        Returns the entry, or ``None`` when the structure is full and the
        policy is DROP (the fill is lost).  Callers implementing BLOCK must
        check :meth:`has_space` *before* issuing the request; a fill that
        arrives at a full BLOCK-policy structure is still dropped but
        counted as a block event.
        """
        if self._count >= self.capacity:
            if self._is_drop:
                self._drops.value += 1
            else:
                self._blocks.value += 1
            return None
        entry = ShadowEntry(key, owner_seq, payload, cycle)
        self._by_key.setdefault(key, []).append(entry)
        self._count += 1
        self._fills.value += 1
        return entry

    # -- commit / annul ------------------------------------------------------

    def _remove(self, entry: ShadowEntry) -> None:
        entries = self._by_key.get(entry.key)
        if not entries:
            return
        try:
            entries.remove(entry)
        except ValueError:
            return
        if not entries:
            del self._by_key[entry.key]
        self._count -= 1

    def release_committed(self, entry: ShadowEntry) -> None:
        """Remove an entry whose state moved to the committed structures."""
        self._remove(entry)
        self._committed.value += 1

    def annul(self, entry: ShadowEntry) -> None:
        """Remove an entry whose owner was squashed (leaves no trace)."""
        self._remove(entry)
        self._annulled.value += 1

    # -- introspection ---------------------------------------------------------

    def sample_occupancy(self) -> None:
        """Record the current occupancy (per-cycle sizing histograms,
        Figures 6-9 of the paper)."""
        if self._count == self._occ_value:
            self._occ_run += 1
        else:
            if self._occ_run:
                self._occupancy_hist.record(self._occ_value, self._occ_run)
            self._occ_value = self._count
            self._occ_run = 1

    def keys(self) -> Iterable[int]:
        return self._by_key.keys()

    def entries_snapshot(self) -> List[Tuple[int, int]]:
        """(key, owner_seq) pairs, for tests and debugging."""
        return [(e.key, e.owner_seq)
                for entries in self._by_key.values() for e in entries]

    @property
    def commit_count(self) -> int:
        return self._committed.value

    @property
    def annul_count(self) -> int:
        return self._annulled.value

    def commit_rate(self) -> float:
        """Fraction of retired shadow entries that were committed rather
        than annulled (Figure 16 of the paper)."""
        total = self._committed.value + self._annulled.value
        return self._committed.value / total if total else 0.0

    def __repr__(self) -> str:
        return (f"ShadowStructure({self.name}, {self._count}/{self.capacity},"
                f" policy={self.full_policy.value})")
