"""Tests for the CACTI-like hardware model and Table V."""

import pytest

from repro.errors import ConfigError
from repro.hwmodel import (CamModel, SramModel,
                           l1_reference_estimate, shadow_overhead_report,
                           table5)
from repro.hwmodel.overhead import (SECURE_SIZING, WFC_SIZING,
                                    render_table5, shadow_estimate)


class TestSramModel:
    def test_area_scales_with_capacity(self):
        sram = SramModel()
        small = sram.estimate("s", entries=64, entry_bits=512)
        large = sram.estimate("l", entries=512, entry_bits=512)
        assert large.area_mm2 == pytest.approx(8 * small.area_mm2)

    def test_dynamic_power_scales_with_associativity(self):
        sram = SramModel()
        direct = sram.estimate("d", entries=64, entry_bits=512,
                               associativity=1)
        assoc = sram.estimate("a", entries=64, entry_bits=512,
                              associativity=8)
        assert assoc.dynamic_power_mw == \
            pytest.approx(8 * direct.dynamic_power_mw)

    def test_access_time_grows_with_area(self):
        sram = SramModel()
        small = sram.estimate("s", entries=64, entry_bits=512)
        large = sram.estimate("l", entries=4096, entry_bits=512)
        assert large.access_time_ns > small.access_time_ns

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigError):
            SramModel().estimate("x", entries=0, entry_bits=512)


class TestCamModel:
    def test_cam_costs_more_than_sram_per_bit(self):
        cam = CamModel().estimate("c", entries=64, tag_bits=40,
                                  data_bits=0)
        sram = SramModel().estimate("s", entries=64, entry_bits=40)
        assert cam.area_mm2 > sram.area_mm2

    def test_wiring_factor_superlinear(self):
        cam = CamModel()
        assert cam.wiring_factor(256) > cam.wiring_factor(32)

    def test_estimate_addition(self):
        cam = CamModel()
        a = cam.estimate("a", entries=16, tag_bits=40, data_bits=512)
        b = cam.estimate("b", entries=16, tag_bits=40, data_bits=512)
        total = a + b
        assert total.area_mm2 == pytest.approx(2 * a.area_mm2)
        assert total.total_power_mw == pytest.approx(2 * a.total_power_mw)


class TestTable5:
    def test_secure_sizing_matches_worst_case_bounds(self):
        assert SECURE_SIZING.dcache == 72 + 56   # LDQ + STQ
        assert SECURE_SIZING.icache == 224       # ROB

    def test_wfc_sizing_much_smaller(self):
        assert WFC_SIZING.dcache < SECURE_SIZING.dcache / 2
        assert WFC_SIZING.icache < SECURE_SIZING.icache / 2

    def test_table5_shape(self):
        """The reproduced Table V must preserve the paper's shape: the
        Secure configuration costs several times the WFC configuration,
        and WFC overhead is a small percentage of the cache reference."""
        rows = table5()
        secure, wfc = rows["Secure"], rows["WFC"]
        assert secure.estimate.area_mm2 > 4 * wfc.estimate.area_mm2
        assert secure.estimate.total_power_mw > \
            4 * wfc.estimate.total_power_mw
        assert wfc.area_percent_of_l1 < 5.0
        assert wfc.power_percent_of_l1 < 10.0
        assert secure.area_percent_of_l1 < 60.0

    def test_reference_is_plausible(self):
        ref = l1_reference_estimate()
        assert 0.1 < ref.area_mm2 < 5.0
        assert 50 < ref.total_power_mw < 2000

    def test_shadow_estimate_aggregates_four_structures(self):
        estimate = shadow_estimate(WFC_SIZING, "WFC")
        single = CamModel().estimate(
            "d", entries=WFC_SIZING.dcache, tag_bits=40, data_bits=512)
        assert estimate.area_mm2 > single.area_mm2

    def test_render(self):
        text = render_table5()
        assert "Secure" in text and "WFC" in text

    def test_overhead_report_row(self):
        report = shadow_overhead_report(WFC_SIZING, "WFC")
        assert "WFC" in report.row()
