"""Scenario-diversity attack families and their supporting machinery.

Covers the extended Tables III/IV rows (ret2spec, SpectreRSB, the
BHB-steered Spectre v2, and Spectre v4 store bypass), backend verdict
parity for each, the LSQ partial-overlap forwarding regression, and
warm-state snapshot round-trips for every registered predictor.
"""

import pytest

from repro_testlib import POLICIES
from repro.api.registry import PREDICTORS
from repro.attacks import expected_closed, run_attack_by_name
from repro.isa.assembler import ProgramBuilder
from repro.machine import Machine
from repro.sample.checkpoint import Checkpoint
from repro.spec import MachineSpec
from repro.verify import ReferenceOracle

BASELINE, WFB, WFC = POLICIES

NEW_ATTACKS = ("ret2spec", "spectre_rsb", "spectre_v2_bhb", "ssb_v4")


class TestNewAttackVerdicts:
    """Each new family leaks on the baseline and is closed exactly where
    the registry metadata says SafeSpec closes it — on both backends,
    with identical verdicts (the acceptance bar for backend parity)."""

    @pytest.mark.parametrize("attack", NEW_ATTACKS)
    @pytest.mark.parametrize("policy", POLICIES,
                             ids=lambda p: p.name.lower())
    def test_verdict_and_backend_parity(self, attack, policy):
        cycle = run_attack_by_name(attack, policy, 42, backend="cycle")
        fast = run_attack_by_name(attack, policy, 42, backend="fast")
        assert cycle.leaked == fast.leaked, (
            f"{attack}/{policy.name}: cycle leaked {cycle.leaked}, "
            f"fast leaked {fast.leaked}")
        if policy is BASELINE:
            assert cycle.leaked == 42
        elif expected_closed(attack, policy):
            assert cycle.closed
        else:
            assert cycle.leaked == 42

    def test_ssb_v4_is_the_branch_free_row(self):
        # Store bypass involves no branch: WFB's promotion leaves the
        # hole open (like Meltdown) and only WFC closes it.
        assert not expected_closed("ssb_v4", WFB)
        assert expected_closed("ssb_v4", WFC)
        for name in ("ret2spec", "spectre_rsb", "spectre_v2_bhb"):
            assert expected_closed(name, WFB)


class TestLSQPartialOverlapForwarding:
    """Regression for the store-to-load forwarding fix: a store must
    forward only to an *exact* word match.  A partially overlapping
    younger load has to wait for the store to drain and then read its
    own memory cell — forwarding the unshifted store word is wrong."""

    DATA = 0x20000

    def _program(self, overlap_offset):
        b = ProgramBuilder(code_base=0x1000)
        b.li("r1", self.DATA)
        b.li("r3", 0xDEAD)
        b.store("r1", "r3", 0)                 # store word @DATA
        b.load("r4", "r1", overlap_offset)     # load @DATA+offset
        b.halt()
        return b.build()

    def _run_both(self, program):
        machine = Machine()
        machine.map_user_range(self.DATA, 4096)
        machine.write_word(self.DATA, 0x1111)
        machine.write_word(self.DATA + 8, 0x3333)
        result = machine.run(program)

        oracle = ReferenceOracle()
        oracle.map_user_range(self.DATA, 4096)
        oracle.write_word(self.DATA, 0x1111)
        oracle.write_word(self.DATA + 8, 0x3333)
        expected = oracle.run(program)
        return result, expected

    def test_partial_overlap_reads_memory_not_store(self):
        # Byte-accurate result: bytes 4-7 come from the drained store's
        # word (zero there), bytes 8-11 from the next cell.  Forwarding
        # the unshifted store word (0xDEAD) instead would be the bug.
        result, expected = self._run_both(self._program(4))
        assert result.reg(4) == expected.reg(4) == 0x3333 << 32

    def test_exact_match_forwards_store_value(self):
        result, expected = self._run_both(self._program(0))
        assert result.reg(4) == expected.reg(4) == 0xDEAD
        assert result.counters["store_forwards"] >= 1


class TestWarmStateRoundTrip:
    """Checkpoint capture/apply must round-trip the trained front end:
    direction predictor (every registered kind), BTB entries, global
    branch history, and the return stack buffer."""

    def _warm_program(self):
        b = ProgramBuilder(code_base=0x1000)
        for k in range(6):                     # trains taken counters
            b.branch("eq", "r0", "r0", f"t{k}")
            b.label(f"t{k}")
        b.branch("ne", "r0", "r0", "t6")       # a not-taken outcome
        b.label("t6")
        b.call("r2", "fn")                     # push never popped: the
        b.halt()                               # RSB entry survives
        b.label("fn")
        b.halt()
        return b.build()

    @pytest.mark.parametrize("name", sorted(PREDICTORS.names()))
    def test_round_trip_per_predictor(self, name):
        spec = MachineSpec().derive(
            **{"predictor": name, "btb.history_bits": 4})
        machine = Machine.from_spec(spec)
        program = self._warm_program()
        run = machine.run(program)
        for _ in range(2):                     # past cold counters
            run = machine.run(program)

        # Committed calls (one per run) plus any wrong-path speculative
        # pushes — squash never unwinds the RSB, so it is non-empty.
        assert len(machine.rsb) >= 1
        assert machine.btb.history != 0

        ckpt = Checkpoint.capture(
            machine, instructions=run.instructions,
            next_pc=run.next_pc or 0, registers=run.registers)
        fresh = Machine.from_spec(spec)
        ckpt.apply(fresh)

        assert fresh.predictor.snapshot() == machine.predictor.snapshot()
        assert fresh.btb.snapshot() == machine.btb.snapshot()
        assert fresh.btb.history == machine.btb.history
        assert fresh.rsb.snapshot() == machine.rsb.snapshot()

    @pytest.mark.parametrize("name", sorted(PREDICTORS.names()))
    def test_restored_machine_predicts_identically(self, name):
        spec = MachineSpec().derive(
            **{"predictor": name, "btb.history_bits": 4})
        machine = Machine.from_spec(spec)
        program = self._warm_program()
        run = machine.run(program)
        run = machine.run(program)

        ckpt = Checkpoint.capture(
            machine, instructions=run.instructions,
            next_pc=run.next_pc or 0, registers=run.registers)
        fresh = Machine.from_spec(spec)
        ckpt.apply(fresh)

        again = machine.run(program)
        replay = fresh.run(program)
        assert replay.counters["mispredicts"] == \
            again.counters["mispredicts"]
        assert replay.cycles == again.cycles
