"""Tests for the repro.bench harness, comparator, and CLI gate."""

import copy
import json
import pickle

import pytest

from repro.bench import (BENCH_SCHEMA_VERSION, BenchHarness, BenchSpec,
                         QUICK_SPECS, annotate_calibration_drift,
                         compare_payloads, payload_fingerprint,
                         render_calibration_drift)
from repro.bench.harness import dump_payload, load_payload
from repro.core.policy import CommitPolicy
from repro.exec.executor import ParallelExecutor, SerialExecutor
from repro.exec.job import workload_job
from repro.isa.instructions import AluOp, Instruction, Opcode
from repro.memory.cache import Cache, CacheConfig
from repro.memory.tlb import TLB, TLBConfig
from repro.pipeline.uop import DynUop

TINY = BenchSpec(name="tiny_namd", benchmark="namd",
                 policy=CommitPolicy.WFC, instructions=200)


def run_tiny_harness():
    harness = BenchHarness(warmup=0, repeats=1, rev="test")
    return harness.run([TINY])


class TestHarness:
    def test_payload_shape_and_schema(self):
        payload = run_tiny_harness()
        assert payload["schema"] == BENCH_SCHEMA_VERSION
        assert payload["rev"] == "test"
        (row,) = payload["results"]
        assert row["name"] == "tiny_namd"
        assert row["cycles"] > 0
        assert row["cycles_per_sec"] > 0
        assert row["normalized_score"] > 0
        assert len(row["wall_s"]) == 1
        assert len(row["job_key"]) == 64

    def test_emitted_json_is_deterministic(self, tmp_path):
        """Two runs from the same tree agree on everything but timing,
        and the dumped JSON has stable, sorted keys."""
        first = run_tiny_harness()
        second = run_tiny_harness()
        assert payload_fingerprint(first) == payload_fingerprint(second)
        path = tmp_path / "bench.json"
        dump_payload(first, str(path))
        text = path.read_text()
        assert json.loads(text) == first
        # sort_keys: re-dumping the parsed payload reproduces the bytes.
        assert text == json.dumps(first, indent=2, sort_keys=True) + "\n"
        assert load_payload(str(path)) == first

    def test_job_key_matches_api_job(self):
        """The payload's job key is the repro.api content hash."""
        payload = run_tiny_harness()
        expected = workload_job("namd", CommitPolicy.WFC,
                                instructions=200).key()
        assert payload["results"][0]["job_key"] == expected

    def test_rejects_bad_repeat_counts(self):
        with pytest.raises(ValueError):
            BenchHarness(repeats=0)
        with pytest.raises(ValueError):
            BenchHarness(warmup=-1)

    def test_quick_specs_cover_fig11_policies(self):
        """The CI smoke set times the Figure 11 IPC pair."""
        policies = {spec.policy for spec in QUICK_SPECS}
        assert CommitPolicy.BASELINE in policies
        assert CommitPolicy.WFC in policies


def _payload(rows):
    return {"schema": BENCH_SCHEMA_VERSION, "rev": "x",
            "results": [dict(row) for row in rows]}


def _row(name, score, job_key="k", cycles=100):
    return {"name": name, "normalized_score": score,
            "cycles_per_sec": score * 1000.0, "job_key": job_key,
            "cycles": cycles}


class TestComparator:
    def test_identical_payloads_pass(self):
        payload = _payload([_row("a", 10.0), _row("b", 20.0)])
        report = compare_payloads(payload, copy.deepcopy(payload))
        assert report.passed
        assert len(report.deltas) == 2

    def test_small_slowdown_within_threshold_passes(self):
        base = _payload([_row("a", 10.0)])
        current = _payload([_row("a", 9.2)])
        assert compare_payloads(current, base, threshold=0.10).passed

    def test_regression_beyond_threshold_fails(self):
        base = _payload([_row("a", 10.0)])
        current = _payload([_row("a", 8.5)])
        report = compare_payloads(current, base, threshold=0.10)
        assert not report.passed
        (delta,) = report.regressions
        assert delta.name == "a"
        assert delta.ratio == pytest.approx(0.85)
        assert "REGRESSION" in report.render()

    def test_speedup_always_passes(self):
        base = _payload([_row("a", 10.0)])
        current = _payload([_row("a", 30.0)])
        assert compare_payloads(current, base).passed

    def test_disjoint_benches_reported_not_failed(self):
        base = _payload([_row("a", 10.0), _row("old", 5.0)])
        current = _payload([_row("a", 10.0), _row("new", 7.0)])
        report = compare_payloads(current, base)
        assert report.passed
        assert report.only_in_baseline == ["old"]
        assert report.only_in_current == ["new"]

    def test_changed_job_key_is_stale_not_a_regression(self):
        """A different job key means a different simulation: no speed
        verdict either way, even when the score ratio looks terrible."""
        base = _payload([_row("a", 10.0, job_key="old")])
        current = _payload([_row("a", 2.0, job_key="new")])
        report = compare_payloads(current, base)
        assert report.passed
        (delta,) = report.deltas
        assert delta.stale
        assert not delta.regression
        assert "STALE BASELINE" in report.render()
        assert any("job key changed" in note for note in delta.notes)

    def test_fast_backend_rows_are_not_speed_gated(self):
        """Fast-backend wall times are noise-dominated; their perf
        contract is the speedup gate, so a slow fast row never fails
        the row-by-row comparison..."""
        base = _payload([dict(_row("a_fast", 100.0), backend="fast")])
        current = _payload([dict(_row("a_fast", 60.0), backend="fast")])
        assert compare_payloads(current, base, threshold=0.10).passed

    def test_fast_backend_rows_still_fail_on_cycle_drift(self):
        """...but the simulated-cycles correctness check still applies
        to every row, whatever its backend."""
        base = _payload([dict(_row("a_fast", 100.0, cycles=100),
                              backend="fast")])
        current = _payload([dict(_row("a_fast", 100.0, cycles=101),
                                 backend="fast")])
        report = compare_payloads(current, base)
        assert not report.passed
        (delta,) = report.regressions
        assert any("semantics drifted" in note for note in delta.notes)

    def test_cycle_drift_under_same_key_fails_the_gate(self):
        """Same spec, different simulated cycles: semantics drifted
        without a schema bump — fails regardless of speed."""
        base = _payload([_row("a", 10.0, cycles=100)])
        current = _payload([_row("a", 30.0, cycles=101)])
        report = compare_payloads(current, base)
        assert not report.passed
        (delta,) = report.regressions
        assert any("semantics drifted" in note for note in delta.notes)

    def test_falls_back_to_raw_metric(self):
        base = _payload([{"name": "a", "cycles_per_sec": 1000.0,
                          "job_key": "k", "cycles": 1}])
        current = _payload([_row("a", 10.0)])
        report = compare_payloads(current, base)
        assert report.metric == "cycles_per_sec"

    def test_threshold_validation(self):
        payload = _payload([_row("a", 1.0)])
        with pytest.raises(ValueError):
            compare_payloads(payload, payload, threshold=0.0)


def _calibrated(kloops, rows=None):
    payload = _payload(rows or [_row("a", 10.0)])
    payload["calibration"] = {"loops": 1000, "kloops_per_sec": kloops}
    return payload


class TestCalibrationDrift:
    def test_within_threshold_not_flagged(self):
        current = _calibrated(105.0)
        report = annotate_calibration_drift(current, _calibrated(100.0))
        assert report["checked"] and not report["drifted"]
        assert current["calibration"]["drift_vs_baseline"] == \
            pytest.approx(0.05)
        assert current["results"][0]["calibration_drifted"] is False

    def test_drift_beyond_threshold_flags_payload_and_rows(self):
        current = _calibrated(125.0)
        report = annotate_calibration_drift(current, _calibrated(100.0))
        assert report["drifted"]
        assert current["calibration"]["drifted"] is True
        assert all(row["calibration_drifted"]
                   for row in current["results"])
        assert current["results"][0]["calibration_drift"] == \
            pytest.approx(0.25)
        assert "DRIFTED" in render_calibration_drift(report)

    def test_slower_host_drifts_too(self):
        report = annotate_calibration_drift(_calibrated(80.0),
                                            _calibrated(100.0))
        assert report["drifted"]
        assert report["drift"] == pytest.approx(-0.2)

    def test_no_baseline_is_unchecked(self):
        current = _calibrated(100.0)
        report = annotate_calibration_drift(current, None)
        assert not report["checked"] and not report["drifted"]
        assert "drift_vs_baseline" not in current["calibration"]
        assert "no baseline" in render_calibration_drift(report)

    def test_baseline_without_calibration_is_unchecked(self):
        # Pre-calibration payloads (schema 0) must not divide by zero.
        report = annotate_calibration_drift(
            _calibrated(100.0), _payload([_row("a", 10.0)]))
        assert not report["checked"]


class TestSlotsPickling:
    """The __slots__ additions must stay picklable: results (and any
    state they reference) cross the multiprocessing boundary in the
    parallel executor."""

    def test_dynuop_round_trips(self):
        inst = Instruction(opcode=Opcode.ALU, rd=1, rs1=2, rs2=3,
                           alu_op=AluOp.ADD)
        uop = DynUop(7, inst, 0x1000, 0, 3)
        uop.vaddr = 0x2000
        clone = pickle.loads(pickle.dumps(uop))
        assert clone.seq == 7
        assert clone.pc == 0x1000
        assert clone.vaddr == 0x2000
        assert clone.is_load is False
        assert clone.inst.inst_class is inst.inst_class
        assert clone.inst.fu_index == inst.fu_index

    def test_cache_and_tlb_round_trip(self):
        cache = Cache(CacheConfig("t", 1024, 2, 64, 1))
        cache.fill(0x40)
        cache.touch(0x40)
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.contains(0x40)
        assert clone.hits == cache.hits
        tlb = TLB(TLBConfig("t", 4))
        clone_tlb = pickle.loads(pickle.dumps(tlb))
        assert clone_tlb.occupancy() == 0

    def test_parallel_executor_matches_serial(self):
        """End-to-end: slotted pipeline state survives the worker-process
        boundary and parallel results stay bit-identical to serial."""
        jobs = [workload_job("namd", CommitPolicy.WFC, instructions=300),
                workload_job("povray", CommitPolicy.BASELINE,
                             instructions=300)]
        serial = SerialExecutor().run(jobs)
        parallel = ParallelExecutor(workers=2).run(jobs)
        for s, p in zip(serial, parallel):
            assert s.to_dict() == p.to_dict()


class TestServiceRow:
    def test_warm_roundtrip_is_served_from_the_store(self, tmp_path):
        """The bench service row: cold trip simulates, warm trip is a
        pure store hit on a fresh server instance."""
        from repro.bench import service_roundtrip

        row = service_roundtrip(benchmark="namd",
                                policy=CommitPolicy.WFC,
                                instructions=400,
                                store_dir=str(tmp_path))
        assert row["cold_source"] == "executed"
        assert row["warm_source"] == "store"
        assert row["cold_s"] > 0 and row["warm_s"] > 0
        assert row["warm_speedup"] == pytest.approx(
            row["cold_s"] / row["warm_s"], rel=0.1)
        job = workload_job("namd", CommitPolicy.WFC, instructions=400)
        assert row["job_key"] == job.key()

    def test_render_service_rows(self, tmp_path):
        from repro.bench import render_service_rows

        text = render_service_rows([{
            "benchmark": "namd", "policy": "wfc", "backend": "cycle",
            "cold_s": 1.25, "warm_s": 0.05, "warm_speedup": 25.0,
            "cold_source": "executed", "warm_source": "store"}])
        assert "cold 1.250s (executed)" in text
        assert "warm 0.050s (store)" in text
