"""Suite-wide fixtures and shared machine/program construction helpers.

Every test runs with ``REPRO_CACHE_DIR`` pointed at a per-session
temporary directory so CLI invocations that default to the persistent
result cache can never read from (or write into) the developer's real
``~/.cache/repro``.

The machine/program helpers used to be duplicated across
``test_core_execution.py``, ``test_machine.py`` and ``test_attacks.py``;
they live once in ``repro_testlib.py`` now, wrapped here as fixtures:

* ``user_machine`` — a machine factory with the standard user data
  region (``DATA_BASE``) pre-mapped;
* ``run_program`` — build a program with a callback, run it on a fresh
  machine, return ``(machine, result)``;
* ``load_program`` — the ubiquitous ``li base / load / halt`` probe.

Constants (``DATA_BASE``, ``KERNEL_BASE``, ``POLICIES``) are imported
directly: ``from repro_testlib import DATA_BASE, POLICIES``.
"""

import pytest

from repro.exec.cache import CACHE_DIR_ENV
from repro_testlib import build_and_run, make_load_program, make_user_machine


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path_factory, monkeypatch):
    cache_dir = tmp_path_factory.getbasetemp() / "repro-cache"
    monkeypatch.setenv(CACHE_DIR_ENV, str(cache_dir))


@pytest.fixture
def user_machine():
    """Factory: ``user_machine(policy=..., data_bytes=..., kernel=True)``."""
    return make_user_machine


@pytest.fixture
def run_program():
    """Factory: ``run_program(build, policy=..., setup=..., regs=...)``
    returning ``(machine, result)``."""
    return build_and_run


@pytest.fixture
def load_program():
    """Factory: ``load_program(addr, offset=0)`` -> probe Program."""
    return make_load_program
