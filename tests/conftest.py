"""Suite-wide fixtures.

Every test runs with ``REPRO_CACHE_DIR`` pointed at a per-session
temporary directory so CLI invocations that default to the persistent
result cache can never read from (or write into) the developer's real
``~/.cache/repro``.
"""

import pytest

from repro.exec.cache import CACHE_DIR_ENV


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path_factory, monkeypatch):
    cache_dir = tmp_path_factory.getbasetemp() / "repro-cache"
    monkeypatch.setenv(CACHE_DIR_ENV, str(cache_dir))
