"""Smoke tests: every example script runs and prints what it promises.

The examples are part of the public deliverable; these tests import each
one as a module and execute its ``main()`` with output captured, so a
broken example fails CI rather than a reader's first session.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples.{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestQuickstart:
    def test_runs_and_computes_sum(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "sum          = 36" in out
        assert "[baseline]" in out and "[wfc]" in out


class TestTsaDemo:
    def test_shows_both_outcomes(self, capsys):
        load_example("tsa_demo").main()
        out = capsys.readouterr().out
        assert "channel WORKS" in out
        assert "carries no information" in out


class TestMeltdownWalkthrough:
    def test_narrates_all_policies(self, capsys):
        load_example("meltdown_walkthrough").main()
        out = capsys.readouterr().out
        assert out.count("SECRET LEAKED") == 2   # baseline + WFB
        assert "leak closed" in out              # WFC


class TestLeakString:
    def test_full_leak_on_baseline_only(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["leak_string.py", "Hi"])
        load_example("leak_string").main()
        out = capsys.readouterr().out
        assert "FULL LEAK" in out
        assert "no leak" in out


class TestAnomalyDetection:
    def test_alarm_only_for_burst(self, capsys):
        load_example("anomaly_detection").main()
        out = capsys.readouterr().out
        benign, burst = out.split("TSA-style burst")
        assert "attack suspected: False" in benign
        assert "attack suspected: True" in burst


class TestWorkloadStudy:
    def test_prints_figures(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["workload_study.py", "namd"])
        load_example("workload_study").main()
        out = capsys.readouterr().out
        assert "Figure 11" in out and "Figure 7" in out


class TestSweepAblation:
    def test_prints_full_grid(self, capsys):
        load_example("sweep_ablation").main()
        out = capsys.readouterr().out
        # 2 benchmarks x 2 policies x 3 ROB variants
        assert out.count("IPC=") == 12
        assert "rob224" in out and "wfc" in out


class TestShadowSizingSweep:
    def test_prints_sizing_table(self, capsys):
        load_example("shadow_sizing_sweep").main()
        out = capsys.readouterr().out
        assert "p99.99 shadow occupancy" in out
        # 2 benchmarks x 3 sizing modes
        for sizing in ("secure", "p9999", "tiny"):
            assert out.count(sizing) >= 2


class TestServeSession:
    def test_warm_server_answers_from_store(self, capsys):
        load_example("serve_session").main()
        out = capsys.readouterr().out
        assert out.count("source=executed") == 3    # cold: all simulate
        assert "3 jobs, 0 failed" in out
        assert "sources=['store'] executed=0" in out


class TestSampledRun:
    def test_compares_sampled_to_full(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv",
                            ["sampled_run.py", "mcf", "100000"])
        load_example("sampled_run").main()
        out = capsys.readouterr().out
        assert "4/4 windows measured" in out
        assert "stitched IPC" in out
        assert "error)" in out and "less wall-clock" in out


@pytest.mark.slow
class TestSecurityMatrixExample:
    def test_matrix_prints(self, capsys):
        load_example("security_matrix").main()
        out = capsys.readouterr().out
        assert "meltdown" in out and "spectre_v1" in out
