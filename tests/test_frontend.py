"""Unit tests for the BTB and direction predictors."""

import pytest

from repro.errors import ConfigError
from repro.frontend.btb import BTBConfig, BranchTargetBuffer
from repro.frontend.predictors import (BimodalPredictor, GsharePredictor,
                                       ReturnStackBuffer)
from repro.frontend.rsb import RSBConfig


class TestBTB:
    def test_cold_lookup_misses(self):
        assert BranchTargetBuffer().predict_target(0x1000) is None

    def test_update_then_predict(self):
        btb = BranchTargetBuffer()
        btb.update(0x1000, 0x2000)
        assert btb.predict_target(0x1000) == 0x2000

    def test_untagged_aliasing(self):
        """The Spectre v2 poisoning mechanism: two PCs that share an
        index share the entry."""
        btb = BranchTargetBuffer()
        period = btb.config.entries << btb.config.shift
        pc_victim = 0x1000
        pc_attacker = 0x1000 + period
        assert btb.aliases(pc_victim, pc_attacker)
        btb.update(pc_attacker, 0xBAD0)
        assert btb.predict_target(pc_victim) == 0xBAD0

    def test_non_aliasing_pcs_do_not_collide(self):
        btb = BranchTargetBuffer()
        btb.update(0x1000, 0x2000)
        assert btb.predict_target(0x1010) is None

    def test_flush(self):
        btb = BranchTargetBuffer()
        btb.update(0x1000, 0x2000)
        btb.flush()
        assert btb.predict_target(0x1000) is None

    def test_config_consistency_enforced(self):
        with pytest.raises(ConfigError):
            BTBConfig(entries=100, index_bits=9)


class TestBimodal:
    def test_initial_prediction_not_taken(self):
        assert not BimodalPredictor().predict(0x1000)

    def test_training_to_taken(self):
        pred = BimodalPredictor()
        for _ in range(3):
            pred.update(0x1000, taken=True, predicted=False)
        assert pred.predict(0x1000)

    def test_hysteresis(self):
        pred = BimodalPredictor()
        for _ in range(4):
            pred.update(0x1000, taken=True, predicted=False)
        pred.update(0x1000, taken=False, predicted=True)
        assert pred.predict(0x1000)  # one not-taken does not flip it

    def test_misprediction_rate(self):
        pred = BimodalPredictor()
        pred.predict(0x1000)
        pred.update(0x1000, taken=True, predicted=False)
        pred.predict(0x1000)
        pred.update(0x1000, taken=False, predicted=False)
        assert pred.misprediction_rate() == pytest.approx(0.5)

    def test_entries_power_of_two(self):
        with pytest.raises(ConfigError):
            BimodalPredictor(entries=1000)

    def test_flush_resets(self):
        pred = BimodalPredictor()
        for _ in range(3):
            pred.update(0x1000, True, False)
        pred.flush()
        assert not pred.predict(0x1000)


class TestGshare:
    def test_history_affects_index(self):
        pred = GsharePredictor(entries=64, history_bits=6)
        # Train PC under one history pattern to taken.
        for _ in range(4):
            pred.update(0x40, taken=True, predicted=False)
        # Predictions exist and training changed behaviour for this path.
        assert isinstance(pred.predict(0x40), bool)

    def test_rejects_bad_history(self):
        with pytest.raises(ConfigError):
            GsharePredictor(history_bits=0)

    def test_flush(self):
        pred = GsharePredictor()
        for _ in range(4):
            pred.update(0x1000, True, False)
        pred.flush()
        assert not pred.predict(0x1000)


class TestRSB:
    def test_lifo_order(self):
        rsb = ReturnStackBuffer()
        rsb.push(1)
        rsb.push(2)
        assert rsb.pop() == 2
        assert rsb.pop() == 1

    def test_empty_pop_returns_zero(self):
        assert ReturnStackBuffer().pop() == 0

    def test_overflow_drops_oldest(self):
        rsb = ReturnStackBuffer(RSBConfig(depth=2))
        rsb.push(1)
        rsb.push(2)
        rsb.push(3)
        assert len(rsb) == 2
        assert rsb.pop() == 3
        assert rsb.pop() == 2

    def test_depth_validated(self):
        with pytest.raises(ConfigError):
            RSBConfig(depth=0)
