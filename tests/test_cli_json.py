"""Every ``--format json`` subcommand emits the same response envelope.

The contract (documented in :mod:`repro.cli`): machine-readable output
is always ``{"schema_version": N, "rev": "<git rev>", "command":
"<name>", "payload": {...}}``, so scripted consumers dispatch on one
shape no matter which subcommand produced it.  ``submit``/``status``
need a running server and are covered by the serve tests instead.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.exec.job import SCHEMA_VERSION

ENVELOPE_KEYS = {"schema_version", "rev", "command", "payload"}

# A committed bench snapshot for the telemetry ingest case.
_BENCH = str(next(Path(__file__).resolve().parents[1].glob("BENCH_*.json"),
                  Path("BENCH_missing.json")))

# (id, expected command name, argv). Budgets are tiny: these runs exist
# to exercise the serialization surface, not the simulator.
CASES = [
    ("attack", "attack",
     ["attack", "spectre_v1", "--policy", "baseline", "--no-cache"]),
    ("matrix", "matrix", ["matrix", "--no-cache"]),
    ("workload", "workload",
     ["workload", "namd", "--instructions", "1200", "--no-cache"]),
    ("run-alias", "run",
     ["run", "namd", "--instructions", "1200", "--no-cache"]),
    ("figures", "figures",
     ["figures", "--benchmarks", "namd", "--instructions", "1200",
      "--no-cache"]),
    ("specs-list", "specs", ["specs"]),
    ("specs-show", "specs", ["specs", "safespec-secure"]),
    ("verify", "verify",
     ["verify", "--count", "2", "--instructions", "2000", "--no-cache"]),
    ("sample", "sample",
     ["sample", "namd", "--instructions", "3000", "--interval", "1500",
      "--warmup", "200", "--windows", "2", "--window", "400",
      "--no-cache"]),
    ("cache-stats", "cache", ["cache", "stats", "--cache-dir", "{tmp}"]),
    ("cache-gc", "cache",
     ["cache", "gc", "--cache-dir", "{tmp}", "--max-entries", "5"]),
    ("telemetry-ingest", "telemetry",
     ["telemetry", "ingest", _BENCH, "--db", "{tmp}/t.sqlite"]),
    ("telemetry-render", "telemetry",
     ["telemetry", "render", "--db", "{tmp}/t.sqlite",
      "-o", "{tmp}/dash.html"]),
    ("telemetry-show", "telemetry",
     ["telemetry", "show", "--db", "{tmp}/t.sqlite"]),
]


@pytest.mark.parametrize(("command", "argv"),
                         [case[1:] for case in CASES],
                         ids=[case[0] for case in CASES])
def test_json_envelope(command, argv, capsys, tmp_path):
    argv = [arg.replace("{tmp}", str(tmp_path)) for arg in argv]
    assert main(argv + ["--format", "json"]) == 0

    envelope = json.loads(capsys.readouterr().out)
    assert set(envelope) == ENVELOPE_KEYS
    assert envelope["schema_version"] == SCHEMA_VERSION
    assert envelope["command"] == command
    assert isinstance(envelope["rev"], str) and envelope["rev"]
    assert isinstance(envelope["payload"], dict) and envelope["payload"]
