"""Tests for the Machine facade.

Probe/program construction comes from the shared ``conftest.py``
fixtures (``load_program``, ``user_machine``).
"""

import pytest

from repro_testlib import KERNEL_BASE
from repro import (CommitPolicy, FullPolicy, Machine, ProgramBuilder,
                   SafeSpecConfig, SizingMode)


class TestConstruction:
    def test_baseline_has_no_engine(self):
        assert Machine(policy=CommitPolicy.BASELINE).engine is None

    @pytest.mark.parametrize("policy",
                             [CommitPolicy.WFB, CommitPolicy.WFC])
    def test_safespec_policies_have_engine(self, policy):
        machine = Machine(policy=policy)
        assert machine.engine is not None
        assert machine.engine.config.policy is policy

    def test_explicit_config_overrides_policy(self):
        config = SafeSpecConfig(policy=CommitPolicy.WFB,
                                sizing=SizingMode.CUSTOM,
                                full_policy=FullPolicy.BLOCK,
                                dcache_entries=4, icache_entries=4,
                                itlb_entries=4, dtlb_entries=4)
        machine = Machine(policy=CommitPolicy.BASELINE,
                          safespec_config=config)
        assert machine.policy is CommitPolicy.WFB
        assert machine.engine.shadow_dcache.capacity == 4


class TestMemoryHelpers:
    def test_write_read_word(self):
        machine = Machine()
        machine.map_user_range(0x10000, 4096)
        machine.write_word(0x10008, 321)
        assert machine.read_word(0x10008) == 321

    def test_unmapped_write_raises(self):
        with pytest.raises(KeyError):
            Machine().write_word(0x10000, 1)

    def test_unmapped_read_raises(self):
        with pytest.raises(KeyError):
            Machine().read_word(0x10000)

    def test_unmapped_flush_raises(self):
        with pytest.raises(KeyError):
            Machine().flush_address(0x10000)

    def test_kernel_range_blocks_user_runs(self, user_machine,
                                           load_program):
        machine = user_machine(data_bytes=0, kernel=True)
        result = machine.run(load_program(KERNEL_BASE))
        assert result.fault_events


class TestRun:
    def test_code_auto_mapped(self):
        machine = Machine()
        b = ProgramBuilder()
        b.li("r1", 5)
        b.halt()
        result = machine.run(b.build())
        assert result.reg("r1") == 5

    def test_state_persists_across_runs(self, load_program):
        machine = Machine()
        machine.map_user_range(0x10000, 4096)
        program = load_program(0x10000)
        cold = machine.run(program).cycles
        warm = machine.run(program).cycles
        assert warm < cold

    def test_probe_latency_reflects_cache_state(self, load_program):
        machine = Machine()
        machine.map_user_range(0x10000, 4096)
        cold = machine.probe_latency(0x10000)
        machine.run(load_program(0x10000))
        assert machine.probe_latency(0x10000) < cold

    def test_flush_address_restores_miss_latency(self, load_program):
        machine = Machine()
        machine.map_user_range(0x10000, 4096)
        machine.run(load_program(0x10000))
        machine.flush_address(0x10000)
        assert machine.probe_latency(0x10000) > 100

    def test_probe_fetch_latency(self):
        machine = Machine()
        b = ProgramBuilder()
        b.halt()
        machine.run(b.build())
        assert machine.probe_fetch_latency(0x1000) < 100

    def test_probe_translation_latency_sides(self):
        machine = Machine()
        machine.map_user_range(0x10000, 4096)
        d = machine.probe_translation_latency(0x10000, side="d")
        i = machine.probe_translation_latency(0x10000, side="i")
        assert d > 0 and i > 0
