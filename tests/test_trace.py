"""Tests for the pipeline tracer."""

import pytest

from repro import Machine, ProgramBuilder
from repro.errors import ConfigError
from repro.pipeline.core import Core
from repro.pipeline.trace import PipelineTracer


def traced_run(build, tracer=None, **machine_kwargs):
    machine = Machine(**machine_kwargs)
    machine.map_user_range(0x20000, 4096)
    b = ProgramBuilder()
    build(b)
    program = b.build()
    machine.page_table.map_range(program.code_base, program.code_bytes)
    core = Core(program, machine.hierarchy, config=machine.core_config,
                predictor=machine.predictor, btb=machine.btb,
                engine=machine.engine)
    tracer = tracer or PipelineTracer()
    tracer.attach(core)
    result = core.run()
    return tracer, result


def simple_program(b):
    b.li("r1", 0x20000)
    b.load("r2", "r1", 0)
    b.alu("add", "r3", "r2", imm=1)
    b.halt()


class TestLifecycle:
    def test_every_committed_uop_has_full_lifecycle(self):
        tracer, result = traced_run(simple_program)
        commits = tracer.filter(kind="commit")
        assert len(commits) == result.instructions
        first = commits[0].seq
        kinds = [e.kind for e in tracer.lifetime(first)]
        assert kinds == ["fetch", "dispatch", "issue", "commit"]

    def test_cycle_order_monotone_per_uop(self):
        tracer, _ = traced_run(simple_program)
        for seq in {e.seq for e in tracer.events}:
            cycles = [e.cycle for e in tracer.lifetime(seq)]
            assert cycles == sorted(cycles)

    def test_fault_event_recorded(self):
        def build(b):
            b.li("r1", 0xDEAD0000)
            b.load("r2", "r1", 0)
            b.halt()
        tracer, _ = traced_run(build)
        faults = tracer.filter(kind="fault")
        assert len(faults) == 1
        assert "unmapped" in faults[0].text

    def test_squash_events_on_mispredict(self):
        def build(b):
            b.li("r1", 0x20000)
            b.load("r2", "r1", 0)            # cold miss delays the branch
            b.branch("eq", "r2", "r0", "out")  # 0 == 0: taken; predicted NT
            b.li("r3", 1)
            b.label("out")
            b.halt()
        tracer, _ = traced_run(build)
        assert tracer.filter(kind="squash")


class TestFiltering:
    def test_kind_whitelist(self):
        tracer, _ = traced_run(simple_program,
                               tracer=PipelineTracer(kinds=["commit"]))
        assert {e.kind for e in tracer.events} == {"commit"}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            PipelineTracer(kinds=["retire"])

    def test_max_events_cap(self):
        tracer, _ = traced_run(simple_program,
                               tracer=PipelineTracer(max_events=2))
        assert len(tracer.events) == 2


class TestAttachDetach:
    def test_double_attach_rejected(self):
        tracer, _ = traced_run(simple_program)
        machine = Machine()
        b = ProgramBuilder()
        b.halt()
        program = b.build()
        machine.page_table.map_range(program.code_base, program.code_bytes)
        core = Core(program, machine.hierarchy)
        with pytest.raises(ConfigError):
            tracer.attach(core)

    def test_detach_restores_methods(self):
        machine = Machine()
        b = ProgramBuilder()
        b.halt()
        program = b.build()
        machine.page_table.map_range(program.code_base, program.code_bytes)
        core = Core(program, machine.hierarchy)
        tracer = PipelineTracer().attach(core)
        assert "_commit_uop" in vars(core)
        tracer.detach()
        assert "_commit_uop" not in vars(core)

    def test_detach_without_attach_rejected(self):
        with pytest.raises(ConfigError):
            PipelineTracer().detach()


class TestRendering:
    def test_timeline_renders(self):
        tracer, _ = traced_run(simple_program)
        text = tracer.render_timeline(limit=5)
        assert "cycle" in text and "commit" in text or "fetch" in text

    def test_timeline_truncation_note(self):
        tracer, _ = traced_run(simple_program)
        text = tracer.render_timeline(limit=1)
        assert "more events" in text
