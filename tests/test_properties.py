"""Property-based tests (hypothesis) on core data structures/invariants."""

from hypothesis import given, strategies as st

from repro.core.shadow import FullPolicy, ShadowStructure
from repro.isa.registers import to_signed, to_unsigned
from repro.memory.cache import Cache, CacheConfig
from repro.memory.dram import MainMemory
from repro.memory.paging import PagePermissions, Translation
from repro.memory.tlb import TLB, TLBConfig
from repro.statistics import Histogram

addresses = st.integers(min_value=0, max_value=1 << 30)
words = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestCacheProperties:
    @given(st.lists(addresses, max_size=200))
    def test_occupancy_never_exceeds_capacity(self, addrs):
        cache = Cache(CacheConfig("p", 4096, 4, 64, 1))
        for addr in addrs:
            cache.fill(addr)
        assert cache.occupancy() <= cache.config.num_lines
        for cache_set in cache._sets:
            assert len(cache_set) <= cache.config.associativity

    @given(st.lists(addresses, min_size=1, max_size=100))
    def test_last_filled_line_always_present(self, addrs):
        cache = Cache(CacheConfig("p", 4096, 4, 64, 1))
        for addr in addrs:
            cache.fill(addr)
        assert cache.contains(addrs[-1])

    @given(st.lists(addresses, max_size=100), addresses)
    def test_flushed_line_absent(self, addrs, victim):
        cache = Cache(CacheConfig("p", 4096, 4, 64, 1))
        for addr in addrs:
            cache.fill(addr)
        cache.flush_line(victim)
        assert not cache.contains(victim)

    @given(st.lists(addresses, max_size=100))
    def test_contains_is_pure(self, addrs):
        cache = Cache(CacheConfig("p", 4096, 4, 64, 1))
        for addr in addrs:
            cache.fill(addr)
        before = [tuple(s) for s in cache._sets]
        for addr in addrs:
            cache.contains(addr)
        assert [tuple(s) for s in cache._sets] == before


class TestTlbProperties:
    @given(st.lists(st.integers(0, 4096), max_size=200))
    def test_occupancy_bounded(self, vpns):
        tlb = TLB(TLBConfig("p", 16))
        for vpn in vpns:
            tlb.fill(Translation(vpn, vpn, PagePermissions()))
        assert tlb.occupancy() <= 16

    @given(st.lists(st.integers(0, 64), min_size=1, max_size=64))
    def test_most_recent_fill_present(self, vpns):
        tlb = TLB(TLBConfig("p", 8))
        for vpn in vpns:
            tlb.fill(Translation(vpn, vpn, PagePermissions()))
        assert tlb.contains(vpns[-1])


class TestShadowProperties:
    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 20)),
                    max_size=200))
    def test_entry_accounting_balances(self, fills):
        """fills == resident + committed + annulled, always."""
        shadow = ShadowStructure("p", 8, FullPolicy.DROP)
        entries = []
        for i, (key, owner) in enumerate(fills):
            entry = shadow.fill(key, owner, None, i)
            if entry is not None:
                entries.append(entry)
            # retire roughly half of what is resident
            if len(entries) > 4:
                victim = entries.pop(0)
                if victim.owner_seq % 2:
                    shadow.release_committed(victim)
                else:
                    shadow.annul(victim)
        accepted = shadow.stats.counter("fills").value
        retired = shadow.commit_count + shadow.annul_count
        assert accepted == shadow.occupancy() + retired
        assert shadow.occupancy() <= shadow.capacity

    @given(st.integers(1, 64),
           st.lists(st.integers(0, 30), min_size=1, max_size=100))
    def test_never_exceeds_capacity(self, capacity, keys):
        shadow = ShadowStructure("p", capacity, FullPolicy.DROP)
        for i, key in enumerate(keys):
            shadow.fill(key, i, None, i)
        assert shadow.occupancy() <= capacity


class TestHistogramProperties:
    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=300))
    def test_percentile_monotone(self, values):
        h = Histogram("p")
        for v in values:
            h.record(v)
        fractions = [0.1, 0.5, 0.9, 0.99, 1.0]
        results = [h.percentile(f) for f in fractions]
        assert results == sorted(results)
        assert results[-1] == max(values)

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=300))
    def test_percentile_within_observed_range(self, values):
        h = Histogram("p")
        for v in values:
            h.record(v)
        assert min(values) <= h.percentile(0.5) <= max(values)

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=100),
           st.lists(st.integers(0, 100), min_size=1, max_size=100))
    def test_merge_preserves_total(self, first, second):
        a, b = Histogram("a"), Histogram("b")
        for v in first:
            a.record(v)
        for v in second:
            b.record(v)
        a.merge(b)
        assert a.total == len(first) + len(second)


class TestRegisterArithmeticProperties:
    @given(st.integers())
    def test_roundtrip_identity_on_64_bits(self, value):
        assert to_unsigned(to_signed(to_unsigned(value))) == \
            to_unsigned(value)

    @given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    def test_signed_values_preserved(self, value):
        assert to_signed(to_unsigned(value)) == value

    @given(words, words)
    def test_addition_wraps_like_hardware(self, a, b):
        assert to_unsigned(a + b) == (a + b) % (1 << 64)


class TestMemoryProperties:
    @given(st.dictionaries(
        st.integers(0, 1 << 20).map(lambda a: a * 8), words, max_size=50))
    def test_word_store_load_roundtrip(self, writes):
        mem = MainMemory()
        for addr, value in writes.items():
            mem.write_word(addr, value)
        for addr, value in writes.items():
            assert mem.read_word(addr) == value

    @given(st.integers(0, 1 << 20), words)
    def test_word_equals_byte_composition(self, addr, value):
        mem = MainMemory()
        mem.write_word(addr, value)
        composed = sum(mem.read_byte(addr + i) << (8 * i)
                       for i in range(8))
        assert composed == value
