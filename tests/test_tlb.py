"""Unit tests for the TLB model."""

import pytest

from repro.errors import ConfigError
from repro.memory.paging import PagePermissions, Translation
from repro.memory.tlb import TLB, TLBConfig


def entry(vpn, ppn=None):
    return Translation(vpn=vpn, ppn=ppn if ppn is not None else vpn,
                       permissions=PagePermissions())


def small_tlb(entries=4):
    return TLB(TLBConfig("test", entries, 1))


class TestConfig:
    def test_rejects_zero_entries(self):
        with pytest.raises(ConfigError):
            TLBConfig("t", 0)


class TestLookup:
    def test_cold_miss(self):
        tlb = small_tlb()
        assert tlb.lookup(3) is None
        assert tlb.misses == 1

    def test_fill_then_hit(self):
        tlb = small_tlb()
        tlb.fill(entry(3))
        assert tlb.lookup(3).ppn == 3
        assert tlb.hits == 1

    def test_peek_does_not_count_or_reorder(self):
        tlb = small_tlb(entries=2)
        tlb.fill(entry(1))
        tlb.fill(entry(2))
        assert tlb.peek(1) is not None
        assert tlb.hits == 0
        # peek must not refresh LRU: 1 is still the eviction victim
        tlb.fill(entry(3))
        assert not tlb.contains(1)
        assert tlb.contains(2)

    def test_lookup_refreshes_lru(self):
        tlb = small_tlb(entries=2)
        tlb.fill(entry(1))
        tlb.fill(entry(2))
        tlb.lookup(1)
        tlb.fill(entry(3))
        assert tlb.contains(1)
        assert not tlb.contains(2)


class TestFill:
    def test_eviction_returns_victim(self):
        tlb = small_tlb(entries=2)
        tlb.fill(entry(1))
        tlb.fill(entry(2))
        victim = tlb.fill(entry(3))
        assert victim == 1

    def test_refill_existing_no_eviction(self):
        tlb = small_tlb(entries=2)
        tlb.fill(entry(1))
        tlb.fill(entry(2))
        assert tlb.fill(entry(1)) is None
        assert tlb.occupancy() == 2

    def test_occupancy_bounded(self):
        tlb = small_tlb(entries=4)
        for vpn in range(20):
            tlb.fill(entry(vpn))
        assert tlb.occupancy() == 4


class TestInvalidate:
    def test_invalidate_present(self):
        tlb = small_tlb()
        tlb.fill(entry(5))
        assert tlb.invalidate(5)
        assert not tlb.contains(5)

    def test_invalidate_absent(self):
        assert not small_tlb().invalidate(5)

    def test_flush_all(self):
        tlb = small_tlb()
        tlb.fill(entry(1))
        tlb.fill(entry(2))
        tlb.flush_all()
        assert tlb.occupancy() == 0

    def test_miss_rate(self):
        tlb = small_tlb()
        tlb.lookup(1)
        tlb.fill(entry(1))
        tlb.lookup(1)
        assert tlb.miss_rate() == pytest.approx(0.5)
