"""Unit tests for page tables and permissions."""

import pytest

from repro.errors import ConfigError
from repro.memory.paging import (PAGE_SIZE, PagePermissions, PageTable,
                                 PrivilegeLevel, page_offset, vpn_of)


class TestPagePermissions:
    def test_default_allows_user_read(self):
        perms = PagePermissions()
        assert perms.allows(write=False, execute=False,
                            privilege=PrivilegeLevel.USER)

    def test_supervisor_only_blocks_user(self):
        perms = PagePermissions(supervisor_only=True)
        assert not perms.allows(write=False, execute=False,
                                privilege=PrivilegeLevel.USER)

    def test_supervisor_only_allows_supervisor(self):
        perms = PagePermissions(supervisor_only=True)
        assert perms.allows(write=False, execute=False,
                            privilege=PrivilegeLevel.SUPERVISOR)

    def test_readonly_blocks_write(self):
        perms = PagePermissions(writable=False)
        assert not perms.allows(write=True, execute=False,
                                privilege=PrivilegeLevel.USER)
        assert perms.allows(write=False, execute=False,
                            privilege=PrivilegeLevel.USER)

    def test_nx_blocks_execute(self):
        perms = PagePermissions(executable=False)
        assert not perms.allows(write=False, execute=True,
                                privilege=PrivilegeLevel.USER)


class TestPageTable:
    def test_unmapped_lookup_is_none(self):
        assert PageTable().lookup(0x1234) is None

    def test_identity_map(self):
        pt = PageTable()
        pt.map_page(5)
        translation = pt.lookup(5 * PAGE_SIZE + 100)
        assert translation is not None
        assert translation.physical(5 * PAGE_SIZE + 100) == \
            5 * PAGE_SIZE + 100

    def test_non_identity_map(self):
        pt = PageTable()
        pt.map_page(vpn=1, ppn=9)
        translation = pt.lookup(PAGE_SIZE + 8)
        assert translation.physical(PAGE_SIZE + 8) == 9 * PAGE_SIZE + 8

    def test_map_range_covers_partial_pages(self):
        pt = PageTable()
        pt.map_range(100, PAGE_SIZE)  # straddles two pages
        assert pt.is_mapped(100)
        assert pt.is_mapped(PAGE_SIZE + 50)
        assert pt.mapped_pages() == 2

    def test_map_range_rejects_empty(self):
        with pytest.raises(ConfigError):
            PageTable().map_range(0, 0)

    def test_supervisor_translation_returned_to_walker(self):
        """Meltdown's P1: the walk succeeds even for supervisor pages —
        the permission check is separate."""
        pt = PageTable()
        pt.map_page(3, permissions=PagePermissions(supervisor_only=True))
        translation = pt.lookup(3 * PAGE_SIZE)
        assert translation is not None
        assert not translation.permissions.allows(
            write=False, execute=False, privilege=PrivilegeLevel.USER)

    def test_negative_vpn_rejected(self):
        with pytest.raises(ConfigError):
            PageTable().map_page(-1)

    def test_walk_levels_validated(self):
        with pytest.raises(ConfigError):
            PageTable(walk_levels=0)


class TestHelpers:
    def test_vpn_of(self):
        assert vpn_of(PAGE_SIZE * 7 + 13) == 7

    def test_page_offset(self):
        assert page_offset(PAGE_SIZE * 7 + 13) == 13
