"""Shared test constants and machine/program construction helpers.

Importable by name from any test module (``from repro_testlib import
DATA_BASE, POLICIES``) — a plain module rather than ``conftest`` so the
benchmarks' own conftest can never shadow it.  The pytest fixtures in
``tests/conftest.py`` wrap these factories.
"""

from repro import CommitPolicy, Machine, ProgramBuilder

DATA_BASE = 0x20000
KERNEL_BASE = 0x80000

# The paper's three commit policies, in matrix order.
POLICIES = (CommitPolicy.BASELINE, CommitPolicy.WFB, CommitPolicy.WFC)


def make_user_machine(policy=CommitPolicy.BASELINE, data_bytes=64 * 1024,
                      kernel=False, **machine_kwargs):
    """A fresh machine with the standard user data region mapped."""
    machine = Machine(policy=policy, **machine_kwargs)
    if data_bytes:
        machine.map_user_range(DATA_BASE, data_bytes)
    if kernel:
        machine.map_kernel_range(KERNEL_BASE, 4096)
    return machine


def build_and_run(build, policy=CommitPolicy.BASELINE, setup=None,
                  regs=None, kernel=False, **kwargs):
    """Build a program via ``build(builder)`` and run it on a fresh
    machine; returns ``(machine, result)``."""
    machine = make_user_machine(policy=policy, kernel=kernel)
    if setup:
        setup(machine)
    b = ProgramBuilder()
    build(b)
    return machine, machine.run(b.build(), initial_registers=regs, **kwargs)


def make_load_program(addr, offset=0):
    """The ubiquitous probe program: ``li base / load / halt``."""
    b = ProgramBuilder()
    b.li("r1", addr)
    b.load("r2", "r1", offset)
    b.halt()
    return b.build()
