"""Tests for the prime+probe receiver and the Spectre v1 P+P variant."""

from repro import CommitPolicy, Machine, ProgramBuilder
from repro.attacks.channels import PrimeProbeChannel
from repro.attacks.spectre_pp import run_spectre_v1_prime_probe

BASELINE = CommitPolicy.BASELINE
WFB = CommitPolicy.WFB
WFC = CommitPolicy.WFC


class TestPrimeProbeChannel:
    def test_geometry_matches_l1(self):
        machine = Machine()
        channel = PrimeProbeChannel(machine)
        assert channel.num_sets == 64
        assert channel.ways == 8

    def test_prime_lines_map_to_their_set(self):
        machine = Machine()
        channel = PrimeProbeChannel(machine)
        for set_index in (0, 17, 63):
            for way in range(channel.ways):
                addr = channel.line_address(set_index, way)
                assert machine.hierarchy.l1d.set_index(addr) == set_index

    def test_prime_fills_every_set(self):
        machine = Machine()
        channel = PrimeProbeChannel(machine)
        channel.prime()
        l1d = machine.hierarchy.l1d
        assert l1d.occupancy() == l1d.config.num_lines

    def test_probe_detects_targeted_eviction(self):
        machine = Machine()
        channel = PrimeProbeChannel(machine)
        channel.prime()
        channel.calibrate()     # quiescent: no noise sets
        channel.prime()
        # a committed victim access to set 23 evicts one prime line
        victim_addr = 0x50_0000 + 23 * 64
        machine.map_user_range(0x50_0000, 8192)
        b = ProgramBuilder(code_base=0x76_000)
        b.li("r1", victim_addr)
        b.load("r2", "r1", 0)
        b.halt()
        machine.run(b.build())
        outcome = channel.probe()
        assert 23 in outcome.hot_slots

    def test_calibration_removes_steady_noise(self):
        machine = Machine()
        channel = PrimeProbeChannel(machine)
        machine.map_user_range(0x50_0000, 8192)
        b = ProgramBuilder(code_base=0x76_000)
        b.li("r1", 0x50_0000)
        b.load("r2", "r1", 0)
        b.halt()
        victim = b.build()
        channel.prime()
        machine.run(victim)
        noise = channel.calibrate()
        channel.prime()
        machine.run(victim)           # identical victim: no new signal
        outcome = channel.probe()
        assert channel.set_of(0x50_0000) in noise
        assert outcome.hot_slots == []


class TestSpectreV1PrimeProbe:
    def test_baseline_leaks(self):
        result = run_spectre_v1_prime_probe(BASELINE, secret=42)
        assert result.success
        assert result.details["hot_sets"] == [result.details["expected_set"]]

    def test_wfb_closes(self):
        assert run_spectre_v1_prime_probe(WFB, secret=42).closed

    def test_wfc_closes(self):
        assert run_spectre_v1_prime_probe(WFC, secret=42).closed

    def test_different_secret_different_set(self):
        a = run_spectre_v1_prime_probe(BASELINE, secret=7)
        b = run_spectre_v1_prime_probe(BASELINE, secret=9)
        assert a.success and b.success
        assert a.details["expected_set"] != b.details["expected_set"]
