"""Unit tests for the in-order reference oracle."""

import pytest

from repro_testlib import DATA_BASE as DATA, KERNEL_BASE
from repro import ProgramBuilder
from repro.errors import OracleError, SimulationError
from repro.memory.paging import PrivilegeLevel
from repro.verify import ReferenceOracle


def run_oracle(build, setup=None, regs=None, kernel=False, **kwargs):
    oracle = ReferenceOracle()
    oracle.map_user_range(DATA, 64 * 1024)
    if kernel:
        oracle.map_kernel_range(KERNEL_BASE, 4096)
    if setup:
        setup(oracle)
    b = ProgramBuilder()
    build(b)
    return oracle, oracle.run(b.build(), initial_registers=regs, **kwargs)


class TestAluSemantics:
    @pytest.mark.parametrize("op,lhs,rhs,expected", [
        ("add", 5, 3, 8),
        ("sub", 5, 3, 2),
        ("mul", 5, 3, 15),
        ("and", 0b1100, 0b1010, 0b1000),
        ("or", 0b1100, 0b1010, 0b1110),
        ("xor", 0b1100, 0b1010, 0b0110),
        ("shl", 3, 2, 12),
        ("shr", 12, 2, 3),
    ])
    def test_register_ops(self, op, lhs, rhs, expected):
        def build(b):
            b.li("r1", lhs)
            b.li("r2", rhs)
            b.alu(op, "r3", "r1", "r2")
            b.halt()
        _, result = run_oracle(build)
        assert result.reg(3) == expected

    def test_wraparound_and_masked_shift(self):
        def build(b):
            b.li("r1", 0)
            b.alu("sub", "r2", "r1", imm=1)       # 2**64 - 1
            b.li("r3", 1)
            b.alu("shl", "r4", "r3", imm=65)      # shift amount & 63 == 1
            b.halt()
        _, result = run_oracle(build)
        assert result.reg(2) == 2**64 - 1
        assert result.reg(4) == 2

    def test_initial_registers(self):
        def build(b):
            b.alu("add", "r2", "r1", imm=0)
            b.halt()
        _, result = run_oracle(build, regs={1: 31337})
        assert result.reg(2) == 31337


class TestMemory:
    def test_store_load_roundtrip_and_persistence(self):
        def build(b):
            b.li("r1", DATA)
            b.li("r2", 1234)
            b.store("r1", "r2", 8)
            b.load("r3", "r1", 8)
            b.halt()
        oracle, result = run_oracle(build)
        assert result.reg(3) == 1234
        assert oracle.read_word(DATA + 8) == 1234

    def test_load_from_preinitialised_memory(self):
        def setup(oracle):
            oracle.write_word(DATA + 24, 999)

        def build(b):
            b.li("r1", DATA)
            b.load("r2", "r1", 24)
            b.halt()
        _, result = run_oracle(build, setup=setup)
        assert result.reg(2) == 999

    def test_unmapped_setup_access_raises(self):
        with pytest.raises(KeyError):
            ReferenceOracle().write_word(0x999000, 1)


class TestControlFlow:
    def test_loop_counts(self):
        def build(b):
            b.li("r1", 10)
            b.li("r2", 0)
            b.label("loop")
            b.alu("add", "r2", "r2", imm=3)
            b.alu("sub", "r1", "r1", imm=1)
            b.branch("ne", "r1", "r0", "loop")
            b.halt()
        _, result = run_oracle(build)
        assert result.reg(2) == 30

    def test_signed_compare(self):
        def build(b):
            b.li("r1", 0)
            b.alu("sub", "r1", "r1", imm=1)   # -1 signed
            b.li("r2", 1)
            b.branch("lt", "r1", "r2", "less")
            b.li("r3", 111)
            b.label("less")
            b.halt()
        _, result = run_oracle(build)
        assert result.reg(3) == 0             # -1 < 1: skip taken

    def test_jmpi(self):
        def build(b):
            b.li("r1", 0x1000 + 3 * 16)
            b.jmpi("r1")
            b.li("r2", 111)                   # skipped
            b.halt()
        _, result = run_oracle(build)
        assert result.reg(2) == 0
        assert result.halted_reason == "halt"

    def test_running_off_code(self):
        def build(b):
            b.li("r1", 5)
        _, result = run_oracle(build)
        assert result.halted_reason == "ran_off_code"
        assert result.instructions == 1

    def test_instruction_budget(self):
        def build(b):
            b.label("spin")
            b.alu("add", "r1", "r1", imm=1)
            b.jmp("spin")
        _, result = run_oracle(build, max_instructions=50)
        assert result.halted_reason == "budget"
        assert result.instructions == 50

    def test_runaway_loop_hits_step_limit(self):
        def build(b):
            b.label("spin")
            b.jmp("spin")
        with pytest.raises(SimulationError):
            run_oracle(build, step_limit=100)


class TestFaults:
    def test_unmapped_load_stops_without_handler(self):
        def build(b):
            b.li("r1", 0xDEAD0000)
            b.load("r2", "r1", 0)
            b.li("r3", 1)
            b.halt()
        _, result = run_oracle(build)
        assert result.halted_reason == "fault"
        assert result.fault_events[0].kind == "unmapped"
        assert result.reg(2) == 0 and result.reg(3) == 0
        # the faulting instruction does not retire
        assert result.instructions == 1

    def test_kernel_load_faults_for_user_but_not_supervisor(self):
        def build(b):
            b.li("r1", KERNEL_BASE)
            b.load("r2", "r1", 0)
            b.halt()

        def setup(oracle):
            oracle.memory.write_word(KERNEL_BASE, 7)

        _, result = run_oracle(build, setup=setup, kernel=True)
        assert result.fault_events[0].kind == "permission"
        assert result.reg(2) == 0

        _, result = run_oracle(build, setup=setup, kernel=True,
                               privilege=PrivilegeLevel.SUPERVISOR)
        assert not result.fault_events
        assert result.reg(2) == 7

    def test_store_permission_fault_leaves_memory_unchanged(self):
        def build(b):
            b.li("r1", KERNEL_BASE)
            b.li("r2", 1)
            b.store("r1", "r2", 0)
            b.halt()
        oracle, result = run_oracle(build, kernel=True)
        assert result.fault_events[0].kind == "permission"
        assert oracle.memory.read_word(KERNEL_BASE) == 0

    def test_fault_handler_redirect(self):
        b = ProgramBuilder()
        b.li("r1", 0xDEAD0000)
        b.load("r2", "r1", 0)
        b.halt()
        b.label("handler")
        b.li("r3", 99)
        b.halt()
        program = b.build()
        oracle = ReferenceOracle()
        result = oracle.run(program,
                            fault_handler_pc=program.label_pc("handler"))
        assert result.halted_reason == "halt"
        assert result.reg(3) == 99
        assert len(result.fault_events) == 1

    def test_clflush_never_faults(self):
        def build(b):
            b.li("r1", 0xDEAD0000)
            b.clflush("r1", 0)
            b.halt()
        _, result = run_oracle(build)
        assert result.halted_reason == "halt"
        assert not result.fault_events


class TestTaintTracking:
    def test_rdtsc_taints_and_li_clears(self):
        def build(b):
            b.rdtsc("r1")
            b.rdtsc("r2")
            b.li("r2", 7)
            b.halt()
        _, result = run_oracle(build)
        assert result.tainted == frozenset({1})
        assert 2 in result.untainted_registers()
        assert 1 not in result.untainted_registers()

    def test_taint_propagates_through_alu(self):
        def build(b):
            b.rdtsc("r1")
            b.alu("add", "r2", "r1", imm=1)
            b.alu("xor", "r3", "r2", "r2")
            b.halt()
        _, result = run_oracle(build)
        assert result.tainted == frozenset({1, 2, 3})

    def test_load_clears_taint(self):
        def build(b):
            b.rdtsc("r2")
            b.li("r1", DATA)
            b.load("r2", "r1", 0)
            b.halt()
        _, result = run_oracle(build)
        assert result.tainted == frozenset()

    @pytest.mark.parametrize("use", ["branch", "load", "store", "jmpi",
                                     "clflush"])
    def test_architectural_use_of_taint_rejected(self, use):
        def build(b):
            b.rdtsc("r1")
            if use == "branch":
                b.branch("eq", "r1", "r0", "end")
            elif use == "load":
                b.load("r2", "r1", 0)
            elif use == "store":
                b.store("r1", "r2", 0)
            elif use == "jmpi":
                b.jmpi("r1")
            else:
                b.clflush("r1", 0)
            b.label("end")
            b.halt()
        with pytest.raises(OracleError):
            run_oracle(build)

    def test_store_of_tainted_value_rejected(self):
        def build(b):
            b.rdtsc("r2")
            b.li("r1", DATA)
            b.store("r1", "r2", 0)
            b.halt()
        with pytest.raises(OracleError):
            run_oracle(build)
