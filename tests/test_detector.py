"""Tests for the shadow-occupancy anomaly detector (paper §VII)."""

import pytest

from repro import CommitPolicy, Machine, ProgramBuilder
from repro.core.detector import (DEFAULT_THRESHOLDS, ShadowAnomalyDetector)
from repro.errors import ConfigError


class TestConfiguration:
    def test_default_thresholds_cover_all_structures(self):
        assert set(DEFAULT_THRESHOLDS) == {
            "shadow_dcache", "shadow_icache", "shadow_itlb", "shadow_dtlb"}

    def test_unknown_structure_rejected(self):
        with pytest.raises(ConfigError):
            ShadowAnomalyDetector({"shadow_l4": 10})

    def test_bad_threshold_rejected(self):
        with pytest.raises(ConfigError):
            ShadowAnomalyDetector({"shadow_dcache": 0})

    def test_double_attach_rejected(self):
        machine = Machine(policy=CommitPolicy.WFC)
        detector = ShadowAnomalyDetector().attach(machine.engine)
        with pytest.raises(ConfigError):
            detector.attach(machine.engine)
        detector.detach()

    def test_detach_without_attach_rejected(self):
        with pytest.raises(ConfigError):
            ShadowAnomalyDetector().detach()


class TestDetection:
    def test_benign_program_raises_no_alarm(self):
        machine = Machine(policy=CommitPolicy.WFC)
        machine.map_user_range(0x20000, 4096)
        detector = ShadowAnomalyDetector().attach(machine.engine)
        b = ProgramBuilder()
        b.li("r1", 0x20000)
        for offset in range(0, 256, 64):
            b.load("r2", "r1", offset)
        b.halt()
        machine.run(b.build())
        report = detector.detach()
        assert not report.attack_suspected
        assert report.peak_occupancy["shadow_dcache"] >= 1

    def test_burst_past_threshold_alarms(self):
        machine = Machine(policy=CommitPolicy.WFC)
        machine.map_user_range(0x100000, 1 << 20)
        detector = ShadowAnomalyDetector(
            {"shadow_dcache": 4}).attach(machine.engine)
        b = ProgramBuilder()
        b.li("r1", 0x100000)
        # 16 independent cold loads to distinct lines: in flight together
        for i in range(16):
            b.load("r2", "r1", i * 4096)
        b.halt()
        machine.run(b.build())
        report = detector.detach()
        assert report.attack_suspected
        assert any(e.structure == "shadow_dcache" for e in report.events)
        assert "shadow_dcache" in str(report.events[0])

    def test_detach_restores_engine(self):
        machine = Machine(policy=CommitPolicy.WFC)
        detector = ShadowAnomalyDetector().attach(machine.engine)
        assert "set_cycle" in vars(machine.engine)   # shadowed
        detector.detach()
        assert "set_cycle" not in vars(machine.engine)  # restored

    def test_debounce_one_event_per_excursion(self):
        machine = Machine(policy=CommitPolicy.WFC)
        machine.map_user_range(0x100000, 1 << 20)
        detector = ShadowAnomalyDetector(
            {"shadow_dcache": 2}).attach(machine.engine)
        b = ProgramBuilder()
        b.li("r1", 0x100000)
        for i in range(12):
            b.load("r2", "r1", i * 4096)
        b.halt()
        machine.run(b.build())
        report = detector.detach()
        dcache_events = [e for e in report.events
                         if e.structure == "shadow_dcache"]
        # a single long excursion -> a small number of de-bounced events
        assert 1 <= len(dcache_events) <= 3


class TestDetectsTsaTrojan:
    def test_tsa_trojan_trips_the_detector(self):
        """The TSA Trojan must fill a shadow structure to capacity inside
        one window — the exact anomaly the paper suggests detecting."""
        from repro.attacks.tsa import _run_tsa
        from repro.core.safespec import SafeSpecConfig, SizingMode
        from repro.core.shadow import FullPolicy
        import repro.attacks.tsa as tsa_module

        events = []
        original_machine_cls = tsa_module.Machine

        class MonitoredMachine(original_machine_cls):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                if self.engine is not None:
                    detector = ShadowAnomalyDetector({"shadow_dtlb": 3})
                    detector.attach(self.engine)
                    self._detector = detector
                    events.append(detector.report.events)

        tsa_module.Machine = MonitoredMachine
        try:
            config = SafeSpecConfig(
                policy=CommitPolicy.WFC, sizing=SizingMode.CUSTOM,
                full_policy=FullPolicy.DROP,
                dcache_entries=256, icache_entries=256,
                itlb_entries=64, dtlb_entries=4)
            from repro.spec import MachineSpec
            _run_tsa(CommitPolicy.WFC, 1,
                     MachineSpec().derive(safespec=config))
        finally:
            tsa_module.Machine = original_machine_cls
        assert any(event_list for event_list in events), \
            "the trojan's shadow-dTLB burst should trip the detector"
