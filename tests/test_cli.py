"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_attack_command(self):
        args = build_parser().parse_args(
            ["attack", "spectre_v1", "--policy", "wfc", "--secret", "7"])
        assert args.name == "spectre_v1"
        assert args.secret == 7

    def test_unknown_attack_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attack", "rowhammer"])

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["attack", "spectre_v1", "--policy", "strict"])

    def test_attack_has_exec_flags(self):
        args = build_parser().parse_args(
            ["attack", "all", "--jobs", "3", "--no-cache",
             "--format", "json"])
        assert args.jobs == 3 and args.no_cache
        assert args.format == "json"

    def test_verify_defaults(self):
        args = build_parser().parse_args(["verify"])
        assert args.count == 10 and args.seed == 0
        assert args.profile == "mixed" and args.policy is None

    def test_verify_flags(self):
        args = build_parser().parse_args(
            ["verify", "--count", "3", "--seed", "7",
             "--profile", "alu", "--policy", "wfc", "--jobs", "2"])
        assert args.count == 3 and args.seed == 7
        assert args.profile == "alu" and args.jobs == 2


class TestCommands:
    def test_table5(self, capsys):
        assert main(["table5"]) == 0
        out = capsys.readouterr().out
        assert "Secure" in out and "WFC" in out

    def test_asm_stdin(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("li r1, #5\nhalt"))
        assert main(["asm", "-"]) == 0
        out = capsys.readouterr().out
        assert "li r1, #5" in out

    def test_asm_file(self, capsys, tmp_path):
        source = tmp_path / "prog.s"
        source.write_text("nop\nhalt\n")
        assert main(["asm", str(source)]) == 0
        assert "halt" in capsys.readouterr().out

    def test_asm_error_reported(self, capsys, tmp_path):
        source = tmp_path / "bad.s"
        source.write_text("frobnicate r1\n")
        assert main(["asm", str(source)]) == 1
        assert "error" in capsys.readouterr().err

    def test_workload(self, capsys):
        assert main(["workload", "namd", "--instructions", "1000"]) == 0
        out = capsys.readouterr().out
        assert "namd" in out and "IPC" in out

    def test_attack_single(self, capsys):
        assert main(["attack", "spectre_v1", "--policy", "wfc"]) == 0
        out = capsys.readouterr().out
        assert "spectre_v1" in out and "closed" in out

    def test_figures_small(self, capsys):
        assert main(["figures", "--benchmarks", "namd",
                     "--instructions", "1500"]) == 0
        out = capsys.readouterr().out
        assert "Figure 11" in out
        assert "Figure 16" in out

    def test_verify_small(self, capsys):
        assert main(["verify", "--count", "1", "--seed", "0",
                     "--policy", "wfc", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "cases ok" in out

    def test_verify_json(self, capsys):
        import json

        assert main(["verify", "--count", "1", "--seed", "2",
                     "--policy", "baseline", "--no-cache",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)["payload"]
        assert payload["failures"] == 0
        assert payload["verdicts"][0]["seed"] == 2


class TestConfigErrorReporting:
    """Bad ``--set`` paths (and other config mistakes) must exit
    non-zero with a one-line ``error:`` message — never a traceback."""

    @pytest.mark.parametrize("argv", [
        ["attack", "spectre_v1", "--policy", "wfc",
         "--set", "bogus.path=1"],
        ["attack", "spectre_v1", "--set", "core.rob_entries=abc"],
        ["verify", "--count", "1", "--set", "nope=1"],
        ["verify", "--count", "1", "--set", "core.rob_entries"],
        ["verify", "--count", "1", "--profile", "nope"],
        ["run", "namd", "--set", "safespec.sizing=weird"],
    ])
    def test_bad_config_is_one_line_error(self, capsys, argv):
        assert main(argv) == 1
        captured = capsys.readouterr()
        assert captured.err.startswith("error: ")
        assert "Traceback" not in captured.err
        assert len(captured.err.strip().splitlines()) == 1
