"""Unit tests for the shadow structures."""

import pytest

from repro.core.shadow import FullPolicy, ShadowStructure
from repro.errors import ConfigError


def make(capacity=4, policy=FullPolicy.DROP):
    return ShadowStructure("test", capacity, policy)


class TestFill:
    def test_fill_and_lookup(self):
        shadow = make()
        entry = shadow.fill(0x1000, owner_seq=1, payload=None, cycle=0)
        assert entry is not None
        assert shadow.lookup(0x1000) is entry

    def test_lookup_miss(self):
        assert make().lookup(0x1000) is None

    def test_newest_entry_wins_on_duplicate_key(self):
        shadow = make()
        shadow.fill(0x1000, 1, None, 0)
        second = shadow.fill(0x1000, 2, None, 1)
        assert shadow.lookup(0x1000) is second

    def test_occupancy_counts_entries_not_keys(self):
        shadow = make()
        shadow.fill(0x1000, 1, None, 0)
        shadow.fill(0x1000, 2, None, 0)
        assert shadow.occupancy() == 2

    def test_capacity_validated(self):
        with pytest.raises(ConfigError):
            make(capacity=0)


class TestFullPolicies:
    def test_drop_discards_when_full(self):
        shadow = make(capacity=2, policy=FullPolicy.DROP)
        assert shadow.fill(1, 1, None, 0)
        assert shadow.fill(2, 2, None, 0)
        assert shadow.fill(3, 3, None, 0) is None
        assert shadow.stats.counter("drops").value == 1
        assert shadow.occupancy() == 2

    def test_block_counts_blocks(self):
        shadow = make(capacity=1, policy=FullPolicy.BLOCK)
        shadow.fill(1, 1, None, 0)
        assert shadow.fill(2, 2, None, 0) is None
        assert shadow.stats.counter("blocks").value == 1

    def test_has_space(self):
        shadow = make(capacity=1)
        assert shadow.has_space()
        shadow.fill(1, 1, None, 0)
        assert not shadow.has_space()
        assert shadow.full


class TestCommitAnnul:
    def test_release_committed_removes_entry(self):
        shadow = make()
        entry = shadow.fill(1, 1, None, 0)
        shadow.release_committed(entry)
        assert shadow.lookup(1) is None
        assert shadow.commit_count == 1

    def test_annul_removes_entry(self):
        shadow = make()
        entry = shadow.fill(1, 1, None, 0)
        shadow.annul(entry)
        assert shadow.lookup(1) is None
        assert shadow.annul_count == 1

    def test_double_remove_is_idempotent(self):
        shadow = make()
        entry = shadow.fill(1, 1, None, 0)
        shadow.annul(entry)
        shadow.annul(entry)
        assert shadow.occupancy() == 0

    def test_commit_rate(self):
        shadow = make()
        kept = shadow.fill(1, 1, None, 0)
        dropped = shadow.fill(2, 2, None, 0)
        shadow.release_committed(kept)
        shadow.annul(dropped)
        assert shadow.commit_rate() == pytest.approx(0.5)

    def test_commit_rate_empty(self):
        assert make().commit_rate() == 0.0

    def test_remove_one_of_two_same_key(self):
        shadow = make()
        first = shadow.fill(1, 1, None, 0)
        second = shadow.fill(1, 2, None, 0)
        shadow.annul(second)
        assert shadow.lookup(1) is first


class TestOccupancySampling:
    def test_sampling_records_histogram(self):
        shadow = make()
        shadow.sample_occupancy()
        shadow.fill(1, 1, None, 0)
        shadow.sample_occupancy()
        hist = shadow.occupancy_histogram
        assert hist.total == 2
        assert hist.max == 1

    def test_snapshot(self):
        shadow = make()
        shadow.fill(1, 10, None, 0)
        shadow.fill(2, 20, None, 0)
        assert sorted(shadow.entries_snapshot()) == [(1, 10), (2, 20)]
