"""Integration tests for the out-of-order core's execution semantics.

Machine/program construction comes from the shared ``conftest.py``
fixtures (``run_program``, ``user_machine``); this file owns only the
semantics being asserted.
"""

import pytest

from repro_testlib import DATA_BASE as DATA, KERNEL_BASE, POLICIES
from repro import CommitPolicy, ProgramBuilder
from repro.memory.paging import PrivilegeLevel


class TestAluSemantics:
    @pytest.mark.parametrize("op,lhs,rhs,expected", [
        ("add", 5, 3, 8),
        ("sub", 5, 3, 2),
        ("mul", 5, 3, 15),
        ("and", 0b1100, 0b1010, 0b1000),
        ("or", 0b1100, 0b1010, 0b1110),
        ("xor", 0b1100, 0b1010, 0b0110),
        ("shl", 3, 2, 12),
        ("shr", 12, 2, 3),
    ])
    def test_register_ops(self, run_program, op, lhs, rhs, expected):
        def build(b):
            b.li("r1", lhs)
            b.li("r2", rhs)
            b.alu(op, "r3", "r1", "r2")
            b.halt()
        _, result = run_program(build)
        assert result.reg("r3") == expected

    def test_sub_wraps_unsigned(self, run_program):
        def build(b):
            b.li("r1", 0)
            b.alu("sub", "r2", "r1", imm=1)
            b.halt()
        _, result = run_program(build)
        assert result.reg("r2") == 2**64 - 1

    def test_immediate_form(self, run_program):
        def build(b):
            b.li("r1", 10)
            b.alu("add", "r2", "r1", imm=7)
            b.halt()
        _, result = run_program(build)
        assert result.reg("r2") == 17

    def test_dependency_chain(self, run_program):
        def build(b):
            b.li("r1", 1)
            for _ in range(10):
                b.alu("add", "r1", "r1", "r1")  # doubles each time
            b.halt()
        _, result = run_program(build)
        assert result.reg("r1") == 1024


class TestMemorySemantics:
    def test_store_load_roundtrip(self, run_program):
        def build(b):
            b.li("r1", DATA)
            b.li("r2", 1234)
            b.store("r1", "r2", 0)
            b.load("r3", "r1", 0)
            b.halt()
        _, result = run_program(build)
        assert result.reg("r3") == 1234

    def test_store_to_load_forwarding_preserves_value(self, run_program):
        """A load right behind the store must see the store's data even
        though the store has not committed when the load issues."""
        def build(b):
            b.li("r1", DATA)
            b.li("r2", 77)
            b.store("r1", "r2", 8)
            b.load("r3", "r1", 8)
            b.alu("add", "r4", "r3", imm=1)
            b.halt()
        _, result = run_program(build)
        assert result.reg("r4") == 78

    def test_memory_visible_after_store_commit(self, run_program):
        def build(b):
            b.li("r1", DATA)
            b.li("r2", 55)
            b.store("r1", "r2", 16)
            b.halt()
        machine, _ = run_program(build)
        assert machine.read_word(DATA + 16) == 55

    def test_load_from_preinitialised_memory(self, run_program):
        def setup(machine):
            machine.write_word(DATA + 24, 999)

        def build(b):
            b.li("r1", DATA)
            b.load("r2", "r1", 24)
            b.halt()
        _, result = run_program(build, setup=setup)
        assert result.reg("r2") == 999

    def test_initial_registers(self, run_program):
        def build(b):
            b.alu("add", "r2", "r1", imm=0)
            b.halt()
        _, result = run_program(build, regs={1: 31337})
        assert result.reg("r2") == 31337


class TestControlFlow:
    def test_taken_branch_skips(self, run_program):
        def build(b):
            b.li("r1", 1)
            b.branch("ne", "r1", "r0", "skip")
            b.li("r2", 111)   # must be skipped
            b.label("skip")
            b.li("r3", 222)
            b.halt()
        _, result = run_program(build)
        assert result.reg("r2") == 0
        assert result.reg("r3") == 222

    def test_not_taken_branch_falls_through(self, run_program):
        def build(b):
            b.li("r1", 0)
            b.branch("ne", "r1", "r0", "skip")
            b.li("r2", 111)
            b.label("skip")
            b.halt()
        _, result = run_program(build)
        assert result.reg("r2") == 111

    def test_loop_counts_correctly(self, run_program):
        def build(b):
            b.li("r1", 10)
            b.li("r2", 0)
            b.label("loop")
            b.alu("add", "r2", "r2", imm=3)
            b.alu("sub", "r1", "r1", imm=1)
            b.branch("ne", "r1", "r0", "loop")
            b.halt()
        _, result = run_program(build)
        assert result.reg("r2") == 30

    def test_jmp(self, run_program):
        def build(b):
            b.jmp("end")
            b.li("r1", 1)
            b.label("end")
            b.halt()
        _, result = run_program(build)
        assert result.reg("r1") == 0

    def test_jmpi_lands_on_register_target(self, run_program):
        def build(b):
            b.li("r1", 0)      # patched below via label math is awkward;
            b.jmp("setup")     # compute target with a second jump instead
            b.label("target")
            b.li("r2", 42)
            b.halt()
            b.label("setup")
            # target label is at index 2 -> pc = base + 2*16
            b.li("r1", 0x1000 + 2 * 16)
            b.jmpi("r1")
        _, result = run_program(build)
        assert result.reg("r2") == 42

    def test_mispredicted_branch_leaves_no_architectural_effects(
            self, run_program):
        """Wrong-path writes must never reach the register file."""
        def setup(machine):
            machine.write_word(DATA, 1)

        def build(b):
            b.li("r1", DATA)
            b.load("r2", "r1", 0)          # r2 = 1, delayed (cold miss)
            b.branch("eq", "r2", "r0", "wrong")  # predicted NT... actual NT
            b.jmp("end")
            b.label("wrong")
            b.li("r3", 666)
            b.label("end")
            b.halt()
        _, result = run_program(build, setup=setup)
        assert result.reg("r3") == 0

    def test_branch_wrong_path_squashed_after_training(self, user_machine):
        """Train a branch one way, then flip the condition: the stale
        prediction speculates down the wrong path, which must be fully
        annulled."""
        machine = user_machine(data_bytes=4096)
        machine.write_word(DATA, 0)
        b = ProgramBuilder()
        b.li("r1", DATA)
        b.load("r2", "r1", 0)
        b.branch("eq", "r2", "r0", "zero_path")
        b.li("r3", 1)                       # value != 0 path
        b.jmp("end")
        b.label("zero_path")
        b.li("r3", 2)                       # value == 0 path
        b.label("end")
        b.halt()
        program = b.build()
        for _ in range(4):                  # train: value == 0
            assert machine.run(program).reg("r3") == 2
        machine.write_word(DATA, 5)         # flip the condition
        result = machine.run(program)
        assert result.reg("r3") == 1
        assert result.counters["mispredicts"] >= 1


class TestSerialisation:
    def test_rdtsc_monotonic_and_ordered(self, run_program):
        def build(b):
            b.rdtsc("r1")
            b.li("r2", DATA)
            b.load("r3", "r2", 0)       # cold miss: ~200 cycles
            b.alu("and", "r4", "r3", imm=0)
            b.rdtsc("r5")
            b.alu("add", "r5", "r5", "r4")  # depend on the load
            b.halt()
        _, result = run_program(build)
        # The second timestamp must include the full load latency.
        assert result.reg("r5") - result.reg("r1") > 150

    def test_fence_blocks_younger_issue(self, run_program):
        def build(b):
            b.li("r1", DATA)
            b.load("r2", "r1", 0)
            b.fence()
            b.rdtsc("r3")
            b.halt()
        _, result = run_program(build)
        assert result.reg("r3") > 150  # rdtsc issued after fence drained

    def test_clflush_evicts_at_commit(self, user_machine):
        machine = user_machine(data_bytes=4096)
        b = ProgramBuilder()
        b.li("r1", DATA)
        b.load("r2", "r1", 0)     # brings the line in
        b.clflush("r1", 0)
        b.halt()
        machine.run(b.build())
        assert not machine.hierarchy.l1d.contains(DATA)


class TestFaults:
    def test_unmapped_load_faults_at_commit(self, run_program):
        def build(b):
            b.li("r1", 0xDEAD0000)
            b.load("r2", "r1", 0)
            b.li("r3", 1)  # younger: must be squashed by the fault
            b.halt()
        _, result = run_program(build)
        assert result.halted_reason == "fault"
        assert result.fault_events[0].kind == "unmapped"
        assert result.reg("r3") == 0

    def test_kernel_load_faults_for_user(self, user_machine, load_program):
        machine = user_machine(data_bytes=0, kernel=True)
        result = machine.run(load_program(KERNEL_BASE))
        assert result.fault_events[0].kind == "permission"
        assert result.reg("r2") == 0  # never architecturally written

    def test_kernel_load_allowed_for_supervisor(self, user_machine,
                                                load_program):
        machine = user_machine(data_bytes=0, kernel=True)
        machine.hierarchy.memory.write_word(KERNEL_BASE, 7)
        result = machine.run(load_program(KERNEL_BASE),
                             privilege=PrivilegeLevel.SUPERVISOR)
        assert not result.fault_events
        assert result.reg("r2") == 7

    def test_fault_handler_redirect(self, user_machine):
        machine = user_machine(data_bytes=4096)
        b = ProgramBuilder()
        b.li("r1", 0xDEAD0000)
        b.load("r2", "r1", 0)
        b.halt()
        b.label("handler")
        b.li("r3", 99)
        b.halt()
        program = b.build()
        result = machine.run(
            program, fault_handler_pc=program.label_pc("handler"))
        assert result.halted_reason == "halt"
        assert result.reg("r3") == 99

    def test_store_permission_fault(self, user_machine):
        machine = user_machine(data_bytes=0, kernel=True)
        b = ProgramBuilder()
        b.li("r1", KERNEL_BASE)
        b.li("r2", 1)
        b.store("r1", "r2", 0)
        b.halt()
        result = machine.run(b.build())
        assert result.fault_events[0].kind == "permission"
        assert machine.hierarchy.memory.read_word(KERNEL_BASE) == 0


class TestRunTermination:
    def test_instruction_budget(self, run_program):
        def build(b):
            b.label("spin")
            b.alu("add", "r1", "r1", imm=1)
            b.jmp("spin")
        _, result = run_program(build, max_instructions=50)
        assert result.halted_reason == "budget"
        assert result.instructions >= 50

    def test_running_off_code_halts(self, run_program):
        def build(b):
            b.li("r1", 5)  # no halt: falls off the end
        _, result = run_program(build)
        assert result.halted_reason == "ran_off_code"
        assert result.reg("r1") == 5

    def test_ipc_computed(self, run_program):
        def build(b):
            b.li("r1", 1)
            b.halt()
        _, result = run_program(build)
        assert 0 < result.ipc < 6


class TestArchitecturalEquivalence:
    """SafeSpec must not change what programs compute — only their
    micro-architectural footprint (paper Section III: speculation does
    not affect correctness).  The systematic version of this check is
    ``repro verify`` (tests/test_verify_harness.py)."""

    def _checksum_program(self):
        b = ProgramBuilder()
        b.li("r1", DATA)
        b.li("r2", 17)
        b.li("r5", 0)
        b.li("r6", 8)
        b.label("loop")
        b.alu("mul", "r2", "r2", imm=1103515245)
        b.alu("add", "r2", "r2", imm=12345)
        b.alu("shr", "r3", "r2", imm=40)
        b.alu("and", "r3", "r3", imm=0xFF8)
        b.add("r4", "r1", "r3")
        b.store("r4", "r2", 0)
        b.load("r7", "r4", 0)
        b.alu("xor", "r5", "r5", "r7")
        b.branch("lt", "r3", "r6", "skip")
        b.alu("add", "r5", "r5", imm=1)
        b.label("skip")
        b.alu("sub", "r6", "r6", imm=-1)
        b.branch("lt", "r6", "r2", "loop")
        b.halt()
        return b.build()

    def test_same_result_under_all_policies(self, user_machine):
        results = {}
        for policy in POLICIES:
            machine = user_machine(policy=policy)
            results[policy] = machine.run(
                self._checksum_program(), max_instructions=2000).registers
        assert results[CommitPolicy.BASELINE] == results[CommitPolicy.WFB]
        assert results[CommitPolicy.BASELINE] == results[CommitPolicy.WFC]
