"""Tests for repro.sample: checkpoints, plans, window jobs, stitching.

The load-bearing properties of sampled simulation:

* a checkpoint dumped on one backend restores bit-exactly on the other
  (resumed execution equals straight-line execution);
* checkpoints survive pickling across ``ProcessPoolExecutor`` process
  boundaries with a stable digest;
* window selection is deterministic and anchored at slice 0;
* sample jobs are content-hashed like every other kind, so a repeated
  sampled run is all cache hits.
"""

import dataclasses
import json
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.api.session import Session
from repro.core.policy import CommitPolicy
from repro.errors import ConfigError
from repro.exec import NullCache, SerialExecutor
from repro.exec.job import SAMPLE
from repro.machine import Machine
from repro.sample import (CHECKPOINT_SCHEMA_VERSION, Checkpoint, SamplePlan,
                          run_sample, sample_jobs, scan_checkpoints)
from repro.sample.plan import resolve_workload
from repro.serve.protocol import ProtocolError, build_jobs

# Small slices: every simulation here exercises the checkpoint/stitch
# machinery, not the micro-architecture.
INTERVAL = 1_500
TOTAL = 3_000
PLAN = SamplePlan(interval=INTERVAL, warmup=200, windows=2, window=400)

BACKENDS = ("cycle", "fast")


def _end_state(machine, result, *, instructions, faults):
    """Architectural end-of-run state as a cold checkpoint (for digests)."""
    return Checkpoint.capture(machine, instructions=instructions,
                              next_pc=result.next_pc,
                              registers=result.registers,
                              faults=faults, warm=False)


def _straight_line(workload, budget, backend="fast"):
    """Run ``budget`` instructions from scratch; return the end state."""
    machine = Machine.from_spec(None, policy=CommitPolicy.BASELINE,
                                backend=backend)
    workload.apply_memory_image(machine)
    result = machine.run(workload.program, max_instructions=budget)
    assert result.halted_reason == "budget"
    return _end_state(machine, result, instructions=budget,
                      faults=len(result.fault_events))


def _resume(workload, checkpoint, budget, backend):
    """Restore ``checkpoint`` and run ``budget`` more instructions."""
    machine = Machine.from_spec(None, policy=CommitPolicy.BASELINE,
                                backend=backend)
    checkpoint.apply(machine)
    result = machine.run(workload.program, max_instructions=budget,
                         start_pc=checkpoint.next_pc,
                         initial_registers=dict(
                             enumerate(checkpoint.registers)))
    assert result.halted_reason == "budget"
    return _end_state(machine, result,
                      instructions=checkpoint.instructions + budget,
                      faults=checkpoint.faults + len(result.fault_events))


def _resume_in_child(checkpoint, benchmark, budget, backend):
    """ProcessPool entry: restore a pickled checkpoint in a fresh process."""
    workload = resolve_workload(benchmark)
    end = _resume(workload, checkpoint, budget, backend)
    return checkpoint.digest(), end.digest()


class TestSamplePlan:
    def test_validation(self):
        with pytest.raises(ConfigError):
            SamplePlan(interval=0)
        with pytest.raises(ConfigError):
            SamplePlan(windows=0)
        with pytest.raises(ConfigError):
            SamplePlan(interval=1_000, warmup=600, windows=2, window=500)

    def test_full_coverage_when_windows_cover_every_slice(self):
        plan = SamplePlan(interval=1_000, warmup=100, windows=8, window=200)
        assert plan.select_windows(3_000) == (0, 1, 2)

    def test_selection_is_anchored_and_stratified(self):
        plan = SamplePlan(interval=1_000, warmup=100, windows=4,
                          window=200, seed=7)
        chosen = plan.select_windows(20_000)
        assert len(chosen) == 4
        assert chosen[0] == 0
        assert list(chosen) == sorted(set(chosen))
        assert all(1 <= index < 20 for index in chosen[1:])
        # One pick per stratum of the remaining 19 slices.
        rest, strata = 19, 3
        for stratum, index in enumerate(chosen[1:]):
            assert 1 + stratum * rest // strata <= index
            assert index < 1 + (stratum + 1) * rest // strata

    def test_selection_is_deterministic_per_seed(self):
        plan = SamplePlan(interval=1_000, warmup=100, windows=3,
                          window=200, seed=3)
        assert plan.select_windows(30_000) == plan.select_windows(30_000)
        other = dataclasses.replace(plan, seed=4)
        assert other.select_windows(30_000) != plan.select_windows(30_000)

    def test_anchor_window_spans_its_whole_slice(self):
        assert PLAN.window_span(0, TOTAL) == (0, INTERVAL)
        assert PLAN.window_span(0, INTERVAL // 2) == (0, INTERVAL // 2)
        assert PLAN.window_span(1, TOTAL) == (PLAN.warmup, PLAN.window)

    def test_params_round_trip(self):
        assert SamplePlan.from_params(PLAN.to_params()) == PLAN


class TestCheckpointValue:
    @pytest.fixture(scope="class")
    def checkpoint(self):
        return scan_checkpoints("namd", PLAN, [1], warm=True)[1]

    def test_dict_round_trip_preserves_digest(self, checkpoint):
        wire = json.loads(json.dumps(checkpoint.to_dict()))
        assert wire["checkpoint_schema"] == CHECKPOINT_SCHEMA_VERSION
        restored = Checkpoint.from_dict(wire)
        assert restored.digest() == checkpoint.digest()
        assert restored.next_pc == checkpoint.next_pc
        assert restored.registers == checkpoint.registers

    def test_unknown_schema_rejected(self, checkpoint):
        wire = checkpoint.to_dict()
        wire["checkpoint_schema"] = CHECKPOINT_SCHEMA_VERSION + 1
        with pytest.raises(ConfigError):
            Checkpoint.from_dict(wire)

    def test_digest_tracks_content(self, checkpoint):
        registers = list(checkpoint.registers)
        registers[3] ^= 1
        twin = dataclasses.replace(checkpoint,
                                   registers=tuple(registers))
        assert twin.digest() != checkpoint.digest()

    def test_cold_scan_drops_warm_state(self):
        cold = scan_checkpoints("namd", PLAN, [1], warm=False)[1]
        assert cold.warm is None
        warm = scan_checkpoints("namd", PLAN, [1], warm=True)[1]
        assert warm.warm is not None
        # Warm state is micro-architectural only: same committed state.
        assert dataclasses.replace(warm, warm=None).digest() == cold.digest()

    def test_initial_checkpoint_is_start_of_program(self):
        workload = resolve_workload("namd")
        checkpoint = scan_checkpoints(workload, PLAN, [0])[0]
        assert checkpoint.instructions == 0
        assert checkpoint.next_pc == workload.program.code_base
        assert checkpoint.warm is None


class TestCheckpointRestore:
    """Dump on the fast backend, restore anywhere, equal straight-line."""

    @pytest.fixture(scope="class")
    def workload(self):
        return resolve_workload("namd")

    @pytest.fixture(scope="class")
    def checkpoint(self, workload):
        return scan_checkpoints(workload, PLAN, [1], warm=True)[1]

    @pytest.fixture(scope="class")
    def straight(self, workload):
        return _straight_line(workload, 2 * INTERVAL)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_resumed_run_equals_straight_line(self, workload, checkpoint,
                                              straight, backend):
        resumed = _resume(workload, checkpoint, INTERVAL, backend)
        assert resumed.digest() == straight.digest()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_checkpoint_survives_process_pool(self, workload, checkpoint,
                                              straight, backend):
        with ProcessPoolExecutor(max_workers=1) as pool:
            child_digest, child_end = pool.submit(
                _resume_in_child, checkpoint, "namd", INTERVAL,
                backend).result()
        # Digest is stable across process boundaries...
        assert child_digest == checkpoint.digest()
        # ...and the pickled checkpoint resumes to the same state.
        assert child_end == straight.digest()


class TestSampledRun:
    def test_job_fanout_is_deterministic(self):
        first = sample_jobs("namd", CommitPolicy.WFC, PLAN, TOTAL)
        second = sample_jobs("namd", CommitPolicy.WFC, PLAN, TOTAL)
        assert [job.key() for job in first] == [job.key() for job in second]
        assert all(job.kind == SAMPLE for job in first)
        # Jobs carry plan coordinates, never checkpoint blobs.
        assert all("window_index" in job.params for job in first)
        assert all(len(json.dumps(job.params)) < 1_000 for job in first)

    def test_stitched_report_sanity(self):
        report = run_sample(SerialExecutor(cache=NullCache()), "namd",
                            CommitPolicy.BASELINE, plan=PLAN,
                            total_instructions=TOTAL)
        assert report.ok
        assert report.num_intervals == TOTAL // INTERVAL
        assert report.measured_windows == len(report.windows) == 2
        assert report.windows[0].index == 0
        # Anchor window measures its whole slice.
        assert report.windows[0].instructions == INTERVAL
        assert report.stitched_ipc > 0
        assert 0 < report.coverage <= 1
        assert report.estimated_counters["cycles"] == report.stitched_cycles
        payload = report.to_dict()
        assert payload["stitched_ipc"] == report.stitched_ipc
        assert len(payload["windows"]) == 2

    def test_repeated_run_is_all_cache_hits(self, tmp_path):
        session = Session(cache=True, cache_dir=str(tmp_path))
        kwargs = dict(policy=CommitPolicy.BASELINE, instructions=TOTAL,
                      interval=INTERVAL, warmup=PLAN.warmup,
                      windows=PLAN.windows, window=PLAN.window)
        first = session.sample("namd", **kwargs)
        assert first.cached_windows == 0
        assert session.cache_stats["hits"] == 0

        second = session.sample("namd", **kwargs)
        assert second.cached_windows == len(second.windows)
        assert all(w.from_cache for w in second.windows)
        # Every job was answered by the store: zero re-executions.
        assert session.cache_stats["hits"] == len(second.windows)
        assert second.stitched_ipc == first.stitched_ipc

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_windows_measure_on_either_backend(self, backend):
        report = run_sample(SerialExecutor(cache=NullCache()), "namd",
                            CommitPolicy.BASELINE, plan=PLAN,
                            total_instructions=TOTAL, backend=backend)
        assert report.ok
        assert report.backend == backend


class TestServeSampleKind:
    def test_build_jobs_lowers_sample_submissions(self):
        jobs = build_jobs({"kind": "sample", "target": "namd",
                           "interval": INTERVAL, "warmup": PLAN.warmup,
                           "windows": PLAN.windows, "window": PLAN.window,
                           "instructions": TOTAL})
        assert len(jobs) == PLAN.windows
        assert all(job.kind == SAMPLE for job in jobs)
        assert all(job.target == "namd" for job in jobs)

    def test_bad_sample_submissions_rejected(self):
        with pytest.raises(ProtocolError):
            build_jobs({"kind": "sample", "target": "no-such-benchmark"})
        with pytest.raises(ProtocolError):
            build_jobs({"kind": "sample", "target": "namd",
                        "warm": "yes"})
