"""Property-based tests for assembler round-trip and MachineSpec
serialization (``hypothesis`` is an optional dev dependency — the whole
module skips when it is absent)."""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.frontend.btb import BTBConfig  # noqa: E402
from repro.isa.assembler import ProgramBuilder, assemble  # noqa: E402
from repro.spec import MachineSpec  # noqa: E402
from repro.verify import FUZZ_PROFILES, generate_fuzz_program  # noqa: E402

profiles = st.sampled_from(sorted(FUZZ_PROFILES))
seeds = st.integers(min_value=0, max_value=10_000)


class TestAssemblerRoundTrip:
    """``assemble(p.to_source()) == p`` — the disassembler's
    re-assembleable form is lossless over the whole fuzzed ISA surface."""

    @settings(max_examples=25, deadline=None)
    @given(profiles, seeds)
    def test_fuzzed_programs_roundtrip(self, profile, seed):
        program = generate_fuzz_program(FUZZ_PROFILES[profile],
                                        seed).program
        rebuilt = assemble(program.to_source(), code_base=program.code_base)
        assert rebuilt.instructions == program.instructions

    def test_handwritten_full_coverage_roundtrip(self):
        """One program touching every opcode and operand form."""
        b = ProgramBuilder()
        b.li("r1", -5)
        b.li("r2", (1 << 64) - 1)
        b.alu("add", "r3", "r1", "r2")
        b.alu("shr", "r4", "r3", imm=-7)
        b.load("r5", "r1", -16)
        b.store("r1", "r5", 24)
        b.label("back")
        b.clflush("r1", 8)
        b.rdtsc("r6")
        b.fence()
        b.nop(2)
        b.branch("ge", "r5", "r0", "fwd")
        b.jmp("back")
        b.label("fwd")
        b.jmpi("r4")
        b.halt()
        program = b.build()
        rebuilt = assemble(program.to_source(), code_base=program.code_base)
        assert rebuilt.instructions == program.instructions


# Dotted spec paths paired with strategies producing valid values, so a
# random override set always yields a constructible spec (values are
# chosen to satisfy cross-field invariants like ROB >= IQ against the
# other fields' defaults).
_SPEC_OVERRIDES = {
    "core.rob_entries": st.integers(128, 512),
    "core.fetch_width": st.integers(1, 8),
    "core.mispredict_penalty": st.integers(1, 40),
    "hierarchy.l1d.size_bytes": st.sampled_from(
        [16 * 1024, 32 * 1024, 64 * 1024]),
    "hierarchy.memory_latency": st.integers(50, 400),
    "predictor": st.sampled_from(["bimodal", "gshare"]),
    # entries and index_bits are coupled (entries == 2**index_bits), so
    # the BTB override replaces the whole section consistently.
    "btb": st.integers(6, 11).map(
        lambda k: BTBConfig(entries=1 << k, index_bits=k)),
    "safespec.sizing": st.sampled_from(["secure", "performance"]),
}

override_sets = st.dictionaries(
    st.sampled_from(sorted(_SPEC_OVERRIDES)), st.none(),
    max_size=4).flatmap(
        lambda keys: st.fixed_dictionaries(
            {key: _SPEC_OVERRIDES[key] for key in keys}))


class TestMachineSpecProperties:
    @settings(max_examples=40, deadline=None)
    @given(override_sets)
    def test_dict_roundtrip_under_random_derives(self, overrides):
        spec = MachineSpec().derive(**overrides)
        assert MachineSpec.from_dict(spec.to_dict()) == spec

    @settings(max_examples=40, deadline=None)
    @given(override_sets)
    def test_digest_matches_equality(self, overrides):
        spec = MachineSpec().derive(**overrides)
        again = MachineSpec().derive(**overrides)
        assert spec == again
        assert spec.digest() == again.digest()
        if overrides:
            assert (spec == MachineSpec()) == \
                (spec.digest() == MachineSpec().digest())

    @settings(max_examples=20, deadline=None)
    @given(override_sets)
    def test_derive_never_mutates_base(self, overrides):
        base = MachineSpec()
        digest_before = base.digest()
        base.derive(**overrides)
        assert base.digest() == digest_before
